//! Plain-text report exporter and parser.
//!
//! The format is line-oriented `key value` text, stable enough to diff and
//! to parse back (the harness `report` subcommand re-reads these files to
//! build cross-job summaries):
//!
//! ```text
//! # sparten-telemetry report v1
//! job fig10_alexnet
//! counter SparTen/work.nonzero 1234
//! gauge SparTen/occupancy.cluster hi=4.0 lo=1.0 last=2.0 n=17
//! hist SparTen/hist.chunk_work n=9 sum=41 buckets=0:3,2:6
//! events 128 dropped 0
//! ```
//!
//! Histogram buckets serialize sparsely as `index:count` pairs; empty
//! histograms serialize as `buckets=-`.

use crate::metrics::{bucket_quantile, MetricValue, Snapshot, HISTOGRAM_BUCKETS};
use crate::recorder::Recorder;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a telemetry session as the stable plain-text report format.
pub fn text_report(job: &str, snapshot: &Snapshot, recorder: &Recorder) -> String {
    let mut out = String::new();
    out.push_str("# sparten-telemetry report v1\n");
    let _ = writeln!(out, "job {job}");
    for (name, value) in &snapshot.entries {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "counter {name} {v}");
            }
            MetricValue::Gauge { hi, lo, last, count } => {
                let _ = writeln!(out, "gauge {name} hi={hi} lo={lo} last={last} n={count}");
            }
            MetricValue::Histogram { buckets, sum } => {
                let n: u64 = buckets.iter().sum();
                let _ = write!(out, "hist {name} n={n} sum={sum} buckets=");
                let mut any = false;
                for (i, b) in buckets.iter().enumerate() {
                    if *b > 0 {
                        if any {
                            out.push(',');
                        }
                        let _ = write!(out, "{i}:{b}");
                        any = true;
                    }
                }
                if !any {
                    out.push('-');
                }
                out.push('\n');
                // Estimated quantiles ride along as a comment line:
                // parse_report skips `#` lines, so the format (and its
                // byte-level round trip for quantile-free reports) is
                // unchanged, while humans and `harness report` get the
                // percentile view next to the raw buckets.
                if let (Some(p50), Some(p95), Some(p99)) = (
                    bucket_quantile(buckets, 0.50),
                    bucket_quantile(buckets, 0.95),
                    bucket_quantile(buckets, 0.99),
                ) {
                    let _ = writeln!(out, "# quantiles {name} p50={p50} p95={p95} p99={p99}");
                }
            }
        }
    }
    let _ = writeln!(out, "events {} dropped {}", recorder.len(), recorder.dropped());
    out
}

/// A report read back from the plain-text format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedReport {
    /// The `job` line's value.
    pub job: String,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge `(hi, lo, last, count)` by name.
    pub gauges: BTreeMap<String, (f64, f64, f64, u64)>,
    /// Histogram `(buckets, sum)` by name.
    pub histograms: BTreeMap<String, ([u64; HISTOGRAM_BUCKETS], u64)>,
    /// Retained event count from the `events` line.
    pub events: u64,
    /// Dropped event count from the `events` line.
    pub dropped: u64,
}

impl ParsedReport {
    /// Sums every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }
}

/// Parses text produced by [`text_report`]. Returns a human-readable error
/// naming the offending line.
pub fn parse_report(text: &str) -> Result<ParsedReport, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.starts_with("# sparten-telemetry report v1") => {}
        other => {
            return Err(format!(
                "missing `# sparten-telemetry report v1` header, found {:?}",
                other.map(|(_, l)| l)
            ))
        }
    }
    let mut report = ParsedReport::default();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let kind = parts.next().unwrap_or_default();
        let bad = |what: &str| format!("line {lineno}: {what}: `{line}`");
        match kind {
            "job" => {
                report.job = parts.next().ok_or_else(|| bad("missing job name"))?.to_string();
            }
            "counter" => {
                let name = parts.next().ok_or_else(|| bad("missing counter name"))?;
                let value: u64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("bad counter value"))?;
                report.counters.insert(name.to_string(), value);
            }
            "gauge" => {
                let name = parts.next().ok_or_else(|| bad("missing gauge name"))?;
                let rest = parts.next().ok_or_else(|| bad("missing gauge fields"))?;
                let mut hi = None;
                let mut lo = None;
                let mut last = None;
                let mut n = None;
                for field in rest.split(' ') {
                    let (k, v) = field.split_once('=').ok_or_else(|| bad("bad gauge field"))?;
                    match k {
                        "hi" => hi = v.parse::<f64>().ok(),
                        "lo" => lo = v.parse::<f64>().ok(),
                        "last" => last = v.parse::<f64>().ok(),
                        "n" => n = v.parse::<u64>().ok(),
                        _ => return Err(bad("unknown gauge field")),
                    }
                }
                match (hi, lo, last, n) {
                    (Some(hi), Some(lo), Some(last), Some(n)) => {
                        report.gauges.insert(name.to_string(), (hi, lo, last, n));
                    }
                    _ => return Err(bad("incomplete gauge fields")),
                }
            }
            "hist" => {
                let name = parts.next().ok_or_else(|| bad("missing hist name"))?;
                let rest = parts.next().ok_or_else(|| bad("missing hist fields"))?;
                let mut buckets = [0u64; HISTOGRAM_BUCKETS];
                let mut sum = None;
                for field in rest.split(' ') {
                    let (k, v) = field.split_once('=').ok_or_else(|| bad("bad hist field"))?;
                    match k {
                        "n" => {} // redundant with buckets; validated below
                        "sum" => sum = v.parse::<u64>().ok(),
                        "buckets" => {
                            if v == "-" {
                                continue;
                            }
                            for pair in v.split(',') {
                                let (i, c) = pair
                                    .split_once(':')
                                    .ok_or_else(|| bad("bad bucket pair"))?;
                                let i: usize =
                                    i.parse().map_err(|_| bad("bad bucket index"))?;
                                if i >= HISTOGRAM_BUCKETS {
                                    return Err(bad("bucket index out of range"));
                                }
                                buckets[i] = c.parse().map_err(|_| bad("bad bucket count"))?;
                            }
                        }
                        _ => return Err(bad("unknown hist field")),
                    }
                }
                let sum = sum.ok_or_else(|| bad("missing hist sum"))?;
                report.histograms.insert(name.to_string(), (buckets, sum));
            }
            "events" => {
                let events: u64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("bad events count"))?;
                let rest = parts.next().ok_or_else(|| bad("missing dropped field"))?;
                let dropped: u64 = rest
                    .strip_prefix("dropped ")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("bad dropped count"))?;
                report.events = events;
                report.dropped = dropped;
            }
            _ => return Err(bad("unknown record kind")),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn report_round_trips() {
        let t = Telemetry::new();
        t.metrics.counter("S/work.nonzero").add(1234);
        t.metrics.counter("S/stall.intra.chunk_barrier_idle").add(55);
        let g = t.metrics.gauge("S/occupancy.cluster");
        g.observe(1.0);
        g.observe(4.0);
        g.observe(2.0);
        let h = t.metrics.histogram("S/hist.chunk_work");
        h.record(0);
        h.record(3);
        h.record(3);
        let pid = t.recorder.alloc_process("S");
        t.recorder.span(pid, 0, "cluster", 0, 10, &[]);

        let text = text_report("fig10_alexnet", &t.metrics.snapshot(), &t.recorder);
        let parsed = parse_report(&text).expect("parse");
        assert_eq!(parsed.job, "fig10_alexnet");
        assert_eq!(parsed.counters.get("S/work.nonzero"), Some(&1234));
        assert_eq!(parsed.counter_sum("S/stall.intra."), 55);
        assert_eq!(
            parsed.gauges.get("S/occupancy.cluster"),
            Some(&(4.0, 1.0, 2.0, 3))
        );
        let (buckets, sum) = parsed.histograms.get("S/hist.chunk_work").expect("hist");
        assert_eq!(sum, &6);
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[2], 2);
        assert_eq!(parsed.events, 1);
        assert_eq!(parsed.dropped, 0);
    }

    #[test]
    fn quantile_comments_ride_along_and_stay_parseable() {
        let t = Telemetry::new();
        let h = t.metrics.histogram("q");
        for _ in 0..10 {
            h.record(0);
        }
        for _ in 0..10 {
            h.record(1);
        }
        for _ in 0..80 {
            h.record(100);
        }
        let text = text_report("j", &t.metrics.snapshot(), &t.recorder);
        assert!(text.contains("# quantiles q p50=88 p95=124"), "{text}");
        // The comment is transparent to the parser.
        let parsed = parse_report(&text).expect("parse");
        assert!(parsed.histograms.contains_key("q"));
    }

    #[test]
    fn empty_histogram_serializes_as_dash() {
        let t = Telemetry::new();
        t.metrics.histogram("h");
        let text = text_report("j", &t.metrics.snapshot(), &t.recorder);
        assert!(text.contains("hist h n=0 sum=0 buckets=-"));
        let parsed = parse_report(&text).expect("parse");
        assert_eq!(parsed.histograms.get("h"), Some(&([0; HISTOGRAM_BUCKETS], 0)));
    }

    #[test]
    fn bad_lines_name_their_line() {
        let err = parse_report("# sparten-telemetry report v1\ncounter x notanumber\n")
            .expect_err("should fail");
        assert!(err.contains("line 2"), "{err}");
        let err = parse_report("nope\n").expect_err("should fail");
        assert!(err.contains("header"), "{err}");
    }
}
