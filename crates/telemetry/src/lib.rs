#![warn(missing_docs)]

//! Observability substrate for the SparTen reproduction: cycle-level
//! counters, stall-cause tracing, and timeline export.
//!
//! The paper's evaluation hinges on *explaining* where cycles go — the
//! Figure 10–12 breakdown decomposes execution into non-zero compute, zero
//! compute, intra-cluster loss, and inter-cluster loss. This crate makes
//! that accounting inspectable instead of opaque:
//!
//! * a hierarchical metric [`Registry`] of atomic [`Counter`]s,
//!   high/low-water [`Gauge`]s, and power-of-two-bucketed [`Histogram`]s;
//! * a cycle-stamped span/event [`Recorder`] with named process/thread
//!   tracks and a bounded event buffer (drops are counted, never silent);
//! * two exporters: a hand-rolled Chrome trace-event JSON writer
//!   ([`chrome::chrome_trace`], loadable in Perfetto via ui.perfetto.dev)
//!   and a plain-text report ([`report::text_report`]) whose stable
//!   `key value` format parses back ([`report::parse_report`]);
//! * a stall-cause taxonomy ([`stall::StallCause`]) shared by every
//!   simulator, so traces from different architectures are comparable;
//! * a trace-context layer ([`trace::TraceContext`]) correlating one
//!   serve request (or CLI run) across the gate, executor workers, and
//!   per-chunk simulator spans in a single Chrome-trace export;
//! * Prometheus text exposition ([`prometheus::prometheus_report`]) so a
//!   stock scraper ingests the registry via `/metrics` content
//!   negotiation;
//! * an invariant checker ([`invariant::check_breakdown`]) asserting that
//!   the recorded work/stall counters reconcile *exactly* with a run's
//!   execution-time breakdown (`nonzero + zero + intra + inter ==
//!   compute_cycles × units`), which makes the counters a cross-check on
//!   the simulators rather than decoration.
//!
//! # Metric naming scheme
//!
//! Names are `<scope>/<area>.<detail>` where `<scope>` is the scheme label
//! (`SparTen`, `SCNN`, ...) or a caller-chosen prefix, and the dotted part
//! is hierarchical:
//!
//! | prefix          | meaning                                            |
//! |-----------------|----------------------------------------------------|
//! | `work.*`        | executed MAC slots (`work.nonzero`, `work.zero`)   |
//! | `stall.intra.*` | within-cluster idle slots, by [`stall::StallCause`]|
//! | `stall.inter.*` | across-cluster idle slots, by cause                |
//! | `dram.*`        | DRAM traffic in bytes, per tensor                  |
//! | `occupancy.*`   | buffer/structure high-water gauges                 |
//! | `trace.*`       | recorder bookkeeping (sampling, totals)            |
//!
//! The crate is intentionally dependency-free and `std`-only, matching the
//! workspace's offline build constraint.

pub mod cancel;
pub mod chrome;
pub mod invariant;
pub mod metrics;
pub mod prometheus;
pub mod recorder;
pub mod report;
pub mod serve;
pub mod session;
pub mod stall;
pub mod trace;

pub use cancel::CancelToken;
pub use chrome::chrome_trace;
pub use invariant::{check_breakdown, BreakdownExpectation, ReconcileError};
pub use metrics::{bucket_quantile, Counter, Gauge, Histogram, MetricValue, Registry, Snapshot};
pub use prometheus::{prometheus_report, validate_exposition, PROMETHEUS_CONTENT_TYPE};
pub use recorder::{Phase, Recorder, TraceEvent};
pub use report::{parse_report, text_report, ParsedReport};
pub use serve::ServerMetrics;
pub use session::{export_session, import_session};
pub use stall::StallCause;
pub use trace::TraceContext;

/// One telemetry session: a metric registry plus a span/event recorder.
///
/// A `Telemetry` is cheap to create, internally synchronized (`Send +
/// Sync`), and mergeable: per-point sessions recorded on worker threads
/// fold into a per-job session in a deterministic order via [`merge`].
///
/// [`merge`]: Telemetry::merge
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Counters, gauges, and histograms.
    pub metrics: Registry,
    /// Cycle-stamped spans and instant events.
    pub recorder: Recorder,
}

impl Telemetry {
    /// Creates an empty session with the default recorder capacity.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Folds `other` into `self`: counters add, gauges widen their
    /// high/low water marks, histograms add bucket-wise, and recorded
    /// events append with their process tracks re-allocated (and renamed
    /// with `track_prefix`) so timelines from different layers/points
    /// stay on distinct Perfetto tracks.
    pub fn merge(&self, other: Telemetry, track_prefix: &str) {
        self.metrics.merge(&other.metrics);
        self.recorder.merge(other.recorder, track_prefix);
    }
}

// The harness moves sessions across worker threads and shares a per-job
// session with the scheduler; these bounds are part of the API contract.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Telemetry>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_folds_counters_and_tracks() {
        let a = Telemetry::new();
        a.metrics.counter("S/work.nonzero").add(5);
        let pid = a.recorder.alloc_process("S");
        a.recorder.span(pid, 0, "cluster", 0, 10, &[]);

        let b = Telemetry::new();
        b.metrics.counter("S/work.nonzero").add(7);
        let bpid = b.recorder.alloc_process("S");
        b.recorder.span(bpid, 0, "cluster", 0, 20, &[]);

        a.merge(b, "p1:");
        let snap = a.metrics.snapshot();
        assert_eq!(snap.counter("S/work.nonzero"), Some(12));
        let events = a.recorder.events();
        assert_eq!(events.len(), 2);
        // The merged event landed on a fresh, prefixed process track.
        assert_ne!(events[0].pid, events[1].pid);
        assert_eq!(a.recorder.process_name(events[1].pid).as_deref(), Some("p1:S"));
    }
}
