//! The reconciliation invariant: telemetry must agree with the breakdown.
//!
//! Every simulator reports a Figure 10–12 style execution-time breakdown
//! (`nonzero + zero + intra + inter == compute_cycles × units`, in MAC-slot
//! cycles). The instrumentation in this workspace records the *same*
//! quantities as counters — `work.nonzero`, `work.zero`, and the
//! `stall.intra.*` / `stall.inter.*` cause taxonomy. [`check_breakdown`]
//! asserts the two accountings agree **exactly** (integer equality, no
//! tolerance), which turns the telemetry from decoration into a
//! cross-check on the simulators themselves: a missed stall attribution or
//! a double-counted slot fails the check.

use crate::metrics::Snapshot;

/// The breakdown a telemetry scope is expected to reconcile against, in
/// MAC-slot cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakdownExpectation {
    /// Slots doing useful (non-zero) multiplies.
    pub nonzero: u64,
    /// Slots multiplying a zero operand.
    pub zero: u64,
    /// Within-cluster idle slots.
    pub intra: u64,
    /// Across-cluster idle slots.
    pub inter: u64,
    /// Total compute cycles (makespan).
    pub compute_cycles: u64,
    /// Total MAC slots per cycle across the machine.
    pub units: u64,
}

/// One failed reconciliation between a counter family and the breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileError {
    /// The telemetry scope checked (e.g. `SparTen`).
    pub scope: String,
    /// Which quantity disagreed.
    pub what: &'static str,
    /// The value from the telemetry counters.
    pub counted: u64,
    /// The value from the breakdown.
    pub expected: u64,
}

impl std::fmt::Display for ReconcileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "telemetry/breakdown mismatch in scope `{}`: {} counted {} but breakdown says {}",
            self.scope, self.what, self.counted, self.expected
        )
    }
}

impl std::error::Error for ReconcileError {}

/// Checks that the counters under `scope` reconcile exactly with
/// `expectation`:
///
/// * `{scope}/work.nonzero == nonzero`
/// * `{scope}/work.zero == zero`
/// * `Σ {scope}/stall.intra.* == intra`
/// * `Σ {scope}/stall.inter.* == inter`
/// * the four together `== compute_cycles × units`
///
/// Returns the first mismatch found, in the order above.
pub fn check_breakdown(
    snapshot: &Snapshot,
    scope: &str,
    expectation: &BreakdownExpectation,
) -> Result<(), ReconcileError> {
    let e = expectation;
    let checks: [(&'static str, u64, u64); 4] = [
        (
            "work.nonzero",
            snapshot.counter(&format!("{scope}/work.nonzero")).unwrap_or(0),
            e.nonzero,
        ),
        (
            "work.zero",
            snapshot.counter(&format!("{scope}/work.zero")).unwrap_or(0),
            e.zero,
        ),
        (
            "stall.intra.*",
            snapshot.counter_sum(&format!("{scope}/stall.intra.")),
            e.intra,
        ),
        (
            "stall.inter.*",
            snapshot.counter_sum(&format!("{scope}/stall.inter.")),
            e.inter,
        ),
    ];
    for (what, counted, expected) in checks {
        if counted != expected {
            return Err(ReconcileError {
                scope: scope.to_string(),
                what,
                counted,
                expected,
            });
        }
    }
    let total = e.nonzero + e.zero + e.intra + e.inter;
    let slots = e.compute_cycles * e.units;
    if total != slots {
        return Err(ReconcileError {
            scope: scope.to_string(),
            what: "total slots (nonzero+zero+intra+inter vs cycles×units)",
            counted: total,
            expected: slots,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn populated() -> Registry {
        let r = Registry::new();
        r.counter("S/work.nonzero").add(10);
        r.counter("S/work.zero").add(2);
        r.counter("S/stall.intra.chunk_barrier_idle").add(3);
        r.counter("S/stall.intra.prefix_encoder_wait").add(1);
        r.counter("S/stall.inter.cluster_idle").add(4);
        r
    }

    fn expectation() -> BreakdownExpectation {
        BreakdownExpectation {
            nonzero: 10,
            zero: 2,
            intra: 4,
            inter: 4,
            compute_cycles: 5,
            units: 4,
        }
    }

    #[test]
    fn exact_match_passes() {
        let snap = populated().snapshot();
        check_breakdown(&snap, "S", &expectation()).expect("should reconcile");
    }

    #[test]
    fn intra_mismatch_is_reported() {
        let r = populated();
        r.counter("S/stall.intra.chunk_barrier_idle").add(1);
        let err = check_breakdown(&r.snapshot(), "S", &expectation()).expect_err("mismatch");
        assert_eq!(err.what, "stall.intra.*");
        assert_eq!(err.counted, 5);
        assert_eq!(err.expected, 4);
        assert!(err.to_string().contains("scope `S`"));
    }

    #[test]
    fn total_slot_mismatch_is_reported() {
        let snap = populated().snapshot();
        let mut e = expectation();
        e.compute_cycles = 6;
        let err = check_breakdown(&snap, "S", &e).expect_err("mismatch");
        assert!(err.what.contains("total slots"));
        assert_eq!(err.counted, 20);
        assert_eq!(err.expected, 24);
    }

    #[test]
    fn missing_counters_count_as_zero() {
        let r = Registry::new();
        let e = BreakdownExpectation {
            nonzero: 0,
            zero: 0,
            intra: 0,
            inter: 0,
            compute_cycles: 0,
            units: 4,
        };
        check_breakdown(&r.snapshot(), "S", &e).expect("empty reconciles");
    }
}
