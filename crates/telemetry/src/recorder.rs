//! The cycle-stamped span/event recorder behind the Perfetto timelines.
//!
//! Events live on *tracks* addressed by `(pid, tid)` — in Chrome trace
//! terms a process and a thread. Simulators allocate one process per
//! scheme (or per traced structure) and use thread ids for clusters, PEs,
//! or compute units. Timestamps are in **cycles**; the Chrome exporter
//! maps one cycle to one microsecond so Perfetto's time axis reads
//! directly in cycles.
//!
//! The buffer is bounded: events past the capacity are dropped and
//! *counted* (never silently), so a pathological trace cannot exhaust
//! memory while the drop is still visible in every report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default maximum number of retained events per recorder.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Event phase, mirroring the Chrome trace-event phases we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph: "X"`) with a duration.
    Span,
    /// An instant event (`ph: "i"`).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Process track (allocate via [`Recorder::alloc_process`]).
    pub pid: u32,
    /// Thread track within the process.
    pub tid: u32,
    /// Event name (static so the hot path never allocates).
    pub name: &'static str,
    /// Start cycle.
    pub ts: u64,
    /// Duration in cycles (0 for instants).
    pub dur: u64,
    /// Span or instant.
    pub phase: Phase,
    /// Small set of integer arguments shown in the Perfetto side panel.
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<TraceEvent>,
    /// Process-track names, indexed by pid.
    processes: Vec<String>,
    /// `(pid, tid, name)` thread-track names.
    threads: Vec<(u32, u32, String)>,
}

/// A bounded, thread-safe event buffer with named tracks.
#[derive(Debug)]
pub struct Recorder {
    inner: Mutex<Inner>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Recorder {
    /// Creates a recorder retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            inner: Mutex::new(Inner::default()),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Allocates a new process track named `name` and returns its pid.
    pub fn alloc_process(&self, name: &str) -> u32 {
        let mut inner = self.inner.lock().expect("recorder lock");
        inner.processes.push(name.to_string());
        (inner.processes.len() - 1) as u32
    }

    /// Names thread `tid` of process `pid` (for Perfetto's track labels).
    pub fn name_thread(&self, pid: u32, tid: u32, name: &str) {
        let mut inner = self.inner.lock().expect("recorder lock");
        inner.threads.push((pid, tid, name.to_string()));
    }

    /// Records a complete span of `dur` cycles starting at cycle `ts`.
    pub fn span(
        &self,
        pid: u32,
        tid: u32,
        name: &'static str,
        ts: u64,
        dur: u64,
        args: &[(&'static str, u64)],
    ) {
        self.push(TraceEvent {
            pid,
            tid,
            name,
            ts,
            dur,
            phase: Phase::Span,
            args: args.to_vec(),
        });
    }

    /// Records an instant event at cycle `ts`.
    pub fn instant(&self, pid: u32, tid: u32, name: &'static str, ts: u64, args: &[(&'static str, u64)]) {
        self.push(TraceEvent {
            pid,
            tid,
            name,
            ts,
            dur: 0,
            phase: Phase::Instant,
            args: args.to_vec(),
        });
    }

    /// Pushes a fully-formed event (session import rebuilds events with
    /// their original pids/tids instead of re-allocating tracks).
    pub(crate) fn push_raw(&self, event: TraceEvent) {
        self.push(event);
    }

    fn push(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("recorder lock");
        if inner.events.len() >= self.capacity {
            drop(inner);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.events.push(event);
    }

    /// Number of events dropped at the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Adds to the drop count (session import restores the original
    /// recorder's tally so round-tripped sessions report identically).
    pub(crate) fn add_dropped(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").events.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the retained events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("recorder lock").events.clone()
    }

    /// The name of process track `pid`, if allocated.
    pub fn process_name(&self, pid: u32) -> Option<String> {
        self.inner
            .lock()
            .expect("recorder lock")
            .processes
            .get(pid as usize)
            .cloned()
    }

    /// All process-track names, indexed by pid.
    pub fn process_names(&self) -> Vec<String> {
        self.inner.lock().expect("recorder lock").processes.clone()
    }

    /// All `(pid, tid, name)` thread-track names.
    pub fn thread_names(&self) -> Vec<(u32, u32, String)> {
        self.inner.lock().expect("recorder lock").threads.clone()
    }

    /// Appends `other`'s events, re-allocating its process tracks here
    /// (renamed with `prefix`) so merged timelines stay on distinct
    /// Perfetto tracks. Drop counts accumulate.
    pub fn merge(&self, other: Recorder, prefix: &str) {
        self.merge_with_args(other, prefix, &[]);
    }

    /// [`merge`](Recorder::merge), additionally stamping `extra_args`
    /// onto every imported event (skipping keys the event already
    /// carries). The executor uses this to imprint the request's trace
    /// context onto per-point simulator sessions, so every per-chunk
    /// span in a correlated export carries the trace id without the
    /// simulators knowing traces exist.
    pub fn merge_with_args(
        &self,
        other: Recorder,
        prefix: &str,
        extra_args: &[(&'static str, u64)],
    ) {
        let other_dropped = other.dropped();
        let other_inner = other.inner.into_inner().expect("recorder lock");
        let mut inner = self.inner.lock().expect("recorder lock");
        let base = inner.processes.len() as u32;
        for name in &other_inner.processes {
            inner.processes.push(format!("{prefix}{name}"));
        }
        for (pid, tid, name) in other_inner.threads {
            inner.threads.push((base + pid, tid, name));
        }
        let mut dropped_here = other_dropped;
        for mut e in other_inner.events {
            if inner.events.len() >= self.capacity {
                dropped_here += 1;
                continue;
            }
            e.pid += base;
            for &(key, value) in extra_args {
                if !e.args.iter().any(|(k, _)| *k == key) {
                    e.args.push((key, value));
                }
            }
            inner.events.push(e);
        }
        drop(inner);
        self.dropped.fetch_add(dropped_here, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_are_recorded_in_order() {
        let r = Recorder::default();
        let pid = r.alloc_process("SparTen");
        r.name_thread(pid, 0, "cluster0");
        r.span(pid, 0, "cluster", 0, 100, &[("busy", 80)]);
        r.instant(pid, 0, "barrier", 50, &[]);
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].phase, Phase::Span);
        assert_eq!(events[0].args, vec![("busy", 80)]);
        assert_eq!(events[1].phase, Phase::Instant);
        assert_eq!(r.process_name(pid).as_deref(), Some("SparTen"));
        assert_eq!(r.thread_names(), vec![(pid, 0, "cluster0".to_string())]);
    }

    #[test]
    fn capacity_drops_are_counted_not_silent() {
        let r = Recorder::with_capacity(2);
        let pid = r.alloc_process("x");
        for i in 0..5 {
            r.span(pid, 0, "e", i, 1, &[]);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
    }

    /// Below (and exactly at) the capacity no event is lost: every span
    /// recorded is retained in order and the drop counter stays zero.
    #[test]
    fn no_event_is_silently_lost_below_the_cap() {
        let cap = 64;
        let r = Recorder::with_capacity(cap);
        let pid = r.alloc_process("x");
        for i in 0..cap as u64 {
            r.span(pid, 0, "e", i, 1, &[("i", i)]);
        }
        assert_eq!(r.len(), cap);
        assert_eq!(r.dropped(), 0);
        let events = r.events();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.ts, i as u64, "events retained in recording order");
            assert_eq!(e.args, vec![("i", i as u64)]);
        }
        // The very next event is the first drop.
        r.instant(pid, 0, "overflow", 999, &[]);
        assert_eq!(r.len(), cap);
        assert_eq!(r.dropped(), 1);
    }

    /// Drops are visible in both exporters, never silent.
    #[test]
    fn drops_are_reported_in_exports() {
        let r = Recorder::with_capacity(1);
        let pid = r.alloc_process("x");
        r.span(pid, 0, "kept", 0, 1, &[]);
        r.span(pid, 0, "lost", 1, 1, &[]);
        r.span(pid, 0, "lost", 2, 1, &[]);
        assert_eq!(r.dropped(), 2);

        let snapshot = crate::metrics::Snapshot::default();
        let text = crate::report::text_report("j", &snapshot, &r);
        assert!(text.contains("events 1 dropped 2"), "{text}");
        let parsed = crate::report::parse_report(&text).expect("parse");
        assert_eq!((parsed.events, parsed.dropped), (1, 2));

        let chrome = crate::chrome::chrome_trace(&snapshot, &r);
        assert!(chrome.contains("\"droppedEvents\": 2"), "{chrome}");
    }

    #[test]
    fn merge_stamps_extra_args_without_clobbering() {
        let a = Recorder::default();
        let b = Recorder::default();
        let bpid = b.alloc_process("B");
        b.span(bpid, 0, "chunk", 0, 4, &[("nnz", 3)]);
        b.span(bpid, 0, "chunk", 4, 4, &[("trace_id", 999)]);
        a.merge_with_args(b, "p0:", &[("trace_id", 7), ("span_id", 8)]);
        let events = a.events();
        assert_eq!(
            events[0].args,
            vec![("nnz", 3), ("trace_id", 7), ("span_id", 8)]
        );
        // A pre-existing key wins over the stamp.
        assert_eq!(events[1].args, vec![("trace_id", 999), ("span_id", 8)]);
    }

    #[test]
    fn merge_remaps_pids_and_accumulates_drops() {
        let a = Recorder::with_capacity(3);
        let apid = a.alloc_process("A");
        a.span(apid, 0, "e", 0, 1, &[]);

        let b = Recorder::with_capacity(1);
        let bpid = b.alloc_process("B");
        b.name_thread(bpid, 2, "pe2");
        b.span(bpid, 2, "e", 0, 1, &[]);
        b.span(bpid, 2, "e", 1, 1, &[]); // dropped in b

        a.merge(b, "L3:");
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped(), 1);
        let events = a.events();
        assert_eq!(a.process_name(events[1].pid).as_deref(), Some("L3:B"));
        assert_eq!(a.thread_names(), vec![(events[1].pid, 2, "pe2".to_string())]);
    }
}
