//! The `dse` subcommand's experiment: a million-point (or `--quick`
//! 16 200-point) design-space sweep over the analytical model, run through
//! the same executor/cache/journal machinery as the paper experiments.
//!
//! Each point is one fixed-size batch of configurations
//! ([`sparten_model::dse::BATCH_SIZE`]); its payload is a byte-stable
//! record of per-architecture partial aggregates, so the content-addressed
//! cache makes re-runs incremental and the write-ahead journal makes an
//! interrupted sweep resumable — exactly like any other experiment.
//! Rendering merges every batch, extracts the throughput/energy Pareto
//! frontier, and writes `results/dse/` artifacts.

use sparten_bench::json::Json;
use sparten_bench::{Capture, ExperimentKind};
use sparten_model::dse::{
    merge_records, objective_points, pareto_frontier, DseAxes, DseGrid, DsePoint,
};

use crate::{Experiment, PointPayload};

/// The design-space-exploration sweep as a schedulable experiment.
pub struct DseExperiment {
    grid: DseGrid,
    name: &'static str,
}

impl DseExperiment {
    /// The `--quick` sweep (16 200 configurations, CI-sized).
    pub fn quick() -> Self {
        DseExperiment {
            grid: DseGrid::new(DseAxes::quick()),
            name: "dse-quick",
        }
    }

    /// The full sweep (1 080 000 configurations).
    pub fn full() -> Self {
        DseExperiment {
            grid: DseGrid::new(DseAxes::full()),
            name: "dse-full",
        }
    }

    /// Total configurations in the sweep.
    pub fn num_configs(&self) -> usize {
        self.grid.axes.num_configs()
    }
}

impl Experiment for DseExperiment {
    fn name(&self) -> &'static str {
        self.name
    }

    fn kind(&self) -> ExperimentKind {
        ExperimentKind::Sweep
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn num_points(&self) -> usize {
        self.grid.num_batches()
    }

    fn fingerprint(&self) -> String {
        self.grid.axes.fingerprint()
    }

    fn compute_point(&self, point: usize) -> PointPayload {
        PointPayload::Record(self.grid.batch_record(point))
    }

    fn validate(&self, _point: usize, payload: &PointPayload) -> bool {
        match payload {
            PointPayload::Record(blob) => sparten_model::dse::parse_record(blob).is_ok(),
            PointPayload::Capture(_) => false,
        }
    }

    fn render(&self, points: &[PointPayload]) -> Capture {
        let records: Vec<String> = points
            .iter()
            .map(|p| match p {
                PointPayload::Record(blob) => blob.clone(),
                PointPayload::Capture(_) => unreachable!("dse points are records"),
            })
            .collect();
        let merged = merge_records(&records).expect("validated records parse");
        let points = objective_points(&merged);
        let frontier = pareto_frontier(&points);
        let total = self.num_configs();

        let mut text = format!(
            "== Design-space exploration ({}) ==\n\n\
             {} configurations, {} architecture points, {} on the Pareto frontier\n\n",
            self.name,
            total,
            points.len(),
            frontier.len()
        );
        text.push_str(&format!(
            "{:<56} {:>12} {:>12} {:>9}\n",
            "architecture", "MACs/cycle", "pJ/MAC", "membound"
        ));
        for p in &frontier {
            text.push_str(&format!(
                "{:<56} {:>12.4} {:>12.3} {:>8.0}%\n",
                p.key,
                p.throughput,
                p.energy_per_mac_pj,
                100.0 * p.mem_bound as f64 / p.n.max(1) as f64
            ));
        }

        let artifacts = vec![
            (
                format!("results/dse/{}_frontier.json", self.name),
                sparten_model::dse::frontier_json(&frontier, total),
            ),
            (
                format!("results/dse/{}_points.json", self.name),
                points_json(&points, total),
            ),
        ];
        Capture { text, artifacts }
    }
}

/// All architecture points (not just the frontier) as a JSON artifact,
/// rendered with the in-repo writer.
fn points_json(points: &[DsePoint], total_configs: usize) -> String {
    let rows: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("key".into(), Json::Str(p.key.clone())),
                ("throughput_macs_per_cycle".into(), Json::Float(p.throughput)),
                ("energy_per_mac_pj".into(), Json::Float(p.energy_per_mac_pj)),
                ("configs".into(), Json::UInt(p.n)),
                ("mem_bound".into(), Json::UInt(p.mem_bound)),
            ])
        })
        .collect();
    let mut body = Json::Obj(vec![
        (
            "schema".into(),
            Json::Str(format!(
                "{}/points",
                sparten_model::dse::MODEL_VERSION
            )),
        ),
        ("total_configs".into(), Json::UInt(total_configs as u64)),
        ("points".into(), Json::Arr(rows)),
    ])
    .pretty();
    body.push('\n');
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_shape() {
        let e = DseExperiment::quick();
        assert_eq!(e.name(), "dse-quick");
        assert!(e.num_configs() >= 10_000);
        assert!(e.num_points() >= 30);
        assert!(e.fingerprint().contains("sparten-model/v1"));
    }

    #[test]
    fn point_roundtrips_through_validate_and_render() {
        let e = DseExperiment::quick();
        let p0 = e.compute_point(0);
        assert!(e.validate(0, &p0));
        // Render on a single batch still produces a frontier.
        let capture = e.render(std::slice::from_ref(&p0));
        assert!(capture.text.contains("Pareto frontier"));
        assert_eq!(capture.artifacts.len(), 2);
        assert!(capture.artifacts[0].0.ends_with("dse-quick_frontier.json"));
    }

    #[test]
    fn records_are_deterministic() {
        let e = DseExperiment::quick();
        assert_eq!(e.compute_point(3), e.compute_point(3));
    }
}
