#![warn(missing_docs)]

//! Parallel experiment orchestration for the SparTen reproduction.
//!
//! The evaluation consists of ~30 figures, tables, sweeps, and ablations
//! that used to run as independent serial binaries. This crate replaces
//! that with a single harness:
//!
//! * every experiment is an [`Experiment`] — a named, parameterized job
//!   with declared dependencies and one or more independent *points*
//!   (per-layer figures expose one point per network layer);
//! * a worker-pool executor ([`executor::run`]) runs independent jobs and
//!   independent points concurrently on `--jobs` threads, while emitting
//!   per-job output in a deterministic order (the registry's paper order)
//!   regardless of worker interleaving;
//! * a content-addressed cache ([`cache::Cache`]) under `results/cache/`
//!   skips every point whose key — experiment name, configuration
//!   fingerprint, seed, point index, format version — was already
//!   computed, so re-runs are incremental and interrupted sweeps resume;
//! * one CLI (`cargo run -p sparten-harness -- run ...`) replaces the
//!   serial binaries and prints a per-job wall-time/cache-hit summary.
//!
//! Byte-identity with the serial binaries is by construction: experiments
//! route output through `sparten_bench`'s capturable sink and the harness
//! drives the *same* compute and render code the binaries use.

pub mod cache;
pub mod chaos;
pub mod diskchaos;
pub mod dse;
pub mod events;
pub mod executor;
pub mod faults;
pub mod fsck;
pub mod journal;
pub mod serve;
pub mod signal;

use sparten_bench::registry::{layer_from_record, layer_record, NetworkFigure, Runner};
use sparten_bench::{all_experiments, begin_capture, end_capture, Capture, ExperimentKind};
use sparten_telemetry::Telemetry;
use std::sync::Arc;

/// The global workload seed (re-exported from the bench crate so cache
/// keys and experiment code can never disagree on it).
pub use sparten_bench::SEED;

/// What one experiment point computes; this is the unit the cache stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointPayload {
    /// A serialized per-layer result (one `SimResult` record per line).
    Record(String),
    /// A whole experiment's captured output: stdout text plus artifacts.
    Capture(Capture),
}

/// A named, parameterized, schedulable job with independent points.
///
/// Implementations must be deterministic: the same fingerprint and seed
/// must produce bit-identical payloads on every run, which is what makes
/// the content-addressed cache sound.
pub trait Experiment: Send + Sync {
    /// Unique name (matches the serial binary and `results/` basename).
    fn name(&self) -> &'static str;

    /// Artifact kind (figure, table, sweep, ...).
    fn kind(&self) -> ExperimentKind;

    /// Names of experiments that must *finish* before this one starts.
    /// These are reporting-order dependencies; see the registry.
    fn deps(&self) -> &'static [&'static str];

    /// Number of independent points (≥ 1). Points may run concurrently on
    /// different workers in any order.
    fn num_points(&self) -> usize;

    /// Everything that determines this experiment's results besides the
    /// global seed: network, layer shapes, densities, schemes, simulator
    /// configuration. Part of the cache key.
    fn fingerprint(&self) -> String;

    /// Computes point `point` (called on a worker thread).
    fn compute_point(&self, point: usize) -> PointPayload;

    /// Computes point `point` with telemetry: the payload plus a per-point
    /// [`Telemetry`] session the executor merges (in point order) into one
    /// per-job session and exports under `results/telemetry/`.
    ///
    /// The default delegates to [`compute_point`](Self::compute_point) and
    /// records nothing — experiments whose compute path is not
    /// instrumented still run under `--telemetry`, they just contribute
    /// only the harness's own job-level metrics.
    fn compute_point_telemetry(&self, point: usize) -> (PointPayload, Option<Telemetry>) {
        (self.compute_point(point), None)
    }

    /// Whether a cached payload is usable for `point`. The executor treats
    /// `false` as a cache miss and recomputes.
    fn validate(&self, point: usize, payload: &PointPayload) -> bool {
        let _ = (point, payload);
        true
    }

    /// Combines all points (in point order) into the experiment's final
    /// output. Called once on the scheduler thread; must be cheap.
    fn render(&self, points: &[PointPayload]) -> Capture;
}

/// A single-shot experiment: one point that is the whole job.
struct WholeJob {
    name: &'static str,
    kind: ExperimentKind,
    deps: &'static [&'static str],
    run: fn(),
}

impl Experiment for WholeJob {
    fn name(&self) -> &'static str {
        self.name
    }

    fn kind(&self) -> ExperimentKind {
        self.kind
    }

    fn deps(&self) -> &'static [&'static str] {
        self.deps
    }

    fn num_points(&self) -> usize {
        1
    }

    fn fingerprint(&self) -> String {
        // Single-shot experiments carry their parameters in code, so the
        // fingerprint only pins the name; semantic changes are invalidated
        // by bumping the cache format version (see DESIGN.md).
        format!("whole:{}", self.name)
    }

    fn compute_point(&self, _point: usize) -> PointPayload {
        begin_capture();
        (self.run)();
        PointPayload::Capture(end_capture())
    }

    fn validate(&self, _point: usize, payload: &PointPayload) -> bool {
        matches!(payload, PointPayload::Capture(_))
    }

    fn render(&self, points: &[PointPayload]) -> Capture {
        match points {
            [PointPayload::Capture(c)] => c.clone(),
            _ => unreachable!("whole job has exactly one capture point"),
        }
    }
}

/// A per-layer network figure: one point per layer plus a deterministic
/// render step that recombines results in layer order.
struct PerLayerJob {
    name: &'static str,
    kind: ExperimentKind,
    deps: &'static [&'static str],
    figure: NetworkFigure,
    /// Layer names in point order, for re-attaching to cached records.
    layer_names: Vec<&'static str>,
}

impl PerLayerJob {
    fn new(
        name: &'static str,
        kind: ExperimentKind,
        deps: &'static [&'static str],
        figure: NetworkFigure,
    ) -> Self {
        let layer_names = (figure.network)().layers.iter().map(|l| l.name).collect();
        PerLayerJob {
            name,
            kind,
            deps,
            figure,
            layer_names,
        }
    }
}

impl Experiment for PerLayerJob {
    fn name(&self) -> &'static str {
        self.name
    }

    fn kind(&self) -> ExperimentKind {
        self.kind
    }

    fn deps(&self) -> &'static [&'static str] {
        self.deps
    }

    fn num_points(&self) -> usize {
        self.layer_names.len()
    }

    fn fingerprint(&self) -> String {
        self.figure.fingerprint()
    }

    fn compute_point(&self, point: usize) -> PointPayload {
        PointPayload::Record(layer_record(&self.figure.compute_point(point)))
    }

    fn compute_point_telemetry(&self, point: usize) -> (PointPayload, Option<Telemetry>) {
        let session = Telemetry::new();
        let layer = self.figure.compute_point_telemetry(point, &session);
        (PointPayload::Record(layer_record(&layer)), Some(session))
    }

    fn validate(&self, point: usize, payload: &PointPayload) -> bool {
        match payload {
            PointPayload::Record(blob) => {
                layer_from_record(self.layer_names[point], blob).is_some()
            }
            PointPayload::Capture(_) => false,
        }
    }

    fn render(&self, points: &[PointPayload]) -> Capture {
        let layers: Vec<_> = points
            .iter()
            .enumerate()
            .map(|(i, p)| match p {
                PointPayload::Record(blob) => layer_from_record(self.layer_names[i], blob)
                    .expect("validated record parses"),
                PointPayload::Capture(_) => unreachable!("per-layer points are records"),
            })
            .collect();
        begin_capture();
        (self.figure.render)(&layers);
        end_capture()
    }
}

/// The full experiment registry as schedulable jobs, in the paper's
/// presentation order (the harness's deterministic reporting order).
pub fn registry() -> Vec<Arc<dyn Experiment>> {
    all_experiments()
        .into_iter()
        .map(|spec| match spec.runner {
            Runner::Whole(f) => Arc::new(WholeJob {
                name: spec.name,
                kind: spec.kind,
                deps: spec.deps,
                run: f,
            }) as Arc<dyn Experiment>,
            Runner::PerLayer(fig) => {
                Arc::new(PerLayerJob::new(spec.name, spec.kind, spec.deps, fig))
                    as Arc<dyn Experiment>
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_jobs_mirror_bench_registry() {
        let jobs = registry();
        let specs = all_experiments();
        assert_eq!(jobs.len(), specs.len());
        for (j, s) in jobs.iter().zip(&specs) {
            assert_eq!(j.name(), s.name);
            assert!(j.num_points() >= 1);
        }
        // The nine per-network figures expose per-layer points.
        let multi = jobs.iter().filter(|j| j.num_points() > 1).count();
        assert_eq!(multi, 9);
    }

    #[test]
    fn whole_fingerprints_are_distinct() {
        let jobs = registry();
        let fps: std::collections::HashSet<_> =
            jobs.iter().map(|j| j.fingerprint()).collect();
        assert_eq!(fps.len(), jobs.len());
    }
}
