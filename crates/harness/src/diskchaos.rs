//! The disk-fault campaign: run the harness's durable-state machinery on
//! a fault-injecting filesystem, simulate a power cut at an arbitrary
//! instant, and verify that the recovery path restores a state
//! byte-identical to a clean run.
//!
//! One trial = one [`DiskSpec`] from `sparten::faults::disk_plan`. Each
//! trial:
//!
//! 1. runs a small deterministic workload under [`RealFs`] into a
//!    *clean* reference tree (the oracle's ground truth);
//! 2. runs the same workload twice (cold, then warm) under a seeded
//!    [`FaultFs`] injecting the trial's class of filesystem lie —
//!    ENOSPC, short writes, fsync failures, rename failures, read-side
//!    bit rot — into a *faulted* tree, recording the op log;
//! 3. simulates a power cut: [`materialize_prefix`] replays an
//!    arbitrary seeded prefix of the op log into a fresh *cut* tree,
//!    honoring fsync barriers and seeded-tearing unsynced tails;
//! 4. recovers the cut tree the way an operator would: `run --resume`
//!    for every dangling journal (or a fresh run when none survived),
//!    then `fsck --repair`, then a final clean audit;
//! 5. checks the oracle invariants: every cut journal replays (torn
//!    tails only, never interior corruption), resume replays exactly
//!    the journaled points, repair leaves a clean tree with no journal
//!    behind, and the recovered artifacts and every surviving cache
//!    entry are byte-identical to the clean reference tree.
//!
//! The report tallies only invariant outcomes (clean / violated /
//! crashed) and deterministic violation messages — never timings, pids,
//! or absolute paths — so the same seed renders a byte-identical report.

use crate::executor::{self, RunOptions};
use crate::fsck::{self, Action};
use crate::journal;
use crate::{events, Experiment, PointPayload};
use sparten::faults::{disk_plan, DiskFaultClass, DiskOutcome, DiskReport, DiskSpec, FaultRng};
use sparten_bench::json::Json;
use sparten_bench::vfs::{materialize_prefix, FaultConfig, FaultFs, RealFs, Vfs};
use sparten_bench::{Capture, ExperimentKind};
use sparten_telemetry::Telemetry;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Runs a full disk-fault campaign and returns the report. The report is
/// a deterministic function of `(seed, trials_per_class)` as long as
/// every invariant holds; violations append their (deterministic)
/// messages. Campaign totals land in `telemetry` as the `disk.injected`,
/// `disk.enospc`, and `recovery.repaired` counters.
pub fn run_campaign(seed: u64, trials_per_class: u32, telemetry: &Telemetry) -> DiskReport {
    let mut report = DiskReport::new(seed);
    // Faulted runs warn loudly by design (cache writes failing under
    // ENOSPC, journal appends failing under fsync faults); the stderr
    // mirror is silenced around the trials so the campaign output is the
    // report, not hundreds of expected degradation warnings.
    events::set_mirror(false);
    for spec in disk_plan(seed, trials_per_class) {
        // A panicking trial is exactly the "crashed" outcome; the hook
        // noise is suppressed around the call so expected unwinds don't
        // spam the campaign output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(|| run_trial(&spec, telemetry)));
        std::panic::set_hook(prev);
        match result {
            Ok(violations) if violations.is_empty() => {
                report.record(spec.class, spec.trial, DiskOutcome::Clean, "");
            }
            Ok(violations) => {
                report.record(
                    spec.class,
                    spec.trial,
                    DiskOutcome::Violated,
                    &violations.join("; "),
                );
            }
            Err(_) => {
                report.record(
                    spec.class,
                    spec.trial,
                    DiskOutcome::Crashed,
                    "trial harness panicked",
                );
            }
        }
    }
    events::set_mirror(true);
    report
}

/// A deterministic synthetic experiment for disk trials. Points carry a
/// fixed-size payload so the ENOSPC byte budget lands mid-run, and the
/// artifact is a parseable JSON file whose bytes depend only on the
/// workload — never on which tree it was computed in — so the oracle can
/// byte-compare recovered trees against the clean reference.
struct DiskExp {
    name: &'static str,
    points: usize,
    /// Folded into the fingerprint so every trial gets fresh cache keys
    /// even though the name pool is static. Identical across the trial's
    /// clean / faulted / cut trees — resume and the oracle depend on the
    /// three trees sharing cache keys and registry fingerprints.
    salt: u64,
    /// Where this instance writes its artifact (the tree root). Not part
    /// of the fingerprint for the same reason `salt` is shared.
    artifact_dir: PathBuf,
}

/// Static name pool: [`Experiment::name`] returns `&'static str`, so
/// trials draw from a fixed set and differentiate via the fingerprint.
const NAMES: &[&str] = &["disk-a", "disk-b"];

/// Points per synthetic experiment (two experiments per trial).
const POINTS: usize = 3;

impl Experiment for DiskExp {
    fn name(&self) -> &'static str {
        self.name
    }
    fn kind(&self) -> ExperimentKind {
        ExperimentKind::Study
    }
    fn deps(&self) -> &'static [&'static str] {
        &[]
    }
    fn num_points(&self) -> usize {
        self.points
    }
    fn fingerprint(&self) -> String {
        format!("disk:{}:{}:{:016x}", self.name, self.points, self.salt)
    }
    fn compute_point(&self, point: usize) -> PointPayload {
        // ~100 bytes per point: enough volume that the seeded ENOSPC
        // budget can land between any two durable-state writes.
        let filler = "0123456789abcdef".repeat(4);
        PointPayload::Record(format!("{} point {point} payload {filler}\n", self.name))
    }
    fn render(&self, points: &[PointPayload]) -> Capture {
        let mut text = format!("== {} ==\n", self.name);
        let mut rows = Vec::with_capacity(points.len());
        for (i, p) in points.iter().enumerate() {
            match p {
                PointPayload::Record(blob) => {
                    text.push_str(blob);
                    rows.push(Json::obj([
                        ("point", Json::UInt(i as u64)),
                        ("record", Json::str(blob.trim_end())),
                    ]));
                }
                PointPayload::Capture(_) => unreachable!(),
            }
        }
        let artifact = Json::obj([
            ("experiment", Json::str(self.name)),
            ("points", Json::Arr(rows)),
        ]);
        Capture {
            text,
            artifacts: vec![(
                self.artifact_dir
                    .join(format!("{}.json", self.name))
                    .to_string_lossy()
                    .into_owned(),
                artifact.pretty() + "\n",
            )],
        }
    }
}

fn exps(spec: &DiskSpec, artifact_dir: &Path) -> Vec<Arc<dyn Experiment>> {
    NAMES
        .iter()
        .map(|&name| {
            Arc::new(DiskExp {
                name,
                points: POINTS,
                salt: spec.seed,
                artifact_dir: artifact_dir.to_path_buf(),
            }) as Arc<dyn Experiment>
        })
        .collect()
}

/// The trial's run options over `tree`: single worker (so the op log is
/// a deterministic sequence), journaled, artifact-writing, no quarantine
/// report (failures under injected faults are the trial's business, not
/// a shared file's).
fn opts(tree: &Path, vfs: Arc<dyn Vfs>, run_id: String, resume: Option<PathBuf>) -> RunOptions {
    RunOptions {
        jobs: 1,
        cache_dir: tree.join("cache"),
        stream_output: false,
        failures_path: None,
        journal_dir: Some(tree.join("journal")),
        resume,
        run_id: Some(run_id),
        vfs,
        ..RunOptions::default()
    }
}

/// The seeded injection knobs for one class. Exactly one lie per trial,
/// so a recovery failure is attributable to the class that exposed it.
fn config_for(class: DiskFaultClass, rng: &mut FaultRng) -> FaultConfig {
    match class {
        DiskFaultClass::Enospc => FaultConfig {
            enospc_after_bytes: Some(800 + rng.gen_range(2400)),
            ..FaultConfig::default()
        },
        DiskFaultClass::ShortWrite => FaultConfig {
            short_write_per_mille: 100 + rng.gen_range(200) as u32,
            ..FaultConfig::default()
        },
        DiskFaultClass::FsyncFailure => FaultConfig {
            fsync_fail_per_mille: 150 + rng.gen_range(250) as u32,
            ..FaultConfig::default()
        },
        DiskFaultClass::RenameFailure => FaultConfig {
            rename_fail_per_mille: 200 + rng.gen_range(300) as u32,
            ..FaultConfig::default()
        },
        DiskFaultClass::BitRot => FaultConfig {
            read_bitrot_per_mille: 150 + rng.gen_range(250) as u32,
            ..FaultConfig::default()
        },
    }
}

/// Name-sorted `*.jsonl` journals under `dir`; missing dir is empty.
fn journal_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .collect();
    files.sort();
    files
}

/// A path's file name as deterministic violation-message material.
fn short(path: &Path) -> String {
    path.file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("?")
        .to_string()
}

fn run_trial(spec: &DiskSpec, telemetry: &Telemetry) -> Vec<String> {
    let mut rng = spec.rng();
    let mut violations = Vec::new();
    let config = config_for(spec.class, &mut rng);
    let tag = format!("disk-{}-t{}", spec.class.label(), spec.trial);

    let root = std::env::temp_dir().join(format!(
        "sparten-diskchaos-{}-{:016x}",
        std::process::id(),
        spec.seed
    ));
    let _ = std::fs::remove_dir_all(&root);
    let clean = root.join("clean");
    let faulted = root.join("faulted");
    let cut = root.join("cut");

    // 1. Clean reference run under RealFs: the oracle's ground truth.
    //    A failure here is a broken trial, not a recovery violation, but
    //    it must still be reported — there is nothing to compare against.
    let clean_opts = opts(&clean, Arc::new(RealFs), format!("{tag}-clean"), None);
    match executor::run(&exps(spec, &clean), &clean_opts) {
        Ok(report) => {
            for job in &report.jobs {
                if let Some(e) = &job.error {
                    violations.push(format!("clean reference job {} failed: {e}", job.name));
                }
            }
        }
        Err(e) => violations.push(format!("clean reference run failed: {e}")),
    }
    if !violations.is_empty() {
        return violations;
    }

    // 2. Faulted cold + warm runs sharing one FaultFs (one op log, one
    //    injection stream). Degraded or failed runs are the point; the
    //    invariants are checked on what the power cut leaves behind.
    //    The VFS seed is derived so it never aliases the trial RNG.
    let faultfs = FaultFs::new(FaultRng::derive(spec.seed, 1), config);
    for phase in ["cold", "warm"] {
        let o = opts(
            &faulted,
            Arc::new(faultfs.clone()),
            format!("{tag}-{phase}"),
            None,
        );
        let _ = executor::run(&exps(spec, &faulted), &o);
    }
    telemetry.metrics.counter("disk.injected").add(faultfs.injected());
    telemetry.metrics.counter("disk.enospc").add(faultfs.enospc_hits());

    // 3. Power cut: replay a seeded op-prefix into the cut tree.
    let ops = faultfs.ops();
    let cut_at = rng.gen_range(ops.len() as u64 + 1) as usize;
    if let Err(e) = materialize_prefix(&ops, cut_at, &mut rng, &faulted, &cut) {
        violations.push(format!("power-cut materialization failed: {e}"));
        return violations;
    }

    // 4a. Resume every dangling journal the cut left behind, in sorted
    //     order (a cold run whose seal failed plus a warm run cut
    //     mid-flight can leave two). Invariant: a cut journal either
    //     replays (torn tail at worst) or was cut before its start record
    //     became durable — interior corruption is impossible by
    //     construction (append rollback + reopen truncation).
    let cut_exps = exps(spec, &cut);
    let mut recovered = false;
    for path in journal_files(&cut.join("journal")) {
        match journal::replay(&path) {
            Err(e) if e.contains("is empty") => {
                // Cut before the start record landed; fsck discards it.
            }
            Err(e) => violations.push(format!("cut journal {} does not replay: {e}", short(&path))),
            Ok(replay) if replay.ended => {
                // The run completed but the cut fell between its end
                // record and the unlink; fsck quarantines it below.
            }
            Ok(replay) => {
                let journaled: BTreeSet<(String, usize)> = replay
                    .points
                    .iter()
                    .map(|(job, point, _, _)| (job.clone(), *point))
                    .collect();
                let o = opts(&cut, Arc::new(RealFs), format!("{tag}-resume"), Some(path.clone()));
                match executor::run(&cut_exps, &o) {
                    Ok(report) => {
                        recovered = true;
                        for job in &report.jobs {
                            if let Some(e) = &job.error {
                                violations
                                    .push(format!("resumed job {} failed: {e}", job.name));
                            }
                        }
                        if report.replayed != journaled.len() {
                            violations.push(format!(
                                "resume of {} replayed {} point(s), journal holds {}",
                                short(&path),
                                report.replayed,
                                journaled.len()
                            ));
                        }
                    }
                    Err(e) => violations
                        .push(format!("cannot resume cut journal {}: {e}", short(&path))),
                }
            }
        }
    }

    // 4b. No resumable journal survived the cut: recover with a fresh
    //     run, rebuilding artifacts from the surviving cache entries.
    if !recovered {
        let o = opts(&cut, Arc::new(RealFs), format!("{tag}-recover"), None);
        match executor::run(&cut_exps, &o) {
            Ok(report) => {
                for job in &report.jobs {
                    if let Some(e) = &job.error {
                        violations.push(format!("recovery job {} failed: {e}", job.name));
                    }
                }
            }
            Err(e) => violations.push(format!("recovery run failed: {e}")),
        }
    }

    // 4c. fsck --repair sweeps what the cut left over: stale temp files,
    //     journals that never got a start record, sealed journals whose
    //     unlink was cut away. Every finding must be repaired.
    match fsck::fsck(&cut, NAMES, true) {
        Ok(rep) => {
            let mut repaired = 0u64;
            for f in &rep.findings {
                match &f.action {
                    Action::Deleted | Action::Quarantined(_) => repaired += 1,
                    Action::Failed(e) => {
                        violations.push(format!("repair of {} failed: {e}", f.path))
                    }
                    Action::None => {
                        violations.push(format!("finding {} was not repaired", f.path))
                    }
                }
            }
            telemetry.metrics.counter("recovery.repaired").add(repaired);
        }
        Err(e) => violations.push(format!("fsck --repair failed: {e}")),
    }

    // 5a. Final audit: after recovery the tree must be finding-free and
    //     hold no journal (resumes seal theirs, repair removed the rest).
    match fsck::fsck(&cut, NAMES, false) {
        Ok(rep) => {
            for f in &rep.findings {
                violations.push(format!(
                    "recovered tree still has a {} finding: {}",
                    f.category, f.path
                ));
            }
        }
        Err(e) => violations.push(format!("post-repair fsck failed: {e}")),
    }
    for path in journal_files(&cut.join("journal")) {
        violations.push(format!("journal {} left behind after recovery", short(&path)));
    }

    // 5b. The oracle: recovered artifacts must be byte-identical to the
    //     clean reference, and every surviving cache entry must match its
    //     clean counterpart byte for byte (missing entries are fine —
    //     resume does not rewrite entries for replayed points).
    for name in NAMES {
        let file = format!("{name}.json");
        match (std::fs::read(cut.join(&file)), std::fs::read(clean.join(&file))) {
            (Ok(a), Ok(b)) if a == b => {}
            (Ok(_), Ok(_)) => {
                violations.push(format!("artifact {file} diverges from the clean run"))
            }
            _ => violations.push(format!("artifact {file} missing after recovery")),
        }
    }
    let mut cache_entries: Vec<PathBuf> = std::fs::read_dir(cut.join("cache"))
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "cache"))
                .collect()
        })
        .unwrap_or_default();
    cache_entries.sort();
    for path in cache_entries {
        let counterpart = clean.join("cache").join(path.file_name().unwrap_or_default());
        match (std::fs::read(&path), std::fs::read(&counterpart)) {
            (Ok(a), Ok(b)) if a == b => {}
            (Ok(_), Ok(_)) => violations.push(format!(
                "cache entry {} diverges from the clean run",
                short(&path)
            )),
            _ => violations.push(format!(
                "cache entry {} has no clean-run counterpart",
                short(&path)
            )),
        }
    }

    if violations.is_empty() {
        let _ = std::fs::remove_dir_all(&root);
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_is_deterministic_and_clean() {
        let telemetry = Telemetry::new();
        let a = run_campaign(1, 1, &telemetry);
        let b = run_campaign(1, 1, &telemetry);
        assert_eq!(a.render(), b.render(), "same seed, same report");
        assert_eq!(a.trials(), 5);
        assert_eq!(a.violated(), 0, "no invariant may break:\n{}", a.render());
        assert_eq!(a.crashed(), 0, "no trial may crash:\n{}", a.render());
        // The campaign accounts for its injections: the counters the CI
        // smoke greps for must exist (ENOSPC necessarily fires — its
        // byte budget is far below the workload's write volume).
        let snap = telemetry.metrics.snapshot();
        assert!(snap.counter("disk.injected").unwrap_or(0) > 0);
        assert!(snap.counter("disk.enospc").unwrap_or(0) > 0);
        assert!(snap.counter("recovery.repaired").is_some());
    }
}
