//! The worker-pool executor: schedules experiment points across threads,
//! consults the cache, and emits per-job output in deterministic order.
//!
//! Scheduling model:
//!
//! * the *scheduler* (calling thread) owns the job graph and the cache;
//! * `jobs` worker threads pull `(job, point)` tasks from a shared queue
//!   and compute payloads — points of different jobs and of the same job
//!   interleave freely;
//! * completed payloads flow back to the scheduler, which writes cache
//!   entries, fires dependent jobs when their dependencies finish, and
//!   renders each finished job exactly once;
//! * job output (text and artifacts) is emitted in *registry order*, not
//!   completion order, so a run's transcript is bit-identical no matter
//!   how many workers raced on it.
//!
//! A panicking point is caught on the worker, reported as a failed job,
//! and does not poison the rest of the run.

use crate::cache::Cache;
use crate::{Experiment, PointPayload};
use sparten_bench::ExperimentKind;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Options for one [`run`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Case-sensitive substring filter on experiment names; `None` runs
    /// everything. Dependencies on filtered-out jobs are waived (they are
    /// reporting-order constraints, not data dependencies).
    pub filter: Option<String>,
    /// Worker thread count (≥ 1).
    pub jobs: usize,
    /// Ignore cache hits and recompute every point (entries are rewritten).
    pub force: bool,
    /// Cache directory, conventionally `results/cache/`.
    pub cache_dir: std::path::PathBuf,
    /// Write each job's artifacts (`results/*.json`) to disk.
    pub write_artifacts: bool,
    /// Print each job's captured output (in registry order) as it becomes
    /// available. Tests turn this off and read the report instead.
    pub stream_output: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            filter: None,
            jobs: default_jobs(),
            force: false,
            cache_dir: "results/cache".into(),
            write_artifacts: true,
            stream_output: true,
        }
    }
}

/// The default worker count: available parallelism, or 1 if unknown.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Outcome of one job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Experiment name.
    pub name: &'static str,
    /// Artifact kind.
    pub kind: ExperimentKind,
    /// Number of points.
    pub points: usize,
    /// How many points were served from the cache.
    pub cache_hits: usize,
    /// Wall time attributable to this job: point compute time (summed
    /// across workers) plus the render step.
    pub wall: Duration,
    /// The job's final captured stdout text.
    pub output: String,
    /// The job's file artifacts as `(path, contents)` pairs.
    pub artifacts: Vec<(String, String)>,
    /// Panic message if any point failed; the job then has no output.
    pub error: Option<String>,
}

/// Outcome of one [`run`]: per-job reports in registry order.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Reports in registry (deterministic emission) order.
    pub jobs: Vec<JobReport>,
    /// End-to-end elapsed time of the run.
    pub elapsed: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl RunReport {
    /// Total points across all jobs.
    pub fn total_points(&self) -> usize {
        self.jobs.iter().map(|j| j.points).sum()
    }

    /// Total cache hits across all jobs.
    pub fn total_hits(&self) -> usize {
        self.jobs.iter().map(|j| j.cache_hits).sum()
    }

    /// Whether every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.jobs.iter().all(|j| j.error.is_none())
    }
}

struct Task {
    job: usize,
    point: usize,
}

struct Done {
    job: usize,
    point: usize,
    payload: Result<PointPayload, String>,
    took: Duration,
}

struct JobState {
    remaining_deps: usize,
    dependents: Vec<usize>,
    pending_points: usize,
    points: Vec<Option<PointPayload>>,
    cache_hits: usize,
    compute_time: Duration,
    error: Option<String>,
    finished: bool,
}

/// Runs `experiments` (filtered per `opts`) and returns per-job reports in
/// registry order.
///
/// # Panics
///
/// Panics if `opts.jobs` is 0 or the dependency graph has a cycle.
pub fn run(experiments: &[Arc<dyn Experiment>], opts: &RunOptions) -> RunReport {
    assert!(opts.jobs >= 1, "--jobs must be at least 1");
    let start = Instant::now();
    let cache = Cache::new(opts.cache_dir.clone());

    // Filter, then restrict deps to the selected set.
    let selected: Vec<Arc<dyn Experiment>> = experiments
        .iter()
        .filter(|e| {
            opts.filter
                .as_deref()
                .is_none_or(|f| e.name().contains(f))
        })
        .cloned()
        .collect();
    let index: HashMap<&str, usize> = selected
        .iter()
        .enumerate()
        .map(|(i, e)| (e.name(), i))
        .collect();

    let mut states: Vec<JobState> = selected
        .iter()
        .map(|e| JobState {
            remaining_deps: 0,
            dependents: Vec::new(),
            pending_points: e.num_points(),
            points: vec![None; e.num_points()],
            cache_hits: 0,
            compute_time: Duration::ZERO,
            error: None,
            finished: false,
        })
        .collect();
    for (i, e) in selected.iter().enumerate() {
        for d in e.deps() {
            if let Some(&j) = index.get(d) {
                states[i].remaining_deps += 1;
                states[j].dependents.push(i);
            }
        }
    }

    // Worker pool over a shared task queue.
    let (task_tx, task_rx) = mpsc::channel::<Task>();
    let task_rx = Arc::new(Mutex::new(task_rx));
    let (done_tx, done_rx) = mpsc::channel::<Done>();
    let workers: Vec<_> = (0..opts.jobs)
        .map(|_| {
            let rx = Arc::clone(&task_rx);
            let tx = done_tx.clone();
            let exps: Vec<Arc<dyn Experiment>> = selected.clone();
            thread::spawn(move || loop {
                let task = match rx.lock().expect("task queue").recv() {
                    Ok(t) => t,
                    Err(_) => break,
                };
                let exp = Arc::clone(&exps[task.job]);
                let t0 = Instant::now();
                let payload = catch_unwind(AssertUnwindSafe(|| exp.compute_point(task.point)))
                    .map_err(|p| panic_message(&p));
                let send = tx.send(Done {
                    job: task.job,
                    point: task.point,
                    payload,
                    took: t0.elapsed(),
                });
                if send.is_err() {
                    break;
                }
            })
        })
        .collect();
    drop(done_tx);

    let mut reports: Vec<Option<JobReport>> = (0..selected.len()).map(|_| None).collect();
    let mut emit_cursor = 0usize;
    let mut outstanding = 0usize; // tasks dispatched, not yet completed
    let mut unfinished = selected.len();

    // Schedule a job: serve points from the cache, dispatch the misses.
    // Returns true if the job completed entirely from cache.
    let schedule = |job: usize,
                    states: &mut Vec<JobState>,
                    outstanding: &mut usize|
     -> bool {
        let exp = &selected[job];
        let fp = exp.fingerprint();
        for point in 0..exp.num_points() {
            let key = Cache::key(exp.name(), &fp, crate::SEED, point);
            let hit = if opts.force {
                None
            } else {
                cache
                    .load(exp.name(), point, key)
                    .filter(|p| exp.validate(point, p))
            };
            match hit {
                Some(payload) => {
                    states[job].points[point] = Some(payload);
                    states[job].cache_hits += 1;
                    states[job].pending_points -= 1;
                }
                None => {
                    task_tx.send(Task { job, point }).expect("workers alive");
                    *outstanding += 1;
                }
            }
        }
        states[job].pending_points == 0
    };

    // Finish a job: render, record the report, and fire dependents.
    // Newly-ready dependents are returned for scheduling.
    fn finish(
        job: usize,
        selected: &[Arc<dyn Experiment>],
        states: &mut [JobState],
        reports: &mut [Option<JobReport>],
        unfinished: &mut usize,
    ) -> Vec<usize> {
        let exp = &selected[job];
        let (output, artifacts, error) = if let Some(e) = states[job].error.take() {
            (String::new(), Vec::new(), Some(e))
        } else {
            let points: Vec<PointPayload> = states[job]
                .points
                .iter()
                .map(|p| p.clone().expect("all points complete"))
                .collect();
            let t0 = Instant::now();
            let capture = exp.render(&points);
            states[job].compute_time += t0.elapsed();
            (capture.text, capture.artifacts, None)
        };
        reports[job] = Some(JobReport {
            name: exp.name(),
            kind: exp.kind(),
            points: exp.num_points(),
            cache_hits: states[job].cache_hits,
            wall: states[job].compute_time,
            output,
            artifacts,
            error,
        });
        states[job].finished = true;
        *unfinished -= 1;
        let mut ready = Vec::new();
        let dependents = states[job].dependents.clone();
        for d in dependents {
            states[d].remaining_deps -= 1;
            if states[d].remaining_deps == 0 {
                ready.push(d);
            }
        }
        ready
    }

    // Seed the queue with dependency-free jobs; drain completions, firing
    // dependents as their dependencies finish.
    let mut ready: Vec<usize> = (0..selected.len())
        .filter(|&i| states[i].remaining_deps == 0)
        .collect();
    while !ready.is_empty() || unfinished > 0 {
        for job in std::mem::take(&mut ready) {
            if schedule(job, &mut states, &mut outstanding) {
                let newly = finish(job, &selected, &mut states, &mut reports, &mut unfinished);
                ready.extend(newly);
            }
        }
        if !ready.is_empty() {
            continue; // fully-cached chains resolve without touching workers
        }
        if unfinished == 0 {
            break;
        }
        assert!(
            outstanding > 0,
            "dependency cycle: jobs remain but nothing is runnable"
        );
        let done = done_rx.recv().expect("workers alive");
        outstanding -= 1;
        let state = &mut states[done.job];
        state.compute_time += done.took;
        state.pending_points -= 1;
        match done.payload {
            Ok(payload) => {
                let exp = &selected[done.job];
                let key = Cache::key(exp.name(), &exp.fingerprint(), crate::SEED, done.point);
                if let Err(e) = cache.store(exp.name(), done.point, key, &payload) {
                    eprintln!("warning: cache write failed for {}: {e}", exp.name());
                }
                state.points[done.point] = Some(payload);
            }
            Err(msg) => {
                let name = selected[done.job].name();
                let point = done.point;
                state
                    .error
                    .get_or_insert_with(|| format!("point {point} of {name} panicked: {msg}"));
            }
        }
        if state.pending_points == 0 {
            let newly = finish(done.job, &selected, &mut states, &mut reports, &mut unfinished);
            ready.extend(newly);
        }

        // Emit finished jobs in registry order as they become available.
        if opts.stream_output {
            emit_ready(&mut emit_cursor, &reports);
        }
    }
    if opts.stream_output {
        emit_ready(&mut emit_cursor, &reports);
    }

    drop(task_tx);
    for w in workers {
        let _ = w.join();
    }

    let jobs: Vec<JobReport> = reports.into_iter().map(|r| r.expect("finished")).collect();
    if opts.write_artifacts {
        for job in &jobs {
            for (path, contents) in &job.artifacts {
                write_artifact(path, contents);
            }
        }
    }
    RunReport {
        jobs,
        elapsed: start.elapsed(),
        workers: opts.jobs,
    }
}

fn emit_ready(cursor: &mut usize, reports: &[Option<JobReport>]) {
    while *cursor < reports.len() {
        let Some(report) = &reports[*cursor] else { break };
        match &report.error {
            Some(e) => println!("== {} == FAILED: {e}\n", report.name),
            None => print!("{}", report.output),
        }
        *cursor += 1;
    }
}

fn write_artifact(path: &str, contents: &str) {
    let p = Path::new(path);
    if let Some(parent) = p.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(p, contents) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}
