//! The worker-pool executor: schedules experiment points across threads,
//! consults the cache, and emits per-job output in deterministic order.
//!
//! Scheduling model:
//!
//! * the *scheduler* (calling thread) owns the job graph and the cache;
//! * `jobs` worker threads pull `(job, point)` tasks from a shared queue
//!   and compute payloads — points of different jobs and of the same job
//!   interleave freely;
//! * completed payloads flow back to the scheduler, which writes cache
//!   entries, fires dependent jobs when their dependencies finish, and
//!   renders each finished job exactly once;
//! * job output (text and artifacts) is emitted in *registry order*, not
//!   completion order, so a run's transcript is bit-identical no matter
//!   how many workers raced on it.
//!
//! The executor *self-heals*: a panicking point is caught on the worker
//! and retried deterministically (same inputs, bounded attempts); a point
//! that exceeds the per-point watchdog deadline is abandoned, its worker
//! written off and replaced, and the attempt counted as failed. A point
//! that exhausts its attempts is *quarantined*: its job is reported failed
//! and listed in `results/failures.json`, but every other job still runs
//! to completion and renders byte-identical output to a clean run.

use crate::cache::{self, Cache, Lookup};
use crate::events;
use crate::journal::{self, Journal, JournalJob, Record, StartRecord};
use crate::{Experiment, PointPayload};
use sparten_bench::json::Json;
use sparten_bench::vfs::{atomic_write_with, RealFs, Vfs};
use sparten_bench::ExperimentKind;
use sparten_telemetry::{
    cancel, chrome_trace, export_session, import_session, text_report, CancelToken, Telemetry,
    TraceContext,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Where a completed point's payload came from, for [`ProgressHook`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointOrigin {
    /// Served from the content-addressed cache without computing.
    Cache,
    /// Computed by a worker this run.
    Computed,
}

/// The callable a [`ProgressHook`] wraps: `(job_name, point, origin)`.
pub type ProgressFn = dyn Fn(&str, usize, PointOrigin) + Send + Sync;

/// Per-point progress callback, invoked on the scheduler thread as
/// `(job_name, point, origin)` the moment each point is resolved —
/// whether served from cache or computed. Consumers (the serve daemon's
/// streaming sessions) must return quickly; the scheduler blocks on it.
#[derive(Clone)]
pub struct ProgressHook(pub Arc<ProgressFn>);

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// Options for one [`run`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Case-sensitive substring filter on experiment names; `None` runs
    /// everything. Dependencies on filtered-out jobs are waived (they are
    /// reporting-order constraints, not data dependencies).
    pub filter: Option<String>,
    /// Worker thread count (≥ 1).
    pub jobs: usize,
    /// Ignore cache hits and recompute every point (entries are rewritten).
    pub force: bool,
    /// Cache directory, conventionally `results/cache/`.
    pub cache_dir: std::path::PathBuf,
    /// Write each job's artifacts (`results/*.json`) to disk.
    pub write_artifacts: bool,
    /// Print each job's captured output (in registry order) as it becomes
    /// available. Tests turn this off and read the report instead.
    pub stream_output: bool,
    /// When set, collect telemetry for every job and write one Chrome
    /// trace (`<job>.json`, loadable in Perfetto) plus one plain-text
    /// report (`<job>.txt`) per job into this directory. Telemetry implies
    /// a cache bypass: every point is recomputed so the counters describe
    /// the *whole* run, not just the cache misses (entries are still
    /// rewritten, so the cache stays warm).
    pub telemetry_dir: Option<std::path::PathBuf>,
    /// Total attempts per point before quarantine (≥ 1). Retries are
    /// deterministic re-invocations of the same point function, so a
    /// transient panic (poisoned global, resource blip) heals while a
    /// reproducible one fails fast.
    pub max_attempts: usize,
    /// Per-point watchdog deadline, measured from the instant a worker
    /// starts computing the point. An expired point counts as one failed
    /// attempt; its (possibly hung) worker is written off and replaced so
    /// pool capacity is preserved. `None` disables the watchdog.
    pub point_timeout: Option<Duration>,
    /// Where to write the machine-readable quarantine report when any
    /// point exhausts its attempts. A clean run removes a stale report at
    /// this path. `None` skips the report entirely (tests).
    pub failures_path: Option<std::path::PathBuf>,
    /// Directory for the write-ahead run journal (conventionally
    /// `results/journal/`). `None` disables journaling — runs are then not
    /// resumable after a crash (unit tests that don't exercise recovery).
    pub journal_dir: Option<std::path::PathBuf>,
    /// Resume from this journal: replay its completed points, verify its
    /// pinned options and registry fingerprint against this run's, and
    /// compute only what is missing. The journal keeps growing in place.
    pub resume: Option<std::path::PathBuf>,
    /// Run id override (the journal file stem). `None` generates one from
    /// wall clock and pid.
    pub run_id: Option<String>,
    /// Cooperative-shutdown flag (see [`crate::signal`]): `0` run, `>= 1`
    /// drain — stop dispatching, let in-flight points finish up to
    /// [`drain_timeout`](Self::drain_timeout), journal a clean shutdown.
    pub shutdown: Option<Arc<AtomicUsize>>,
    /// How long a drain waits for in-flight points before abandoning them.
    pub drain_timeout: Duration,
    /// Crash-test hook: return with an error — no shutdown record, no
    /// artifacts, journal left dangling, exactly like a `kill -9` — after
    /// this many points have been computed and journaled.
    pub abort_after: Option<usize>,
    /// Per-point progress callback (see [`ProgressHook`]); `None` for
    /// batch runs.
    pub progress: Option<ProgressHook>,
    /// The trace context this run executes under (minted per serve
    /// request or CLI invocation). Stamped onto the journal's start
    /// record and every structured event, and used to derive per-point
    /// child spans recorded into [`trace_sink`](Self::trace_sink).
    pub trace: Option<TraceContext>,
    /// Shared telemetry session receiving *wall-clock* spans for this
    /// run: one span per computed point, a cache-hit instant per cached
    /// point, and each point's merged simulator session — all stamped
    /// with child contexts of [`trace`](Self::trace). The serve daemon
    /// passes its server-wide session here so one `/trace` export shows
    /// request → gate → queue wait → point → chunk on a single
    /// timeline. Unlike [`telemetry_dir`](Self::telemetry_dir), a trace
    /// sink does **not** bypass the cache: it observes the run the
    /// service actually performed, cache hits included.
    pub trace_sink: Option<Arc<Telemetry>>,
    /// Time base for trace-sink span timestamps (µs since this instant),
    /// so executor spans align with the owning server's timeline. `None`
    /// uses the run's own start.
    pub trace_epoch: Option<Instant>,
    /// Cooperative cancellation for this run (per serve request, fired on
    /// deadline expiry or when every subscriber of a coalesced job
    /// disconnects). Workers install it as the thread's current token so
    /// the simulators' chunk-batch checkpoints can stop mid-point; the
    /// scheduler treats a fired token like a shutdown drain, except the
    /// journal is sealed `cancelled` (nobody will resume an abandoned
    /// request) and points are never retried or quarantined for stopping.
    pub cancel: Option<CancelToken>,
    /// The filesystem every durable-state operation goes through: the
    /// journal, the cache, artifacts, telemetry exports, and the failures
    /// report. Production runs use the passthrough [`RealFs`]; the disk
    /// chaos campaign substitutes a fault-injecting implementation.
    pub vfs: Arc<dyn Vfs>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            filter: None,
            jobs: default_jobs(),
            force: false,
            cache_dir: "results/cache".into(),
            write_artifacts: true,
            stream_output: true,
            telemetry_dir: None,
            max_attempts: 2,
            point_timeout: None,
            failures_path: Some("results/failures.json".into()),
            journal_dir: Some("results/journal".into()),
            resume: None,
            run_id: None,
            shutdown: None,
            drain_timeout: Duration::from_secs(30),
            abort_after: None,
            progress: None,
            trace: None,
            trace_sink: None,
            trace_epoch: None,
            cancel: None,
            vfs: Arc::new(RealFs),
        }
    }
}

/// Classified cache-lookup totals for one run (the `cache.rs` diagnostics
/// surfaced in the end-of-run summary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries that existed, parsed, and validated.
    pub hits: usize,
    /// Keys with no entry file (first computation or post-`clean`).
    pub misses: usize,
    /// Entry files that existed but were unusable — truncated, corrupt,
    /// stale format, or rejected by the experiment's validator. These are
    /// recomputed like misses but indicate cache damage, so they are
    /// counted apart.
    pub malformed: usize,
    /// Orphaned `*.tmp` files from interrupted writers, swept when the
    /// cache was opened for this run.
    pub swept_tmp: usize,
}

impl CacheStats {
    /// Total lookups performed.
    pub fn lookups(&self) -> usize {
        self.hits + self.misses + self.malformed
    }
}

/// The default worker count: available parallelism, or 1 if unknown.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Outcome of one job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Experiment name.
    pub name: &'static str,
    /// Artifact kind.
    pub kind: ExperimentKind,
    /// Number of points.
    pub points: usize,
    /// How many points were served from the cache.
    pub cache_hits: usize,
    /// Wall time attributable to this job: point compute time (summed
    /// across workers) plus the render step.
    pub wall: Duration,
    /// The job's final captured stdout text.
    pub output: String,
    /// The job's file artifacts as `(path, contents)` pairs.
    pub artifacts: Vec<(String, String)>,
    /// Panic message if any point failed; the job then has no output.
    pub error: Option<String>,
    /// The job's exported telemetry, when the run collected it.
    pub telemetry: Option<JobTelemetry>,
}

/// One job's serialized telemetry, ready to write to disk.
#[derive(Debug, Clone)]
pub struct JobTelemetry {
    /// Chrome trace-event JSON (load at ui.perfetto.dev).
    pub chrome_json: String,
    /// Plain-text report (parses back via `sparten_telemetry::parse_report`).
    pub report_text: String,
}

/// One quarantined point — a point that exhausted its retry budget — as
/// written to `results/failures.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// Experiment name of the failing job.
    pub job: &'static str,
    /// Point index within the job.
    pub point: usize,
    /// How many attempts were made (== the run's `max_attempts`).
    pub attempts: usize,
    /// Failure kind of the last attempt: `"panic"`, `"timeout"`, or
    /// `"cancelled"` (the point stopped at a cooperative checkpoint).
    pub kind: &'static str,
    /// The last attempt's panic message or timeout description.
    pub message: String,
}

impl PointFailure {
    fn to_json(&self) -> Json {
        Json::obj([
            ("job", Json::str(self.job)),
            ("point", Json::UInt(self.point as u64)),
            ("attempts", Json::UInt(self.attempts as u64)),
            ("kind", Json::str(self.kind)),
            ("message", Json::str(self.message.clone())),
        ])
    }
}

/// Outcome of one [`run`]: per-job reports in registry order.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Reports in registry (deterministic emission) order.
    pub jobs: Vec<JobReport>,
    /// End-to-end elapsed time of the run.
    pub elapsed: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Classified cache-lookup totals (all zero when the cache was
    /// bypassed by `--force` or telemetry collection).
    pub cache: CacheStats,
    /// Points that exhausted their retry budget, in quarantine order.
    pub failures: Vec<PointFailure>,
    /// Failed attempts that were retried (whether or not the retry
    /// ultimately succeeded).
    pub retries: usize,
    /// Points replayed from the resume journal instead of computed.
    pub replayed: usize,
    /// Whether the run drained after a signal instead of completing; the
    /// journal was kept and the run can be resumed.
    pub interrupted: bool,
    /// This run's journal id (resume handle), when journaling was on.
    pub run_id: Option<String>,
}

impl RunReport {
    /// Total points across all jobs.
    pub fn total_points(&self) -> usize {
        self.jobs.iter().map(|j| j.points).sum()
    }

    /// Total cache hits across all jobs.
    pub fn total_hits(&self) -> usize {
        self.jobs.iter().map(|j| j.cache_hits).sum()
    }

    /// Whether every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.jobs.iter().all(|j| j.error.is_none())
    }
}

struct Task {
    job: usize,
    point: usize,
    attempt: usize,
}

struct Done {
    job: usize,
    point: usize,
    attempt: usize,
    payload: Result<PointPayload, String>,
    telemetry: Option<Telemetry>,
    took: Duration,
    /// The attempt unwound at a cooperative cancellation checkpoint (not
    /// a real panic): never retried, never quarantined — the run is
    /// draining and the point simply stays pending.
    cancelled: bool,
}

/// Worker → scheduler messages. `Started` lets the scheduler's watchdog
/// measure compute time from pickup (not dispatch), so deep task queues
/// never trip the deadline while merely waiting for a worker.
enum Event {
    Started {
        job: usize,
        point: usize,
        attempt: usize,
        at: Instant,
    },
    Done(Box<Done>),
    /// A worker declined a queued task because the run is draining; the
    /// point stays pending and the scheduler only balances its books.
    Skipped,
}

struct JobState {
    remaining_deps: usize,
    dependents: Vec<usize>,
    pending_points: usize,
    points: Vec<Option<PointPayload>>,
    telemetry: Vec<Option<Telemetry>>,
    cache_hits: usize,
    compute_time: Duration,
    error: Option<String>,
    finished: bool,
}

/// Runs `experiments` (filtered per `opts`) and returns per-job reports in
/// registry order.
///
/// Returns an error when a resume is unsound (journal unreadable, options
/// or registry fingerprint mismatch), when the journal cannot be started,
/// or when the `abort_after` crash hook fires.
///
/// # Panics
///
/// Panics if `opts.jobs` is 0 or the dependency graph has a cycle.
pub fn run(experiments: &[Arc<dyn Experiment>], opts: &RunOptions) -> Result<RunReport, String> {
    assert!(opts.jobs >= 1, "--jobs must be at least 1");
    assert!(opts.max_attempts >= 1, "--retries budget must allow 1 attempt");
    let start = Instant::now();
    let cache = Cache::with_vfs(opts.cache_dir.clone(), opts.vfs.clone());
    let mut cache_stats = CacheStats::default();
    // Graced sweep: under the serve daemon several executors share this
    // cache directory, and an ungraced sweep would delete a sibling
    // run's in-flight atomic write out from under its rename.
    match cache.sweep_tmp_older_than(Duration::from_secs(60)) {
        Ok(n) => cache_stats.swept_tmp = n,
        Err(e) => events::warn_traced("cache.sweep_failed", format!("tmp sweep failed: {e}"), opts.trace),
    }

    // Filter, then restrict deps to the selected set.
    let selected: Vec<Arc<dyn Experiment>> = experiments
        .iter()
        .filter(|e| {
            opts.filter
                .as_deref()
                .is_none_or(|f| e.name().contains(f))
        })
        .cloned()
        .collect();
    let index: HashMap<&str, usize> = selected
        .iter()
        .enumerate()
        .map(|(i, e)| (e.name(), i))
        .collect();

    let mut states: Vec<JobState> = selected
        .iter()
        .map(|e| JobState {
            remaining_deps: 0,
            dependents: Vec::new(),
            pending_points: e.num_points(),
            points: vec![None; e.num_points()],
            telemetry: (0..e.num_points()).map(|_| None).collect(),
            cache_hits: 0,
            compute_time: Duration::ZERO,
            error: None,
            finished: false,
        })
        .collect();
    for (i, e) in selected.iter().enumerate() {
        for d in e.deps() {
            if let Some(&j) = index.get(d) {
                states[i].remaining_deps += 1;
                states[j].dependents.push(i);
            }
        }
    }

    // The run's journaled identity: what a later resume must match.
    let want_telemetry = opts.telemetry_dir.is_some();
    // Per-point simulator sessions are collected for *either* consumer:
    // telemetry exports (per-job files) or the shared trace sink (one
    // correlated timeline). Only the former changes cache behaviour.
    let want_sessions = want_telemetry || opts.trace_sink.is_some();
    let trace_epoch = opts.trace_epoch.unwrap_or(start);
    let journal_jobs: Vec<JournalJob> = selected
        .iter()
        .map(|e| JournalJob {
            name: e.name().to_string(),
            fingerprint: e.fingerprint(),
            points: e.num_points(),
        })
        .collect();
    let registry_fp = journal::registry_fingerprint(&journal_jobs);

    // Open the write-ahead journal: replay an existing one (--resume) or
    // start a fresh one. Either way, every computed point is journaled
    // before the scheduler acts on it.
    let mut replayed = 0usize;
    let mut journal: Option<Journal> = None;
    let mut run_id: Option<String> = None;
    if let Some(path) = &opts.resume {
        let replay = journal::replay_with(path, &*opts.vfs)?;
        if replay.ended {
            return Err(format!(
                "{} belongs to a run that already completed; nothing to resume",
                path.display()
            ));
        }
        let s = &replay.start;
        let mismatch = |what: &str, journaled: &str, now: &str| {
            format!(
                "cannot resume {}: {what} changed since the journal was written \
                 (journaled {journaled}, now {now}); rerun without --resume",
                path.display()
            )
        };
        let fmt_filter = |f: &Option<String>| f.clone().unwrap_or_else(|| "<none>".into());
        if s.filter != opts.filter {
            return Err(mismatch("--filter", &fmt_filter(&s.filter), &fmt_filter(&opts.filter)));
        }
        if s.force != opts.force {
            return Err(mismatch("--force", &s.force.to_string(), &opts.force.to_string()));
        }
        if s.telemetry != want_telemetry {
            return Err(mismatch(
                "--telemetry",
                &s.telemetry.to_string(),
                &want_telemetry.to_string(),
            ));
        }
        if s.seed != crate::SEED {
            return Err(mismatch("the workload seed", &s.seed.to_string(), &crate::SEED.to_string()));
        }
        if s.registry_fp != registry_fp || s.jobs != journal_jobs {
            return Err(mismatch("the experiment registry", &s.registry_fp, &registry_fp));
        }
        for (job_name, point, payload_body, telemetry_text) in &replay.points {
            let Some(&job) = index.get(job_name.as_str()) else {
                continue;
            };
            if *point >= states[job].points.len() {
                continue;
            }
            let Some(payload) = cache::parse_payload(payload_body) else {
                // Journal entries are fsync'd whole; an unparseable payload
                // is damage, but a recompute fixes it, so warn and move on.
                events::warn_traced(
                    "journal.payload_unparseable",
                    format!(
                        "journaled payload for {job_name} point {point} \
                         does not parse; recomputing"
                    ),
                    opts.trace,
                );
                continue;
            };
            if !selected[job].validate(*point, &payload) {
                continue;
            }
            if states[job].points[*point].is_none() {
                states[job].pending_points -= 1;
                replayed += 1;
            }
            states[job].points[*point] = Some(payload);
            if want_telemetry {
                states[job].telemetry[*point] = telemetry_text.as_deref().and_then(|text| {
                    import_session(text)
                        .map_err(|e| {
                            events::warn_traced(
                                "journal.telemetry_unparseable",
                                format!(
                                    "journaled telemetry for {job_name} point {point} \
                                     does not parse: {e}"
                                ),
                                opts.trace,
                            )
                        })
                        .ok()
                });
            }
        }
        journal = Some(
            Journal::reopen_with(path, opts.vfs.clone())
                .map_err(|e| format!("cannot reopen journal {}: {e}", path.display()))?,
        );
        run_id = Some(s.run_id.clone());
    } else if let Some(dir) = &opts.journal_dir {
        let id = opts.run_id.clone().unwrap_or_else(journal::generate_run_id);
        let record = StartRecord {
            run_id: id.clone(),
            filter: opts.filter.clone(),
            force: opts.force,
            telemetry: want_telemetry,
            seed: crate::SEED,
            registry_fp,
            jobs: journal_jobs,
            trace: opts.trace.map(|t| t.trace_hex()),
        };
        journal = Some(
            Journal::create_with(dir, &record, opts.vfs.clone())
                .map_err(|e| format!("cannot start run journal in {}: {e}", dir.display()))?,
        );
        run_id = Some(id);
    }

    // Per-job process tracks in the trace sink, allocated up front so
    // the schedule and completion paths below record without allocating
    // under the scheduler's hot loop.
    let trace_pids: Vec<u32> = match &opts.trace_sink {
        Some(sink) => selected
            .iter()
            .map(|e| sink.recorder.alloc_process(&format!("exec:{}", e.name())))
            .collect(),
        None => Vec::new(),
    };
    events::debug(
        "run.start",
        &format!(
            "run {} started: {} job(s), {} worker(s)",
            run_id.as_deref().unwrap_or("<unjournaled>"),
            selected.len(),
            opts.jobs
        ),
        opts.trace,
    );

    // Worker pool over a shared task queue. `spawn_worker` is kept around
    // so the watchdog can replace a worker written off as hung.
    let (task_tx, task_rx) = mpsc::channel::<Task>();
    let task_rx = Arc::new(Mutex::new(task_rx));
    let (event_tx, event_rx) = mpsc::channel::<Event>();
    let spawn_worker = {
        let task_rx = Arc::clone(&task_rx);
        let event_tx = event_tx.clone();
        let selected = selected.clone();
        let shutdown = opts.shutdown.clone();
        let run_cancel = opts.cancel.clone();
        move || {
            let rx = Arc::clone(&task_rx);
            let tx = event_tx.clone();
            let exps: Vec<Arc<dyn Experiment>> = selected.clone();
            let shutdown = shutdown.clone();
            let run_cancel = run_cancel.clone();
            thread::spawn(move || loop {
                let task = match rx.lock().expect("task queue").recv() {
                    Ok(t) => t,
                    Err(_) => break,
                };
                // A draining run computes nothing new: queued tasks bounce
                // back so the scheduler's books balance without the work.
                // A fired cancel token drains the same way.
                if shutdown
                    .as_ref()
                    .is_some_and(|f| f.load(Ordering::SeqCst) >= 1)
                    || run_cancel.as_ref().is_some_and(|c| c.is_cancelled())
                {
                    if tx.send(Event::Skipped).is_err() {
                        break;
                    }
                    continue;
                }
                let t0 = Instant::now();
                if tx
                    .send(Event::Started {
                        job: task.job,
                        point: task.point,
                        attempt: task.attempt,
                        at: t0,
                    })
                    .is_err()
                {
                    break;
                }
                let exp = Arc::clone(&exps[task.job]);
                let computed = catch_unwind(AssertUnwindSafe(|| {
                    // Install the run's cancel token as the thread's
                    // current token for the duration of this point, so
                    // the simulators' chunk-batch checkpoints can unwind
                    // out of a cancelled computation. The scope restores
                    // the previous token even when the point panics.
                    let _scope = run_cancel
                        .as_ref()
                        .map(|c| cancel::set_current(c.clone()));
                    if want_sessions {
                        exp.compute_point_telemetry(task.point)
                    } else {
                        (exp.compute_point(task.point), None)
                    }
                }));
                let (payload, telemetry, cancelled) = match computed {
                    Ok((p, t)) => (Ok(p), t, false),
                    Err(p) => {
                        let cancelled = p.downcast_ref::<cancel::Cancelled>().is_some();
                        let msg = if cancelled {
                            "stopped at a cancellation checkpoint".to_string()
                        } else {
                            panic_message(p.as_ref())
                        };
                        (Err(msg), None, cancelled)
                    }
                };
                let send = tx.send(Event::Done(Box::new(Done {
                    job: task.job,
                    point: task.point,
                    attempt: task.attempt,
                    payload,
                    telemetry,
                    took: t0.elapsed(),
                    cancelled,
                })));
                if send.is_err() {
                    break;
                }
            })
        }
    };
    let mut workers: Vec<_> = (0..opts.jobs).map(|_| spawn_worker()).collect();

    let mut reports: Vec<Option<JobReport>> = (0..selected.len()).map(|_| None).collect();
    let mut emit_cursor = 0usize;
    let mut outstanding = 0usize; // tasks dispatched, not yet completed
    let mut unfinished = selected.len();

    // Schedule a job: serve points from the cache, dispatch the misses.
    // Returns true if the job completed entirely from cache. Telemetry
    // runs bypass cache reads so the recorded counters cover every point.
    let use_cache = !opts.force && !want_telemetry;
    let schedule = |job: usize,
                    states: &mut Vec<JobState>,
                    outstanding: &mut usize,
                    cache_stats: &mut CacheStats|
     -> bool {
        let exp = &selected[job];
        let fp = exp.fingerprint();
        for point in 0..exp.num_points() {
            if states[job].points[point].is_some() {
                continue; // replayed from the resume journal
            }
            let key = Cache::key(exp.name(), &fp, crate::SEED, point);
            let hit = if use_cache {
                match cache.lookup(exp.name(), point, key) {
                    Lookup::Hit(p) if exp.validate(point, &p) => {
                        cache_stats.hits += 1;
                        Some(p)
                    }
                    // Parsed but rejected by the experiment: the entry is
                    // present-but-unusable, same bucket as a corrupt file.
                    Lookup::Hit(_) | Lookup::Malformed => {
                        cache_stats.malformed += 1;
                        None
                    }
                    Lookup::Miss => {
                        cache_stats.misses += 1;
                        None
                    }
                }
            } else {
                None
            };
            match hit {
                Some(payload) => {
                    states[job].points[point] = Some(payload);
                    states[job].cache_hits += 1;
                    states[job].pending_points -= 1;
                    if let Some(sink) = &opts.trace_sink {
                        let mut args = vec![("point", point as u64)];
                        if let Some(t) = &opts.trace {
                            args.extend(t.child(exp.name(), point as u64).args());
                        }
                        sink.recorder.instant(
                            trace_pids[job],
                            point as u32,
                            "point.cache",
                            trace_epoch.elapsed().as_micros() as u64,
                            &args,
                        );
                    }
                    if let Some(hook) = &opts.progress {
                        hook.0(exp.name(), point, PointOrigin::Cache);
                    }
                }
                None => {
                    task_tx
                        .send(Task {
                            job,
                            point,
                            attempt: 1,
                        })
                        .expect("workers alive");
                    *outstanding += 1;
                }
            }
        }
        states[job].pending_points == 0
    };

    // Finish a job: render, record the report, and fire dependents.
    // Newly-ready dependents are returned for scheduling.
    fn finish(
        job: usize,
        selected: &[Arc<dyn Experiment>],
        states: &mut [JobState],
        reports: &mut [Option<JobReport>],
        unfinished: &mut usize,
    ) -> Vec<usize> {
        let exp = &selected[job];
        let (output, artifacts, error) = if let Some(e) = states[job].error.take() {
            (String::new(), Vec::new(), Some(e))
        } else {
            let points: Vec<PointPayload> = states[job]
                .points
                .iter()
                .map(|p| p.clone().expect("all points complete"))
                .collect();
            let t0 = Instant::now();
            let capture = exp.render(&points);
            states[job].compute_time += t0.elapsed();
            (capture.text, capture.artifacts, None)
        };
        reports[job] = Some(JobReport {
            name: exp.name(),
            kind: exp.kind(),
            points: exp.num_points(),
            cache_hits: states[job].cache_hits,
            wall: states[job].compute_time,
            output,
            artifacts,
            error,
            telemetry: None,
        });
        states[job].finished = true;
        *unfinished -= 1;
        let mut ready = Vec::new();
        let dependents = states[job].dependents.clone();
        for d in dependents {
            states[d].remaining_deps -= 1;
            if states[d].remaining_deps == 0 {
                ready.push(d);
            }
        }
        ready
    }

    // One attempt at (job, point) failed. Under the retry budget the point
    // is re-dispatched verbatim; over it, the point is quarantined — the
    // failure is recorded, the job marked failed, and the run continues.
    // Returns true when the point was quarantined (the job may now be
    // complete and should be checked).
    #[allow(clippy::too_many_arguments)]
    fn fail_attempt(
        job: usize,
        point: usize,
        attempt: usize,
        kind: &'static str,
        msg: String,
        max_attempts: usize,
        selected: &[Arc<dyn Experiment>],
        states: &mut [JobState],
        task_tx: &mpsc::Sender<Task>,
        outstanding: &mut usize,
        retries: &mut usize,
        failures: &mut Vec<PointFailure>,
    ) -> bool {
        if attempt < max_attempts {
            *retries += 1;
            task_tx
                .send(Task {
                    job,
                    point,
                    attempt: attempt + 1,
                })
                .expect("workers alive");
            *outstanding += 1;
            return false;
        }
        let name = selected[job].name();
        failures.push(PointFailure {
            job: name,
            point,
            attempts: attempt,
            kind,
            message: msg.clone(),
        });
        let state = &mut states[job];
        state.pending_points -= 1;
        let verb = match kind {
            "timeout" => "timed out",
            "journal" => "could not be journaled",
            _ => "panicked",
        };
        state
            .error
            .get_or_insert_with(|| format!("point {point} of {name} {verb}: {msg}"));
        true
    }

    // Fold a finished job's per-point sessions (in point order, so the
    // exported trace is deterministic regardless of worker interleaving)
    // into one session, stamp the harness's own job-level metrics on it,
    // and serialize both exporters into the report.
    fn attach_telemetry(
        job: usize,
        selected: &[Arc<dyn Experiment>],
        states: &mut [JobState],
        reports: &mut [Option<JobReport>],
    ) {
        let report = reports[job].as_mut().expect("job finished");
        if report.error.is_some() {
            return;
        }
        let merged = Telemetry::new();
        for slot in states[job].telemetry.iter_mut() {
            if let Some(point_session) = slot.take() {
                merged.merge(point_session, "");
            }
        }
        merged
            .metrics
            .counter("harness/points")
            .add(report.points as u64);
        merged
            .metrics
            .counter("harness/cache.hits")
            .add(report.cache_hits as u64);
        merged
            .metrics
            .gauge("harness/wall_seconds")
            .observe(report.wall.as_secs_f64());
        let snap = merged.metrics.snapshot();
        report.telemetry = Some(JobTelemetry {
            chrome_json: chrome_trace(&snap, &merged.recorder),
            report_text: text_report(selected[job].name(), &snap, &merged.recorder),
        });
    }

    // Seed the queue with dependency-free jobs; drain completions, firing
    // dependents as their dependencies finish.
    let mut retries = 0usize;
    let mut failures: Vec<PointFailure> = Vec::new();
    let mut computed_points = 0usize; // journaled completions (crash hook)
    // Watchdog bookkeeping, keyed by (job, point, attempt): `inflight`
    // holds attempts a worker has started; `abandoned` remembers expired
    // attempts so their late completions (a hung worker may eventually
    // return) are discarded instead of double-counted.
    let mut inflight: HashMap<(usize, usize, usize), Instant> = HashMap::new();
    let mut abandoned: std::collections::HashSet<(usize, usize, usize)> =
        std::collections::HashSet::new();
    // Graceful drain: the first signal flips the shared flag; the
    // scheduler stops dispatching, in-flight points run to completion (up
    // to the drain deadline), and the journal gets a clean shutdown record.
    let mut draining = false;
    let mut drain_deadline: Option<Instant> = None;
    // Whether the drain was triggered by the run's cancel token rather
    // than a process signal: the journal is then sealed `cancelled`
    // instead of kept as a resume handle.
    let mut cancelled_run = false;
    let shutdown_requested = || {
        opts.shutdown
            .as_ref()
            .is_some_and(|f| f.load(Ordering::SeqCst) >= 1)
    };
    let cancel_requested = || opts.cancel.as_ref().is_some_and(|c| c.is_cancelled());
    let mut ready: Vec<usize> = (0..selected.len())
        .filter(|&i| states[i].remaining_deps == 0)
        .collect();
    while !ready.is_empty() || unfinished > 0 {
        if !draining && (shutdown_requested() || cancel_requested()) {
            draining = true;
            cancelled_run = !shutdown_requested();
            drain_deadline = Some(Instant::now() + opts.drain_timeout);
            ready.clear(); // nothing new starts
            if cancelled_run {
                events::emit(
                    events::Level::Info,
                    "run.cancelled",
                    &format!(
                        "run cancelled (deadline expired or all subscribers gone): \
                         draining {outstanding} dispatched point(s)"
                    ),
                    opts.trace,
                    &[],
                );
            } else {
                events::emit(
                    events::Level::Info,
                    "run.draining",
                    &format!(
                        "\nshutdown requested: draining {outstanding} dispatched point(s) \
                         (second signal aborts immediately)"
                    ),
                    opts.trace,
                    &[],
                );
            }
        }
        if draining {
            if outstanding == 0 {
                break;
            }
            if drain_deadline.is_some_and(|d| Instant::now() >= d) {
                events::emit(
                    events::Level::Info,
                    "run.drain_deadline",
                    &format!(
                        "drain deadline passed: abandoning {outstanding} in-flight point(s)"
                    ),
                    opts.trace,
                    &[],
                );
                break;
            }
        } else {
            for job in std::mem::take(&mut ready) {
                if schedule(job, &mut states, &mut outstanding, &mut cache_stats) {
                    let newly =
                        finish(job, &selected, &mut states, &mut reports, &mut unfinished);
                    if want_telemetry {
                        attach_telemetry(job, &selected, &mut states, &mut reports);
                    }
                    ready.extend(newly);
                }
            }
            if !ready.is_empty() {
                continue; // fully-cached chains resolve without touching workers
            }
            if unfinished == 0 {
                break;
            }
            assert!(
                outstanding > 0,
                "dependency cycle: jobs remain but nothing is runnable"
            );
        }

        // Receive the next worker event. The wait is bounded by the
        // earliest watchdog deadline (so overdue points are written off
        // promptly) and, when a shutdown flag exists, a polling interval
        // (so a signal is noticed between events).
        let wait = {
            let watchdog = opts.point_timeout.map(|timeout| {
                let now = Instant::now();
                inflight
                    .values()
                    .map(|&at| (at + timeout).saturating_duration_since(now))
                    .min()
                    .unwrap_or(timeout)
            });
            let poll = (opts.shutdown.is_some() || opts.cancel.is_some() || draining)
                .then_some(Duration::from_millis(50));
            match (watchdog, poll) {
                (Some(w), Some(p)) => Some(w.min(p)),
                (Some(w), None) => Some(w),
                (None, p) => p,
            }
        };
        let mut check_jobs: Vec<usize> = Vec::new();
        let event = match wait {
            None => Some(event_rx.recv().expect("workers alive")),
            Some(wait) => match event_rx.recv_timeout(wait.max(Duration::from_millis(1))) {
                Ok(ev) => Some(ev),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Write off overdue attempts; replacement workers keep
                    // queued tasks moving even if every original is hung.
                    if let Some(timeout) = opts.point_timeout {
                        let now = Instant::now();
                        let overdue: Vec<(usize, usize, usize)> = inflight
                            .iter()
                            .filter(|&(_, &at)| now.duration_since(at) >= timeout)
                            .map(|(&k, _)| k)
                            .collect();
                        for key in overdue {
                            let (job, point, attempt) = key;
                            inflight.remove(&key);
                            abandoned.insert(key);
                            outstanding -= 1;
                            workers.push(spawn_worker());
                            let msg = format!("exceeded point deadline of {timeout:?}");
                            journal_fail(
                                &mut journal, &selected, job, point, attempt, "timeout", &msg,
                            );
                            let quarantined = fail_attempt(
                                job,
                                point,
                                attempt,
                                "timeout",
                                msg,
                                opts.max_attempts,
                                &selected,
                                &mut states,
                                &task_tx,
                                &mut outstanding,
                                &mut retries,
                                &mut failures,
                            );
                            if quarantined {
                                check_jobs.push(job);
                            }
                        }
                    }
                    None
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("workers alive")
                }
            },
        };

        match event {
            Some(Event::Started {
                job,
                point,
                attempt,
                at,
            }) => {
                if let Some(j) = journal.as_mut() {
                    let record = Record::Attempt {
                        job: selected[job].name().to_string(),
                        point,
                        attempt,
                    };
                    if let Err(e) = j.append(&record) {
                        events::warn_traced(
                            "journal.write_failed",
                            format!("journal write failed: {e}"),
                            opts.trace,
                        );
                    }
                }
                inflight.insert((job, point, attempt), at);
            }
            Some(Event::Done(done)) => {
                let key = (done.job, done.point, done.attempt);
                if abandoned.remove(&key) {
                    // A written-off worker came back after all; its result
                    // was already replaced by the retry path. Drop it.
                    continue;
                }
                inflight.remove(&key);
                outstanding -= 1;
                states[done.job].compute_time += done.took;
                match done.payload {
                    Ok(payload) => {
                        let exp = &selected[done.job];
                        let mut point_session = done.telemetry;
                        // Write-ahead: the journal entry is fsync'd before
                        // the cache or the scheduler state sees the point,
                        // so a crash at any instant can lose work but never
                        // record work that did not happen. Sessions bound
                        // for the trace sink are wall-clock correlation
                        // material, not replayable state, so only
                        // telemetry-export runs journal them.
                        let mut journal_err = None;
                        if let Some(j) = journal.as_mut() {
                            let record = Record::Point {
                                job: exp.name().to_string(),
                                point: done.point,
                                payload: cache::serialize_payload(&payload),
                                telemetry: if want_telemetry {
                                    point_session.as_ref().map(export_session)
                                } else {
                                    None
                                },
                            };
                            if let Err(e) = j.append(&record) {
                                journal_err = Some(e);
                            }
                        }
                        if let Some(e) = journal_err {
                            // The fsync'd journal entry IS the point's
                            // durability: a point whose append failed was
                            // never durably completed, so the attempt
                            // fails as a typed error (retried under the
                            // budget, quarantined over it) instead of
                            // continuing with unjournaled work that a
                            // resume would silently lose. No `fail`
                            // record is attempted — the journal just
                            // proved it cannot take appends.
                            let msg = e.to_string();
                            events::emit(
                                events::Level::Error,
                                "journal.append_failed",
                                &format!(
                                    "{} point {} could not be journaled: {msg}",
                                    exp.name(),
                                    done.point
                                ),
                                opts.trace,
                                &[
                                    ("job", Json::str(exp.name())),
                                    ("point", Json::UInt(done.point as u64)),
                                ],
                            );
                            let quarantined = fail_attempt(
                                done.job,
                                done.point,
                                done.attempt,
                                "journal",
                                msg,
                                opts.max_attempts,
                                &selected,
                                &mut states,
                                &task_tx,
                                &mut outstanding,
                                &mut retries,
                                &mut failures,
                            );
                            if quarantined {
                                check_jobs.push(done.job);
                            }
                            // The rest of the completion path (cache
                            // store, trace spans, progress hook) is
                            // skipped: the point did not durably complete.
                            for job in check_jobs {
                                if states[job].pending_points == 0 && !states[job].finished {
                                    let newly = finish(
                                        job, &selected, &mut states, &mut reports, &mut unfinished,
                                    );
                                    if want_telemetry {
                                        attach_telemetry(job, &selected, &mut states, &mut reports);
                                    }
                                    ready.extend(newly);
                                }
                            }
                            if opts.stream_output {
                                emit_ready(&mut emit_cursor, &reports);
                            }
                            continue;
                        }
                        states[done.job].pending_points -= 1;
                        computed_points += 1;
                        if opts.abort_after == Some(computed_points) {
                            // Crash-test hook: vanish right after the
                            // journal fsync, the worst-legal crash point —
                            // no artifacts, no cache entry for this point,
                            // no shutdown record, journal left dangling.
                            return Err(format!(
                                "aborted by crash hook after {computed_points} computed point(s)"
                            ));
                        }
                        let key =
                            Cache::key(exp.name(), &exp.fingerprint(), crate::SEED, done.point);
                        if let Err(e) = cache.store(exp.name(), done.point, key, &payload) {
                            events::warn_traced(
                                "cache.write_failed",
                                format!("cache write failed for {}: {e}", exp.name()),
                                opts.trace,
                            );
                        }
                        states[done.job].points[done.point] = Some(payload);
                        let child = opts
                            .trace
                            .map(|t| t.child(exp.name(), done.point as u64));
                        if let Some(sink) = &opts.trace_sink {
                            // The point's wall-clock execution span, on
                            // the server's timeline, stamped with the
                            // request's trace context.
                            let took_us = done.took.as_micros() as u64;
                            let end_us = trace_epoch.elapsed().as_micros() as u64;
                            let mut args = vec![("point", done.point as u64)];
                            if let Some(c) = &child {
                                args.extend(c.args());
                            }
                            sink.recorder.span(
                                trace_pids[done.job],
                                done.point as u32,
                                "point",
                                end_us.saturating_sub(took_us),
                                took_us,
                                &args,
                            );
                        }
                        if want_telemetry {
                            states[done.job].telemetry[done.point] = point_session.take();
                        } else if let Some(sink) = &opts.trace_sink {
                            // Per-chunk simulator spans fold into the
                            // shared sink, each event stamped with the
                            // point's child context so Perfetto can slice
                            // the whole causal chain by trace id.
                            if let Some(session) = point_session.take() {
                                let stamp: Vec<(&'static str, u64)> =
                                    child.as_ref().map(|c| c.args()).unwrap_or_default();
                                sink.metrics.merge(&session.metrics);
                                sink.recorder.merge_with_args(
                                    session.recorder,
                                    &format!("{}:p{}:", exp.name(), done.point),
                                    &stamp,
                                );
                            }
                        }
                        events::emit(
                            events::Level::Debug,
                            "point.computed",
                            &format!(
                                "{} point {} computed in {:?}",
                                exp.name(),
                                done.point,
                                done.took
                            ),
                            child.or(opts.trace),
                            &[
                                ("job", Json::str(exp.name())),
                                ("point", Json::UInt(done.point as u64)),
                                ("took_us", Json::UInt(done.took.as_micros() as u64)),
                            ],
                        );
                        if let Some(hook) = &opts.progress {
                            hook.0(exp.name(), done.point, PointOrigin::Computed);
                        }
                        check_jobs.push(done.job);
                    }
                    Err(msg) if done.cancelled => {
                        // Stopping at a checkpoint is compliance, not
                        // failure: no retry, no quarantine. The point
                        // stays pending; the drain (already triggered by
                        // the fired token) ends the run.
                        journal_fail(
                            &mut journal,
                            &selected,
                            done.job,
                            done.point,
                            done.attempt,
                            "cancelled",
                            &msg,
                        );
                    }
                    Err(msg) => {
                        journal_fail(
                            &mut journal,
                            &selected,
                            done.job,
                            done.point,
                            done.attempt,
                            "panic",
                            &msg,
                        );
                        let quarantined = fail_attempt(
                            done.job,
                            done.point,
                            done.attempt,
                            "panic",
                            msg,
                            opts.max_attempts,
                            &selected,
                            &mut states,
                            &task_tx,
                            &mut outstanding,
                            &mut retries,
                            &mut failures,
                        );
                        if quarantined {
                            check_jobs.push(done.job);
                        }
                    }
                }
            }
            Some(Event::Skipped) => {
                outstanding -= 1; // the point stays pending for --resume
            }
            None => {} // timeout tick; quarantined jobs are in check_jobs
        }

        for job in check_jobs {
            if states[job].pending_points == 0 && !states[job].finished {
                let newly = finish(job, &selected, &mut states, &mut reports, &mut unfinished);
                if want_telemetry {
                    attach_telemetry(job, &selected, &mut states, &mut reports);
                }
                ready.extend(newly);
            }
        }

        // Emit finished jobs in registry order as they become available.
        if opts.stream_output {
            emit_ready(&mut emit_cursor, &reports);
        }
    }
    if opts.stream_output {
        emit_ready(&mut emit_cursor, &reports);
    }

    drop(task_tx);
    if abandoned.is_empty() && outstanding == 0 {
        for w in workers {
            let _ = w.join();
        }
    }
    // With abandoned attempts (watchdog write-offs or a drain deadline),
    // some workers may be hung forever; joining would deadlock the
    // scheduler on a thread that cannot finish. They are detached instead —
    // the process exits normally and reaps them.

    let interrupted = draining;
    if interrupted {
        if let Some(j) = journal.as_mut() {
            let reason = if cancelled_run { "cancelled" } else { "signal" };
            if let Err(e) = j.append(&Record::Shutdown {
                reason: reason.to_string(),
            }) {
                events::warn_traced(
                    "journal.write_failed",
                    format!("journal write failed: {e}"),
                    opts.trace,
                );
            }
        }
        // Jobs the drain cut short get stub reports: no output, no
        // artifacts. After a signal their completed points live in the
        // journal, which is kept on disk as the --resume handle; a
        // cancelled request has no future and its journal is sealed below.
        let stub_error = if cancelled_run {
            "cancelled before completion (deadline expired or all subscribers disconnected)"
        } else {
            "interrupted by shutdown before completion"
        };
        for (i, slot) in reports.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(JobReport {
                    name: selected[i].name(),
                    kind: selected[i].kind(),
                    points: selected[i].num_points(),
                    cache_hits: states[i].cache_hits,
                    wall: states[i].compute_time,
                    output: String::new(),
                    artifacts: Vec::new(),
                    error: Some(stub_error.to_string()),
                    telemetry: None,
                });
            }
        }
    }

    let jobs: Vec<JobReport> = reports.into_iter().map(|r| r.expect("finished")).collect();
    if opts.write_artifacts {
        for job in &jobs {
            for (path, contents) in &job.artifacts {
                write_artifact(&*opts.vfs, path, contents, opts.trace);
            }
        }
    }
    if let Some(dir) = &opts.telemetry_dir {
        for job in &jobs {
            if let Some(t) = &job.telemetry {
                for (ext, contents) in [("json", &t.chrome_json), ("txt", &t.report_text)] {
                    let path = dir.join(format!("{}.{ext}", job.name));
                    if let Err(e) = atomic_write_with(&*opts.vfs, &path, contents) {
                        events::warn_traced(
                            "telemetry.write_failed",
                            format!("could not write {}: {e}", path.display()),
                            opts.trace,
                        );
                    }
                }
            }
        }
    }
    if let Some(path) = &opts.failures_path {
        if failures.is_empty() {
            // A clean run must not leave a stale quarantine report behind.
            // An interrupted run proved nothing and leaves it alone.
            if !interrupted {
                let _ = opts.vfs.remove_file(path);
            }
        } else {
            let json = Json::Arr(failures.iter().map(PointFailure::to_json).collect());
            if let Err(e) = atomic_write_with(&*opts.vfs, path, &(json.pretty() + "\n")) {
                events::warn_traced(
                    "failures.write_failed",
                    format!("could not write {}: {e}", path.display()),
                    opts.trace,
                );
            }
        }
    }
    if let Some(j) = journal.take() {
        if interrupted && cancelled_run {
            // A cancelled request will never be resumed — nobody is
            // waiting for its result — so the journal is sealed (and thus
            // removed) rather than left as a dangling resume handle. The
            // chaos campaign's "every journal sealed" invariant counts on
            // this.
            if let Err(e) = j.seal("cancelled") {
                events::warn_traced(
                    "journal.seal_failed",
                    format!("could not seal cancelled run journal: {e}"),
                    opts.trace,
                );
            }
        } else if interrupted {
            drop(j); // the journal outlives the run: it is the resume handle
        } else {
            let status = if failures.is_empty() { "ok" } else { "degraded" };
            if let Err(e) = j.seal(status) {
                events::warn_traced(
                    "journal.seal_failed",
                    format!("could not seal run journal: {e}"),
                    opts.trace,
                );
            }
        }
    }
    events::emit(
        events::Level::Debug,
        "run.done",
        &format!(
            "run {} finished: {computed_points} computed, {} cache hit(s), \
             {} failure(s){}",
            run_id.as_deref().unwrap_or("<unjournaled>"),
            cache_stats.hits,
            failures.len(),
            if interrupted { ", interrupted" } else { "" }
        ),
        opts.trace,
        &[
            ("computed", Json::UInt(computed_points as u64)),
            ("cache_hits", Json::UInt(cache_stats.hits as u64)),
            ("failures", Json::UInt(failures.len() as u64)),
        ],
    );
    Ok(RunReport {
        jobs,
        elapsed: start.elapsed(),
        workers: opts.jobs,
        cache: cache_stats,
        failures,
        retries,
        replayed,
        interrupted,
        run_id,
    })
}

/// Appends a `fail` record, tolerating (but reporting) journal I/O errors.
fn journal_fail(
    journal: &mut Option<Journal>,
    selected: &[Arc<dyn Experiment>],
    job: usize,
    point: usize,
    attempt: usize,
    kind: &str,
    message: &str,
) {
    if let Some(j) = journal.as_mut() {
        let record = Record::Fail {
            job: selected[job].name().to_string(),
            point,
            attempt,
            kind: kind.to_string(),
            message: message.to_string(),
        };
        if let Err(e) = j.append(&record) {
            events::warn(
                "journal.write_failed",
                format!("journal write failed: {e}"),
            );
        }
    }
}

fn emit_ready(cursor: &mut usize, reports: &[Option<JobReport>]) {
    while *cursor < reports.len() {
        let Some(report) = &reports[*cursor] else { break };
        match &report.error {
            Some(e) => println!("== {} == FAILED: {e}\n", report.name),
            None => print!("{}", report.output),
        }
        *cursor += 1;
    }
}

fn write_artifact(vfs: &dyn Vfs, path: &str, contents: &str, trace: Option<TraceContext>) {
    // Atomic (temp sibling + fsync + rename): a kill mid-run can never
    // leave a half-written `results/*.json` that a reader would trust.
    if let Err(e) = atomic_write_with(vfs, path, contents) {
        events::warn_traced(
            "artifact.write_failed",
            format!("could not write {path}: {e}"),
            trace,
        );
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}
