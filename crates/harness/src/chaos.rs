//! The chaos campaign: drive a real serve daemon over real sockets
//! through seeded client/network misbehavior, and verify the service's
//! resilience invariants after every trial.
//!
//! One trial = one [`ChaosSpec`] from `sparten::faults::chaos_plan`.
//! Each trial boots a private in-process [`Server`] (scratch cache and
//! journal directories, its own shutdown flag, an ephemeral port),
//! attacks it with the spec's class of misbehavior — torn request
//! bodies, slow-loris byte-drip headers, mid-stream client disconnects,
//! deadline storms, queue floods — then drains the server and checks:
//!
//! * **no leaked permits** — the gate's admitted and active counts are 0;
//! * **no stuck sessions** — `open_sessions == 0` and the drain report
//!   is clean;
//! * **every journal sealed** — no `*.jsonl` remains in the scratch
//!   journal directory (a cancelled run seals as `cancelled`);
//! * **cache never corrupted** — every surviving cache entry still
//!   parses and validates;
//! * **no hung threads** — the server thread itself exits within a
//!   bounded wait.
//!
//! The report tallies only invariant outcomes (clean / violated /
//! crashed) and deterministic violation messages — never timings — so
//! the same seed renders a byte-identical report.

use crate::cache::{Cache, Lookup};
use crate::serve::HarnessBackend;
use crate::{Experiment, PointPayload};
use sparten::faults::{chaos_plan, ChaosClass, ChaosOutcome, ChaosReport, ChaosSpec};
use sparten_bench::{Capture, ExperimentKind};
use sparten_serve::client::{request, request_with, RequestOptions};
use sparten_serve::{ServeOptions, Server, ServerProbe};
use sparten_telemetry::Telemetry;
use std::io::Write as _;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How long the harness waits for a bounded condition (server exit, gate
/// drain) before declaring a hang. Generous on purpose: a slow CI box
/// must not turn into a flaky violation, and a genuine hang waits the
/// full budget exactly once.
const HANG_BUDGET: Duration = Duration::from_secs(20);

/// Runs a full chaos campaign and returns the report. The report is a
/// deterministic function of `(seed, trials_per_class)` as long as every
/// invariant holds; violations append their (deterministic) messages.
pub fn run_campaign(seed: u64, trials_per_class: u32) -> ChaosReport {
    let mut report = ChaosReport::new(seed);
    for spec in chaos_plan(seed, trials_per_class) {
        // A panicking trial is exactly the "crashed" outcome; the hook
        // noise is suppressed around the call so expected unwinds don't
        // spam the campaign output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(|| run_trial(&spec)));
        std::panic::set_hook(prev);
        match result {
            Ok(violations) if violations.is_empty() => {
                report.record(spec.class, spec.trial, ChaosOutcome::Clean, "");
            }
            Ok(violations) => {
                report.record(
                    spec.class,
                    spec.trial,
                    ChaosOutcome::Violated,
                    &violations.join("; "),
                );
            }
            Err(_) => {
                report.record(
                    spec.class,
                    spec.trial,
                    ChaosOutcome::Crashed,
                    "trial harness panicked",
                );
            }
        }
    }
    report
}

/// A deterministic synthetic experiment for chaos trials. Points sleep
/// in small slices, polling the thread's cancellation checkpoint between
/// slices — the same cooperative contract the real simulators honor at
/// chunk-batch boundaries.
struct ChaosExp {
    name: &'static str,
    points: usize,
    delay: Duration,
    /// Folded into the fingerprint so every trial gets fresh coalescing
    /// and cache keys even though the name pool is static.
    salt: u64,
}

/// Static name pool: [`Experiment::name`] returns `&'static str`, so
/// trials draw from a fixed set and differentiate via the fingerprint.
const NAMES: &[&str] = &[
    "chaos-a", "chaos-b", "chaos-c", "chaos-d", "chaos-e", "chaos-f",
];

impl Experiment for ChaosExp {
    fn name(&self) -> &'static str {
        self.name
    }
    fn kind(&self) -> ExperimentKind {
        ExperimentKind::Study
    }
    fn deps(&self) -> &'static [&'static str] {
        &[]
    }
    fn num_points(&self) -> usize {
        self.points
    }
    fn fingerprint(&self) -> String {
        format!("chaos:{}:{}:{:016x}", self.name, self.points, self.salt)
    }
    fn compute_point(&self, point: usize) -> PointPayload {
        let mut left = self.delay;
        let slice = Duration::from_millis(5);
        while !left.is_zero() {
            sparten_telemetry::cancel::checkpoint();
            let step = left.min(slice);
            thread::sleep(step);
            left -= step;
        }
        PointPayload::Record(format!("{} computed point {point}\n", self.name))
    }
    fn render(&self, points: &[PointPayload]) -> Capture {
        let mut text = format!("== {} ==\n", self.name);
        for p in points {
            match p {
                PointPayload::Record(blob) => text.push_str(blob),
                PointPayload::Capture(_) => unreachable!(),
            }
        }
        Capture {
            text,
            artifacts: Vec::new(),
        }
    }
}

/// One booted trial server plus everything needed to drain and audit it.
struct TrialServer {
    addr: String,
    probe: ServerProbe,
    shutdown: Arc<AtomicUsize>,
    handle: thread::JoinHandle<sparten_serve::DrainReport>,
    experiments: Vec<Arc<dyn Experiment>>,
    cache_dir: PathBuf,
    journal_dir: PathBuf,
}

fn boot(
    spec: &ChaosSpec,
    experiments: Vec<Arc<dyn Experiment>>,
    max_active: usize,
    max_queued: usize,
    read_timeout: Duration,
) -> TrialServer {
    let root = std::env::temp_dir().join(format!(
        "sparten-chaos-{}-{:016x}",
        std::process::id(),
        spec.seed
    ));
    let _ = std::fs::remove_dir_all(&root);
    let cache_dir = root.join("cache");
    let journal_dir = root.join("journal");
    let backend = Arc::new(HarnessBackend::new(
        experiments.clone(),
        cache_dir.clone(),
        Some(journal_dir.clone()),
        false,
        2,
    ));
    let telemetry = Arc::new(Telemetry::new());
    let shutdown = Arc::new(AtomicUsize::new(0));
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        max_active,
        max_queued,
        read_timeout,
        drain_timeout: Duration::from_secs(10),
        default_deadline: Duration::from_secs(30),
        max_deadline: Duration::from_secs(60),
        shutdown: Arc::clone(&shutdown),
        build: Default::default(),
    };
    let server = Server::bind(backend, telemetry, opts).expect("bind chaos trial server");
    let addr = server.local_addr().expect("trial addr").to_string();
    let probe = server.probe();
    let handle = thread::spawn(move || server.serve());
    TrialServer {
        addr,
        probe,
        shutdown,
        handle,
        experiments,
        cache_dir,
        journal_dir,
    }
}

impl TrialServer {
    /// Polls `cond` until it holds or the hang budget expires.
    fn wait_until(&self, cond: impl Fn(&ServerProbe) -> bool) -> bool {
        let deadline = Instant::now() + HANG_BUDGET;
        while Instant::now() < deadline {
            if cond(&self.probe) {
                return true;
            }
            thread::sleep(Duration::from_millis(10));
        }
        false
    }

    /// Drains the server and audits every invariant; returns the
    /// (deterministic) violation messages. Scratch directories are
    /// removed on a fully clean shutdown and kept for inspection
    /// otherwise.
    fn finish(self, violations: &mut Vec<String>) {
        // Runs the torn clients abandoned may still be executing; give
        // the gate a bounded window to come back to rest before judging.
        if !self.wait_until(|p| p.gate_admitted() == 0 && p.gate_active() == 0) {
            violations.push(format!(
                "leaked permits after trial: admitted={} active={}",
                self.probe.gate_admitted(),
                self.probe.gate_active()
            ));
        }
        self.shutdown.store(1, Ordering::SeqCst);
        let deadline = Instant::now() + HANG_BUDGET;
        while !self.handle.is_finished() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        if !self.handle.is_finished() {
            // Joining would deadlock the campaign on the hung thread;
            // record the violation and leak the thread to process exit.
            violations.push("server thread hung past the drain budget".to_string());
        } else {
            match self.handle.join() {
                Ok(report) => {
                    if !report.clean() {
                        violations
                            .push(format!("drain abandoned {} session(s)", report.abandoned));
                    }
                }
                Err(_) => violations.push("server thread panicked".to_string()),
            }
        }
        if self.probe.open_sessions() != 0 {
            violations.push(format!(
                "{} session(s) still open after drain",
                self.probe.open_sessions()
            ));
        }
        // Every journal sealed: sealing removes the file, so any
        // remaining `*.jsonl` is an unsealed run.
        if let Ok(entries) = std::fs::read_dir(&self.journal_dir) {
            let mut unsealed = 0usize;
            for entry in entries.flatten() {
                if entry.path().extension().is_some_and(|e| e == "jsonl") {
                    unsealed += 1;
                }
            }
            if unsealed != 0 {
                violations.push(format!("{unsealed} unsealed journal(s) left behind"));
            }
        }
        // Cache never corrupted: every surviving entry must still parse.
        let cache = Cache::new(&self.cache_dir);
        for exp in &self.experiments {
            let fp = exp.fingerprint();
            for point in 0..exp.num_points() {
                let key = Cache::key(exp.name(), &fp, crate::SEED, point);
                if matches!(cache.lookup(exp.name(), point, key), Lookup::Malformed) {
                    violations.push(format!(
                        "corrupt cache entry for {} point {point}",
                        exp.name()
                    ));
                }
            }
        }
        if violations.is_empty() {
            let root = self
                .cache_dir
                .parent()
                .map(PathBuf::from)
                .unwrap_or(self.cache_dir);
            let _ = std::fs::remove_dir_all(root);
        }
    }
}

fn exps(spec: &ChaosSpec, count: usize, points: usize, delay: Duration) -> Vec<Arc<dyn Experiment>> {
    NAMES
        .iter()
        .take(count)
        .map(|&name| {
            Arc::new(ChaosExp {
                name,
                points,
                delay,
                salt: spec.seed,
            }) as Arc<dyn Experiment>
        })
        .collect()
}

fn run_trial(spec: &ChaosSpec) -> Vec<String> {
    let mut rng = spec.rng();
    let mut violations = Vec::new();
    match spec.class {
        ChaosClass::TornBody => {
            let server = boot(
                spec,
                exps(spec, 1, 1, Duration::ZERO),
                1,
                2,
                Duration::from_millis(400),
            );
            // Several connections advertise a body and hang up partway
            // through it. Each must be reaped within the read budget
            // without ever reaching admission.
            let torn = 2 + rng.gen_range(3) as usize;
            for _ in 0..torn {
                if let Ok(mut s) = TcpStream::connect(&server.addr) {
                    let sent = rng.gen_range(40) as usize;
                    let _ = write!(
                        s,
                        "POST /run?job=chaos-a HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n{}",
                        "x".repeat(sent)
                    );
                    let _ = s.flush();
                    // Drop: the body never completes.
                }
            }
            // The server must still answer a well-formed request.
            match request(&server.addr, "GET", "/jobs", None) {
                Ok(r) if r.status == 200 => {}
                Ok(r) => violations.push(format!(
                    "well-formed request after torn bodies answered {}",
                    r.status
                )),
                Err(_) => {
                    violations.push("server unreachable after torn bodies".to_string())
                }
            }
            server.finish(&mut violations);
        }
        ChaosClass::SlowLoris => {
            let server = boot(
                spec,
                exps(spec, 1, 1, Duration::ZERO),
                1,
                2,
                Duration::from_millis(300),
            );
            // Drip a valid request one byte at a time, each byte inside
            // the per-read window. The overall read budget must still cut
            // the connection off instead of letting it camp forever.
            let raw = b"GET /jobs HTTP/1.1\r\nHost: x\r\n\r\n";
            if let Ok(mut s) = TcpStream::connect(&server.addr) {
                let started = Instant::now();
                for &byte in raw.iter() {
                    if s.write_all(&[byte]).is_err() {
                        break; // server cut us off: exactly the contract
                    }
                    let _ = s.flush();
                    thread::sleep(Duration::from_millis(25 + rng.gen_range(25)));
                    if started.elapsed() > Duration::from_secs(3) {
                        break;
                    }
                }
                // Whether the drip squeaked through or was reaped, it must
                // never have consumed an admission slot.
                if server.probe.gate_admitted() != 0 {
                    violations.push("slow-loris consumed an admission slot".to_string());
                }
            }
            match request(&server.addr, "GET", "/healthz", None) {
                Ok(r) if r.status == 200 => {}
                Ok(r) => violations.push(format!(
                    "well-formed request after slow-loris answered {}",
                    r.status
                )),
                Err(_) => {
                    violations.push("server unreachable after slow-loris".to_string())
                }
            }
            server.finish(&mut violations);
        }
        ChaosClass::MidStreamDisconnect => {
            let server = boot(
                spec,
                exps(spec, 1, 6, Duration::from_millis(30)),
                1,
                2,
                Duration::from_secs(5),
            );
            // Start a streaming run and hang up after the first response
            // bytes arrive. With every subscriber gone the runner must be
            // cancelled, its permit released, and its journal sealed —
            // all of which `finish` audits.
            if let Ok(mut s) = TcpStream::connect(&server.addr) {
                let _ = write!(
                    s,
                    "POST /run?job=chaos-a HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
                );
                let _ = s.flush();
                let mut first = [0u8; 64];
                let _ = std::io::Read::read(&mut s, &mut first);
                let linger = rng.gen_range(50);
                thread::sleep(Duration::from_millis(linger));
                // Drop: the only subscriber disconnects mid-run.
            }
            server.finish(&mut violations);
        }
        ChaosClass::DeadlineStorm => {
            let server = boot(
                spec,
                exps(spec, 2, 2, Duration::from_millis(20)),
                1,
                2,
                Duration::from_secs(5),
            );
            // A burst of zero-budget requests: every one must be answered
            // 504 at admission, before any executor work.
            let storm = 4 + rng.gen_range(4) as usize;
            for i in 0..storm {
                let job = NAMES[i % 2];
                if let Ok(mut s) = TcpStream::connect(&server.addr) {
                    let _ = write!(
                        s,
                        "POST /run?job={job} HTTP/1.1\r\nHost: x\r\nDeadline-Ms: 0\r\n\
                         Content-Length: 0\r\nConnection: close\r\n\r\n"
                    );
                    let _ = s.flush();
                    let mut buf = Vec::new();
                    let _ = std::io::Read::read_to_end(&mut s, &mut buf);
                    let head = String::from_utf8_lossy(&buf);
                    if !head.starts_with("HTTP/1.1 504") {
                        violations.push(format!(
                            "expired deadline {i} not answered 504 (got {})",
                            head.lines().next().unwrap_or("<nothing>")
                        ));
                        break;
                    }
                }
            }
            // A request with a sane budget still completes afterwards.
            let sane = request_with(
                &server.addr,
                "POST",
                "/run?job=chaos-a",
                None,
                &RequestOptions {
                    deadline: Some(Duration::from_secs(20)),
                    ..Default::default()
                },
            );
            match sane {
                Ok(r) if r.status == 200 => {}
                Ok(r) => violations.push(format!("post-storm run answered {}", r.status)),
                Err(e) => violations.push(format!("post-storm run failed: {e}")),
            }
            server.finish(&mut violations);
        }
        ChaosClass::QueueFlood => {
            let server = boot(
                spec,
                exps(spec, 6, 2, Duration::from_millis(20)),
                1,
                2,
                Duration::from_secs(5),
            );
            // More distinct jobs at once than the admission budget (1
            // active + 2 queued): overflow must bounce 429, every
            // admitted run must complete, nothing may leak.
            let addr = server.addr.clone();
            let drivers: Vec<_> = (0..NAMES.len())
                .map(|i| {
                    let addr = addr.clone();
                    thread::spawn(move || {
                        request(&addr, "POST", &format!("/run?job={}", NAMES[i]), None)
                    })
                })
                .collect();
            let mut bounced = 0usize;
            for driver in drivers {
                match driver.join().expect("driver thread") {
                    Ok(r) if r.status == 200 => {}
                    Ok(r) if r.status == 429 => {
                        bounced += 1;
                        if r.header("retry-after").is_none() {
                            violations.push("429 without Retry-After".to_string());
                        }
                    }
                    Ok(r) => violations.push(format!("flood request answered {}", r.status)),
                    Err(e) => violations.push(format!("flood request failed: {e}")),
                }
            }
            if bounced == 0 {
                violations.push(
                    "flood of 6 jobs over a 3-run budget saw no 429".to_string(),
                );
            }
            server.finish(&mut violations);
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_is_deterministic_and_clean() {
        let a = run_campaign(1, 1);
        let b = run_campaign(1, 1);
        assert_eq!(a.render(), b.render(), "same seed, same report");
        assert_eq!(a.trials(), 5);
        assert_eq!(a.violated(), 0, "no invariant may break:\n{}", a.render());
        assert_eq!(a.crashed(), 0, "no trial may crash:\n{}", a.render());
    }
}
