//! `harness fsck`: an offline auditor for the results tree.
//!
//! A crash-only system is allowed to die at any instant, which means the
//! on-disk state must be *checkable*: after any sequence of kills, a single
//! pass over `results/` should say exactly what is intact, what is damage,
//! and what is resumable. This module is that pass. It audits
//!
//! * **artifacts** (`results/*.json`, `results/*.txt`, and the telemetry
//!   exports) — stems must belong to a registered experiment (or the
//!   quarantine report), JSON must parse, text must be newline-terminated;
//! * **cache entries** (`results/cache/*.cache`) — file names must parse
//!   back to `(job, point, key)`, the job must still be registered, and the
//!   entry body must verify against its key and whole-body checksum;
//! * **journals** (`results/journal/*.jsonl`) — interior lines must parse
//!   (a torn *final* line is legal crash damage), and a journal without an
//!   `end` record is a resumable run the user probably wants back;
//! * **temp droppings** (`*.tmp` anywhere) — orphans of interrupted atomic
//!   writes.
//!
//! With `--repair`, damaged files are quarantined into
//! `results/quarantine/` (never deleted — fsck destroys no evidence) and
//! temp droppings are removed. The scan order, findings order, and report
//! text are all deterministic: same tree in, same report out.

use crate::cache;
use sparten_bench::json::Json;
use sparten_bench::vfs::{RealFs, Vfs};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// What `--repair` did about one finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Audit-only run, or the finding needs no file action.
    None,
    /// Moved into `results/quarantine/` under this file name.
    Quarantined(String),
    /// Deleted (only ever temp droppings).
    Deleted,
    /// The repair itself failed; the reason.
    Failed(String),
}

/// One defect found in the results tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Defect class (kebab-case, stable): `corrupt-cache`,
    /// `orphan-cache`, `orphan-artifact`, `truncated-artifact`,
    /// `malformed-journal`, `dangling-journal`, `stale-journal`,
    /// `stale-tmp`.
    pub category: &'static str,
    /// Path relative to the audited root.
    pub path: String,
    /// Human-readable diagnosis.
    pub detail: String,
    /// What `--repair` did.
    pub action: Action,
}

/// The outcome of one [`fsck`] pass.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// The audited root (conventionally `results/`).
    pub root: PathBuf,
    /// Findings sorted by `(category, path)`.
    pub findings: Vec<Finding>,
    /// Files examined.
    pub scanned: usize,
    /// Whether this pass repaired (quarantined/deleted) what it found.
    pub repaired: bool,
}

impl FsckReport {
    /// Whether the tree had no defects.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Whether any resumable (dangling) journal was found.
    pub fn has_resumable(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.category == "dangling-journal")
    }

    /// The deterministic report text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== fsck {} ==", self.root.display());
        for f in &self.findings {
            let action = match &f.action {
                Action::None => String::new(),
                Action::Quarantined(name) => format!(" [quarantined as {name}]"),
                Action::Deleted => " [deleted]".to_string(),
                Action::Failed(e) => format!(" [repair failed: {e}]"),
            };
            let _ = writeln!(out, "{:<20} {} — {}{action}", f.category, f.path, f.detail);
        }
        let _ = writeln!(
            out,
            "{} file(s) scanned, {} finding(s){}",
            self.scanned,
            self.findings.len(),
            if self.clean() { " — tree is clean" } else { "" }
        );
        out
    }
}

/// Audits the results tree at `root` against the registered experiment
/// names. With `repair`, quarantines damaged files into
/// `root/quarantine/` and deletes temp droppings.
///
/// Missing directories are clean (a fresh checkout has no `results/`);
/// only real I/O failures error.
pub fn fsck(root: &Path, job_names: &[&str], repair: bool) -> io::Result<FsckReport> {
    fsck_with_vfs(root, job_names, repair, &RealFs)
}

/// [`fsck`] through an explicit [`Vfs`], so the crash-consistency oracle
/// can audit (and repair) a tree while faults are still being injected.
pub fn fsck_with_vfs(
    root: &Path,
    job_names: &[&str],
    repair: bool,
    vfs: &dyn Vfs,
) -> io::Result<FsckReport> {
    let mut findings: Vec<Finding> = Vec::new();
    let mut scanned = 0usize;

    // results/*.json|*.txt|*.tmp — final artifacts plus the quarantine
    // report. Subdirectories are audited on their own terms below.
    for path in sorted_files(vfs, root)? {
        scanned += 1;
        audit_artifact(vfs, &path, "", job_names, &mut findings);
    }
    for path in sorted_files(vfs, &root.join("telemetry"))? {
        scanned += 1;
        audit_artifact(vfs, &path, "telemetry/", job_names, &mut findings);
    }

    for path in sorted_files(vfs, &root.join("cache"))? {
        scanned += 1;
        audit_cache_entry(vfs, &path, job_names, &mut findings);
    }

    for path in sorted_files(vfs, &root.join("journal"))? {
        scanned += 1;
        audit_journal(vfs, &path, &mut findings);
    }

    findings.sort_by(|a, b| (a.category, &a.path).cmp(&(b.category, &b.path)));
    if repair {
        for finding in &mut findings {
            finding.action = repair_finding(vfs, root, finding);
        }
    }
    Ok(FsckReport {
        root: root.to_path_buf(),
        findings,
        scanned,
        repaired: repair,
    })
}

/// Regular files directly under `dir`, name-sorted; missing dir is empty.
fn sorted_files(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<PathBuf>> {
    let entries = match vfs.read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(entries
        .into_iter()
        .filter(|e| e.is_file)
        .map(|e| e.path)
        .collect())
}

fn rel(prefix: &str, path: &Path) -> String {
    format!(
        "{prefix}{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("?")
    )
}

fn push(
    findings: &mut Vec<Finding>,
    category: &'static str,
    path: String,
    detail: impl Into<String>,
) {
    findings.push(Finding {
        category,
        path,
        detail: detail.into(),
        action: Action::None,
    });
}

fn audit_artifact(
    vfs: &dyn Vfs,
    path: &Path,
    prefix: &str,
    job_names: &[&str],
    findings: &mut Vec<Finding>,
) {
    let rel_path = rel(prefix, path);
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return;
    };
    let Some((stem, ext)) = name.rsplit_once('.') else {
        return;
    };
    match ext {
        "tmp" => push(
            findings,
            "stale-tmp",
            rel_path,
            "orphaned temp file from an interrupted atomic write",
        ),
        "json" | "txt" => {
            if stem != "failures" && !job_names.contains(&stem) {
                push(
                    findings,
                    "orphan-artifact",
                    rel_path,
                    "no registered experiment produces this file",
                );
                return;
            }
            let Ok(text) = vfs.read_to_string(path) else {
                push(findings, "truncated-artifact", rel_path, "not valid UTF-8");
                return;
            };
            if ext == "json" {
                if let Err(e) = Json::parse(&text) {
                    push(
                        findings,
                        "truncated-artifact",
                        rel_path,
                        format!("JSON does not parse ({e})"),
                    );
                }
            } else if text.is_empty() || !text.ends_with('\n') {
                push(
                    findings,
                    "truncated-artifact",
                    rel_path,
                    "text artifact is empty or missing its final newline",
                );
            }
        }
        _ => {} // README.md and friends are not ours to judge
    }
}

fn audit_cache_entry(
    vfs: &dyn Vfs,
    path: &Path,
    job_names: &[&str],
    findings: &mut Vec<Finding>,
) {
    let rel_path = rel("cache/", path);
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return;
    };
    if name.ends_with(".tmp") {
        push(
            findings,
            "stale-tmp",
            rel_path,
            "orphaned temp file from an interrupted cache write",
        );
        return;
    }
    if !name.ends_with(".cache") {
        return;
    }
    let Some((job, _point, key)) = cache::parse_entry_filename(name) else {
        push(
            findings,
            "orphan-cache",
            rel_path,
            "file name does not follow <job>.p<point>.<key>.cache",
        );
        return;
    };
    if !job_names.contains(&job) {
        push(
            findings,
            "orphan-cache",
            rel_path,
            "entry belongs to no registered experiment",
        );
        return;
    }
    let ok = vfs
        .read_to_string(path)
        .map(|text| cache::verify_entry_text(&text, key))
        .unwrap_or(false);
    if !ok {
        push(
            findings,
            "corrupt-cache",
            rel_path,
            "entry fails its key/checksum verification",
        );
    }
}

fn audit_journal(vfs: &dyn Vfs, path: &Path, findings: &mut Vec<Finding>) {
    let rel_path = rel("journal/", path);
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return;
    };
    if name.ends_with(".tmp") {
        push(
            findings,
            "stale-tmp",
            rel_path,
            "orphaned temp file in the journal directory",
        );
        return;
    }
    if !name.ends_with(".jsonl") {
        return;
    }
    match crate::journal::replay_with(path, vfs) {
        Err(e) => push(
            findings,
            "malformed-journal",
            rel_path,
            format!("does not replay ({e})"),
        ),
        Ok(replay) if replay.ended => push(
            findings,
            "stale-journal",
            rel_path,
            "run completed but its journal was not removed",
        ),
        Ok(replay) => push(
            findings,
            "dangling-journal",
            rel_path,
            format!(
                "interrupted run `{}` with {} completed point(s); \
                 `run --resume {}` recovers it (repair discards it)",
                replay.start.run_id,
                replay.points.len(),
                replay.start.run_id
            ),
        ),
    }
}

/// Repairs one finding: temp droppings are deleted, everything else is
/// moved (never deleted) into `root/quarantine/`.
fn repair_finding(vfs: &dyn Vfs, root: &Path, finding: &Finding) -> Action {
    let path = root.join(&finding.path);
    if finding.category == "stale-tmp" {
        return match vfs.remove_file(&path) {
            Ok(()) => Action::Deleted,
            // Swept by a concurrent `clean` between audit and repair:
            // the dropping is gone either way.
            Err(e) if e.kind() == io::ErrorKind::NotFound => Action::Deleted,
            Err(e) => Action::Failed(e.to_string()),
        };
    }
    let quarantine = root.join("quarantine");
    if let Err(e) = vfs.create_dir_all(&quarantine) {
        return Action::Failed(e.to_string());
    }
    // Flatten the relative path into a file name so quarantined files from
    // different subdirectories cannot collide.
    let flat = finding.path.replace('/', "_");
    let dest = quarantine.join(&flat);
    match vfs.rename(&path, &dest) {
        Ok(()) => Action::Quarantined(flat),
        Err(e) => Action::Failed(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sparten-fsck-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn empty_and_missing_trees_are_clean() {
        let dir = scratch("empty");
        let report = fsck(&dir, &["job_a"], false).unwrap();
        assert!(report.clean());
        let report = fsck(&dir.join("never-made"), &["job_a"], false).unwrap();
        assert!(report.clean());
        assert_eq!(report.scanned, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn classifies_and_repairs_seeded_damage() {
        let dir = scratch("seeded");
        // Good artifact, truncated artifact, orphan artifact, stale tmp.
        fs::write(dir.join("job_a.json"), "[1, 2]").unwrap();
        fs::write(dir.join("job_b.json"), "[1, 2").unwrap(); // truncated
        fs::write(dir.join("gone_job.json"), "[]").unwrap(); // orphan
        fs::write(dir.join("job_a.json.tmp"), "half").unwrap();
        // Journal damage: interior corruption vs a resumable dangler.
        fs::create_dir_all(dir.join("journal")).unwrap();
        fs::write(dir.join("journal/run-bad.jsonl"), "not json\nat all\n").unwrap();

        let report = fsck(&dir, &["job_a", "job_b"], false).unwrap();
        let cats: Vec<&str> = report.findings.iter().map(|f| f.category).collect();
        assert_eq!(
            cats,
            vec![
                "malformed-journal",
                "orphan-artifact",
                "stale-tmp",
                "truncated-artifact"
            ]
        );
        // Deterministic: a second audit renders the identical report.
        let again = fsck(&dir, &["job_a", "job_b"], false).unwrap();
        assert_eq!(report.render(), again.render());

        let repaired = fsck(&dir, &["job_a", "job_b"], true).unwrap();
        assert_eq!(repaired.findings.len(), 4);
        for f in &repaired.findings {
            assert!(
                matches!(f.action, Action::Quarantined(_) | Action::Deleted),
                "{f:?}"
            );
        }
        assert!(!dir.join("job_a.json.tmp").exists());
        assert!(dir.join("quarantine/gone_job.json").exists());
        assert!(dir.join("quarantine/journal_run-bad.jsonl").exists());
        assert!(dir.join("job_a.json").exists(), "healthy files untouched");

        // After repair the tree is clean (quarantine is not audited).
        let after = fsck(&dir, &["job_a", "job_b"], false).unwrap();
        assert!(after.clean(), "{}", after.render());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repair_is_idempotent() {
        let dir = scratch("idempotent");
        fs::write(dir.join("gone_job.json"), "[]").unwrap(); // orphan
        fs::write(dir.join("job_a.json.tmp"), "half").unwrap();
        fs::create_dir_all(dir.join("journal")).unwrap();
        fs::write(dir.join("journal/run-bad.jsonl"), "not json\nat all\n").unwrap();

        let first = fsck(&dir, &["job_a"], true).unwrap();
        assert_eq!(first.findings.len(), 3);
        for f in &first.findings {
            assert!(
                matches!(f.action, Action::Quarantined(_) | Action::Deleted),
                "{f:?}"
            );
        }

        // A second repair pass finds nothing to do and renders the same
        // report as a third: repair converges after one pass.
        let second = fsck(&dir, &["job_a"], true).unwrap();
        assert!(second.clean(), "{}", second.render());
        let third = fsck(&dir, &["job_a"], true).unwrap();
        assert_eq!(second.render(), third.render());
        // Quarantined evidence from the first pass is still there.
        assert!(dir.join("quarantine/gone_job.json").exists());
        assert!(dir.join("quarantine/journal_run-bad.jsonl").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn text_artifacts_need_their_final_newline() {
        let dir = scratch("text");
        fs::write(dir.join("job_a.txt"), "complete line\n").unwrap();
        fs::write(dir.join("job_b.txt"), "torn lin").unwrap();
        let report = fsck(&dir, &["job_a", "job_b"], false).unwrap();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].category, "truncated-artifact");
        assert_eq!(report.findings[0].path, "job_b.txt");
        let _ = fs::remove_dir_all(&dir);
    }
}
