//! The write-ahead run journal behind `run --resume`.
//!
//! Before a run computes anything it appends a *start record* — the run
//! options that affect results (filter, force, telemetry, seed) plus a
//! fingerprint of every selected job — to
//! `results/journal/<run-id>.jsonl`. Every completed point is then
//! journaled (payload and, when collected, its serialized telemetry
//! session) with an fsync before the scheduler acts on it, so the journal
//! on disk is always a faithful prefix of the run. A process that dies at
//! any instant — `kill -9`, OOM, power cut — leaves a journal from which
//! `run --resume` replays the completed points and computes only the rest,
//! producing final artifacts byte-identical to an uninterrupted run.
//!
//! Records are one compact JSON object per line (the repo's own
//! hand-rolled `Json`, like everything else). The final line of a crashed
//! journal may be torn mid-write; readers tolerate exactly that — an
//! unparseable *last* line is discarded, an unparseable interior line is
//! an error (that file did not come from a crash, it is corrupt).
//!
//! Lifecycle: a run that completes (successfully or degraded) appends an
//! `end` record and deletes its journal. Any journal still on disk
//! therefore belongs to a crashed or drained run; `harness fsck` reports
//! journals without an `end` record as resumable and everything else as
//! damage.

use crate::cache::fnv1a_parts;
use sparten_bench::json::Json;
use sparten_bench::vfs::{Append, RealFs, Vfs, VfsFile};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bump when the journal record format changes incompatibly; a resume
/// across formats is refused rather than misread.
pub const JOURNAL_FORMAT: u64 = 1;

/// One selected job as pinned by the start record. A resume recomputes
/// nothing unless every pinned job matches the live registry exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalJob {
    /// Experiment name.
    pub name: String,
    /// The experiment's configuration fingerprint at journal time.
    pub fingerprint: String,
    /// Point count at journal time.
    pub points: usize,
}

/// The first record of every journal: everything that must match for a
/// resume to be sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartRecord {
    /// The run id (also the journal's file stem).
    pub run_id: String,
    /// The run's `--filter`, if any.
    pub filter: Option<String>,
    /// Whether the run bypassed the cache with `--force`.
    pub force: bool,
    /// Whether the run collected telemetry.
    pub telemetry: bool,
    /// The global workload seed.
    pub seed: u64,
    /// [`registry_fingerprint`] over `jobs`.
    pub registry_fp: String,
    /// The selected jobs, in registry order.
    pub jobs: Vec<JournalJob>,
    /// The run's trace id (lowercase hex), when it executed under a
    /// trace context. Correlation material only — a resume never has to
    /// match it — and optional on the wire so older journals still parse.
    pub trace: Option<String>,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Run header; always the first record.
    Start(StartRecord),
    /// A worker began computing `(job, point)` (attempt counts from 1).
    Attempt {
        /// Experiment name.
        job: String,
        /// Point index.
        point: usize,
        /// Attempt number.
        attempt: usize,
    },
    /// `(job, point)` completed; `payload` is the serialized
    /// [`crate::cache::serialize_payload`] body and `telemetry` the
    /// exported per-point session, when one was collected.
    Point {
        /// Experiment name.
        job: String,
        /// Point index.
        point: usize,
        /// Serialized payload body.
        payload: String,
        /// Serialized telemetry session, if collected.
        telemetry: Option<String>,
    },
    /// One attempt at `(job, point)` failed.
    Fail {
        /// Experiment name.
        job: String,
        /// Point index.
        point: usize,
        /// Attempt number.
        attempt: usize,
        /// `"panic"` or `"timeout"`.
        kind: String,
        /// The panic message or timeout description.
        message: String,
    },
    /// The run drained cleanly after a signal instead of finishing.
    Shutdown {
        /// Why the run stopped early (e.g. `"signal"`).
        reason: String,
    },
    /// The run completed; the journal is about to be deleted.
    End {
        /// `"ok"` or `"degraded"` (quarantined points).
        status: String,
    },
}

/// Fingerprints a job list: any change to names, fingerprints, point
/// counts, or order changes the value, which is what makes a stale journal
/// refuse to resume against a changed registry.
pub fn registry_fingerprint(jobs: &[JournalJob]) -> String {
    let parts: Vec<String> = jobs
        .iter()
        .map(|j| format!("{}\u{1f}{}\u{1f}{}", j.name, j.fingerprint, j.points))
        .collect();
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    format!("{:016x}", fnv1a_parts(&refs))
}

/// A fresh run id: wall-clock nanoseconds plus pid, unique enough for a
/// directory of journals and sortable by creation time.
pub fn generate_run_id() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("run-{nanos:025}-{}", std::process::id())
}

/// The journal file a run id maps to under `dir`.
pub fn journal_path(dir: &Path, run_id: &str) -> PathBuf {
    dir.join(format!("{run_id}.jsonl"))
}

/// The most recently modified `*.jsonl` journal under `dir` (what a bare
/// `--resume` resumes). Missing directory means no journals.
pub fn latest_journal(dir: &Path) -> io::Result<Option<PathBuf>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        let modified = entry.metadata()?.modified()?;
        // Ties (same mtime granularity) break toward the larger file name,
        // which for generated run ids is the later run.
        let newer = match &best {
            None => true,
            Some((t, p)) => modified > *t || (modified == *t && path > *p),
        };
        if newer {
            best = Some((modified, path));
        }
    }
    Ok(best.map(|(_, p)| p))
}

/// A failed journal append: the write-ahead guarantee for that record
/// does not hold, so the caller must treat the point as *not* journaled
/// (fail it or retry it — never silently continue).
#[derive(Debug)]
pub enum JournalError {
    /// The record's bytes could not be written.
    Write(io::Error),
    /// The record was written but its fsync failed, so the bytes may not
    /// be durable. The append is rolled back.
    Sync(io::Error),
    /// A previous failed append could not be rolled back, so the file's
    /// tail state is unknown; the journal refuses all further appends.
    Poisoned,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Write(e) => write!(f, "journal write failed: {e}"),
            JournalError::Sync(e) => write!(f, "journal fsync failed: {e}"),
            JournalError::Poisoned => {
                write!(f, "journal poisoned by an earlier unrolled-back append")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<JournalError> for io::Error {
    fn from(e: JournalError) -> io::Error {
        match e {
            JournalError::Write(e) | JournalError::Sync(e) => e,
            JournalError::Poisoned => io::Error::other(e.to_string()),
        }
    }
}

/// An open journal being appended to. Every [`append`](Journal::append) is
/// fsync'd before it returns — the write-ahead guarantee costs one
/// `fdatasync` per point, which is noise next to computing the point.
///
/// A failed append is rolled back (the file is truncated to the last good
/// record boundary) so a torn write never becomes interior corruption;
/// readers only ever have to tolerate a torn *final* line, which a power
/// cut mid-append can still produce.
pub struct Journal {
    path: PathBuf,
    file: Box<dyn VfsFile>,
    vfs: Arc<dyn Vfs>,
    /// Bytes known to form whole, fsync'd records.
    len: u64,
    poisoned: bool,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("len", &self.len)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Journal {
    /// Creates `dir/<run-id>.jsonl` and writes the start record. Refuses
    /// to overwrite an existing journal (run ids must be fresh).
    pub fn create(dir: &Path, start: &StartRecord) -> io::Result<Journal> {
        Journal::create_with(dir, start, Arc::new(RealFs))
    }

    /// [`create`](Journal::create) through an explicit [`Vfs`].
    pub fn create_with(dir: &Path, start: &StartRecord, vfs: Arc<dyn Vfs>) -> io::Result<Journal> {
        vfs.create_dir_all(dir)?;
        let path = journal_path(dir, &start.run_id);
        let file = vfs.open_append(&path, Append::New)?;
        let mut journal = Journal {
            path,
            file,
            vfs,
            len: 0,
            poisoned: false,
        };
        journal.append(&Record::Start(start.clone()))?;
        Ok(journal)
    }

    /// Reopens an existing journal for appending (the resume path).
    pub fn reopen(path: &Path) -> io::Result<Journal> {
        Journal::reopen_with(path, Arc::new(RealFs))
    }

    /// [`reopen`](Journal::reopen) through an explicit [`Vfs`].
    pub fn reopen_with(path: &Path, vfs: Arc<dyn Vfs>) -> io::Result<Journal> {
        // The resume path has already replayed the file, so re-reading it
        // for the rollback baseline is cheap and keeps the Vfs surface
        // minimal. A torn final line — the power cut this journal exists
        // to survive — is truncated away *before* the first new append;
        // appending after the fragment would fuse it with the next record
        // into interior corruption that a later replay rejects.
        let bytes = vfs.read(path)?;
        let len = bytes
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |i| i + 1) as u64;
        let mut file = vfs.open_append(path, Append::Existing)?;
        if len < bytes.len() as u64 {
            file.truncate(len)?;
        }
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            vfs,
            len,
            poisoned: false,
        })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs it; on failure the file is rolled
    /// back to the previous record boundary and the record is *not*
    /// journaled.
    pub fn append(&mut self, record: &Record) -> Result<(), JournalError> {
        if self.poisoned {
            return Err(JournalError::Poisoned);
        }
        let mut line = record_to_json(record).compact();
        line.push('\n');
        let result = self
            .file
            .write_all(line.as_bytes())
            .map_err(JournalError::Write)
            .and_then(|()| self.file.sync_data().map_err(JournalError::Sync));
        match result {
            Ok(()) => {
                self.len += line.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Truncate away whatever prefix of the line reached the
                // file; if even that fails, refuse future appends rather
                // than risk interior corruption.
                if self.file.truncate(self.len).is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Seals a completed run: appends the `end` record, then deletes the
    /// journal — a journal left on disk always means an unfinished run.
    pub fn seal(mut self, status: &str) -> io::Result<()> {
        self.append(&Record::End {
            status: status.to_string(),
        })?;
        self.vfs.remove_file(&self.path)
    }
}

/// A journal read back for resumption.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The pinned start record.
    pub start: StartRecord,
    /// Completed points in journal order: `(job, point, payload body,
    /// telemetry session text)`.
    pub points: Vec<(String, usize, String, Option<String>)>,
    /// Whether an `end` record is present (the run finished; there is
    /// nothing to resume).
    pub ended: bool,
    /// The `shutdown` reason, when the run drained instead of crashing.
    pub shutdown: Option<String>,
}

/// Reads a journal's records, tolerating a torn final line (the crash the
/// journal exists to survive). An unparseable interior line is corruption
/// and fails the read.
pub fn read_records(path: &Path) -> Result<Vec<Record>, String> {
    read_records_with(path, &RealFs)
}

/// [`read_records`] through an explicit [`Vfs`].
pub fn read_records_with(path: &Path, vfs: &dyn Vfs) -> Result<Vec<Record>, String> {
    let text = vfs
        .read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match parse_record(line) {
            Ok(r) => records.push(r),
            Err(_) if i + 1 == lines.len() => break, // torn tail from a crash mid-append
            Err(e) => {
                return Err(format!("{} line {}: {e}", path.display(), i + 1));
            }
        }
    }
    Ok(records)
}

/// Reads and structures a journal for `--resume`.
pub fn replay(path: &Path) -> Result<Replay, String> {
    replay_with(path, &RealFs)
}

/// [`replay`] through an explicit [`Vfs`].
pub fn replay_with(path: &Path, vfs: &dyn Vfs) -> Result<Replay, String> {
    let records = read_records_with(path, vfs)?;
    let mut it = records.into_iter();
    let start = match it.next() {
        Some(Record::Start(s)) => s,
        Some(_) => {
            return Err(format!(
                "{} does not begin with a start record",
                path.display()
            ))
        }
        None => return Err(format!("{} is empty", path.display())),
    };
    let mut replay = Replay {
        start,
        points: Vec::new(),
        ended: false,
        shutdown: None,
    };
    for record in it {
        match record {
            Record::Start(_) => {
                return Err(format!("{} has a second start record", path.display()))
            }
            Record::Point {
                job,
                point,
                payload,
                telemetry,
            } => replay.points.push((job, point, payload, telemetry)),
            Record::Shutdown { reason } => replay.shutdown = Some(reason),
            Record::End { .. } => replay.ended = true,
            Record::Attempt { .. } | Record::Fail { .. } => {}
        }
    }
    Ok(replay)
}

fn opt_str(v: &Option<String>) -> Json {
    match v {
        Some(s) => Json::str(s.clone()),
        None => Json::Null,
    }
}

fn record_to_json(record: &Record) -> Json {
    match record {
        Record::Start(s) => Json::obj([
            ("type", Json::str("start")),
            ("format", Json::UInt(JOURNAL_FORMAT)),
            ("run", Json::str(s.run_id.clone())),
            ("filter", opt_str(&s.filter)),
            ("force", Json::Bool(s.force)),
            ("telemetry", Json::Bool(s.telemetry)),
            ("seed", Json::UInt(s.seed)),
            ("registry", Json::str(s.registry_fp.clone())),
            ("trace", opt_str(&s.trace)),
            (
                "jobs",
                Json::Arr(
                    s.jobs
                        .iter()
                        .map(|j| {
                            Json::obj([
                                ("name", Json::str(j.name.clone())),
                                ("fingerprint", Json::str(j.fingerprint.clone())),
                                ("points", Json::UInt(j.points as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Record::Attempt {
            job,
            point,
            attempt,
        } => Json::obj([
            ("type", Json::str("attempt")),
            ("job", Json::str(job.clone())),
            ("point", Json::UInt(*point as u64)),
            ("attempt", Json::UInt(*attempt as u64)),
        ]),
        Record::Point {
            job,
            point,
            payload,
            telemetry,
        } => Json::obj([
            ("type", Json::str("point")),
            ("job", Json::str(job.clone())),
            ("point", Json::UInt(*point as u64)),
            ("payload", Json::str(payload.clone())),
            ("telemetry", opt_str(telemetry)),
        ]),
        Record::Fail {
            job,
            point,
            attempt,
            kind,
            message,
        } => Json::obj([
            ("type", Json::str("fail")),
            ("job", Json::str(job.clone())),
            ("point", Json::UInt(*point as u64)),
            ("attempt", Json::UInt(*attempt as u64)),
            ("kind", Json::str(kind.clone())),
            ("message", Json::str(message.clone())),
        ]),
        Record::Shutdown { reason } => Json::obj([
            ("type", Json::str("shutdown")),
            ("reason", Json::str(reason.clone())),
        ]),
        Record::End { status } => Json::obj([
            ("type", Json::str("end")),
            ("status", Json::str(status.clone())),
        ]),
    }
}

fn parse_record(line: &str) -> Result<Record, String> {
    let json = Json::parse(line)?;
    let field_str = |key: &str| {
        json.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    let field_usize = |key: &str| {
        json.get(key)
            .and_then(Json::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    };
    let field_opt_str = |key: &str| match json.get(key) {
        Some(Json::Null) | None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("field `{key}` is not a string")),
    };
    match json.get("type").and_then(Json::as_str) {
        Some("start") => {
            let format = json.get("format").and_then(Json::as_u64).unwrap_or(0);
            if format != JOURNAL_FORMAT {
                return Err(format!(
                    "journal format {format} (this build reads {JOURNAL_FORMAT})"
                ));
            }
            let jobs_json = json
                .get("jobs")
                .and_then(Json::as_arr)
                .ok_or("missing `jobs` array")?;
            let mut jobs = Vec::with_capacity(jobs_json.len());
            for j in jobs_json {
                jobs.push(JournalJob {
                    name: j
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("job without name")?
                        .to_string(),
                    fingerprint: j
                        .get("fingerprint")
                        .and_then(Json::as_str)
                        .ok_or("job without fingerprint")?
                        .to_string(),
                    points: j
                        .get("points")
                        .and_then(Json::as_u64)
                        .ok_or("job without points")? as usize,
                });
            }
            Ok(Record::Start(StartRecord {
                run_id: field_str("run")?,
                filter: field_opt_str("filter")?,
                force: json
                    .get("force")
                    .and_then(Json::as_bool)
                    .ok_or("missing `force`")?,
                telemetry: json
                    .get("telemetry")
                    .and_then(Json::as_bool)
                    .ok_or("missing `telemetry`")?,
                seed: json.get("seed").and_then(Json::as_u64).ok_or("missing `seed`")?,
                registry_fp: field_str("registry")?,
                jobs,
                trace: field_opt_str("trace")?,
            }))
        }
        Some("attempt") => Ok(Record::Attempt {
            job: field_str("job")?,
            point: field_usize("point")?,
            attempt: field_usize("attempt")?,
        }),
        Some("point") => Ok(Record::Point {
            job: field_str("job")?,
            point: field_usize("point")?,
            payload: field_str("payload")?,
            telemetry: field_opt_str("telemetry")?,
        }),
        Some("fail") => Ok(Record::Fail {
            job: field_str("job")?,
            point: field_usize("point")?,
            attempt: field_usize("attempt")?,
            kind: field_str("kind")?,
            message: field_str("message")?,
        }),
        Some("shutdown") => Ok(Record::Shutdown {
            reason: field_str("reason")?,
        }),
        Some("end") => Ok(Record::End {
            status: field_str("status")?,
        }),
        Some(other) => Err(format!("unknown record type `{other}`")),
        None => Err("record without a `type` field".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sparten-journal-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_start(run_id: &str) -> StartRecord {
        let jobs = vec![
            JournalJob {
                name: "fig7_alexnet_speedup".into(),
                fingerprint: "fp-a".into(),
                points: 5,
            },
            JournalJob {
                name: "table4_density".into(),
                fingerprint: "fp-b".into(),
                points: 1,
            },
        ];
        StartRecord {
            run_id: run_id.into(),
            filter: Some("fig7".into()),
            force: false,
            telemetry: true,
            seed: 2019,
            registry_fp: registry_fingerprint(&jobs),
            jobs,
            trace: Some("00000000deadbeef".into()),
        }
    }

    #[test]
    fn records_round_trip_through_their_json_lines() {
        let records = vec![
            Record::Start(sample_start("run-1")),
            Record::Attempt {
                job: "fig7_alexnet_speedup".into(),
                point: 2,
                attempt: 1,
            },
            Record::Point {
                job: "fig7_alexnet_speedup".into(),
                point: 2,
                payload: "kind=record\nlen=2\nx\n".into(),
                telemetry: Some("# session\nwith \"quotes\"".into()),
            },
            Record::Fail {
                job: "fig7_alexnet_speedup".into(),
                point: 3,
                attempt: 1,
                kind: "panic".into(),
                message: "boom\nsecond line".into(),
            },
            Record::Shutdown {
                reason: "signal".into(),
            },
            Record::End { status: "ok".into() },
        ];
        for record in records {
            let line = record_to_json(&record).compact();
            assert!(!line.contains('\n'), "journal lines must be single lines");
            assert_eq!(parse_record(&line), Ok(record));
        }
    }

    #[test]
    fn journal_files_replay_and_tolerate_torn_tails() {
        let dir = scratch("replay");
        let start = sample_start("run-torn");
        let mut journal = Journal::create(&dir, &start).unwrap();
        journal
            .append(&Record::Point {
                job: "fig7_alexnet_speedup".into(),
                point: 0,
                payload: "p0".into(),
                telemetry: None,
            })
            .unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        // Simulate a crash mid-append: half a record at the tail.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"type\":\"point\",\"job\":\"fi");
        fs::write(&path, &bytes).unwrap();

        let replay = replay(&path).unwrap();
        assert_eq!(replay.start, start);
        assert_eq!(replay.points.len(), 1);
        assert_eq!(replay.points[0].0, "fig7_alexnet_speedup");
        assert!(!replay.ended);
        assert!(replay.shutdown.is_none());

        // An interior corrupt line is *not* a torn tail; it must fail.
        let mut lines: Vec<String> = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        lines[1] = "corrupt {".into();
        fs::write(&path, lines.join("\n")).unwrap();
        assert!(replay_err_contains(&path, "line 2"));
        let _ = fs::remove_dir_all(&dir);
    }

    fn replay_err_contains(path: &Path, needle: &str) -> bool {
        matches!(replay(path), Err(e) if e.contains(needle))
    }

    #[test]
    fn sealed_journals_disappear() {
        let dir = scratch("seal");
        let journal = Journal::create(&dir, &sample_start("run-seal")).unwrap();
        let path = journal.path().to_path_buf();
        assert!(path.exists());
        journal.seal("ok").unwrap();
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_journal_prefers_newer_runs() {
        let dir = scratch("latest");
        assert_eq!(latest_journal(&dir).unwrap(), None);
        let a = Journal::create(&dir, &sample_start("run-aaa")).unwrap();
        let b = Journal::create(&dir, &sample_start("run-bbb")).unwrap();
        let latest = latest_journal(&dir).unwrap().unwrap();
        // Same-mtime ties break toward the later (lexically larger) run id.
        assert_eq!(latest, b.path());
        drop((a, b));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_offset_reads_as_a_clean_prefix() {
        // Property-style sweep: cut a recorded journal at *every* byte
        // offset. The reader must never error (any prefix of a valid
        // journal is exactly what a power cut mid-append produces), must
        // keep every whole record below the cut, and must return an
        // exact prefix of the full record list — never an invented or
        // reordered record.
        let dir = scratch("every-offset");
        let start = sample_start("run-prop");
        let mut journal = Journal::create(&dir, &start).unwrap();
        for point in 0..4 {
            journal
                .append(&Record::Point {
                    job: "fig7_alexnet_speedup".into(),
                    point,
                    payload: format!("payload-{point} with \"quotes\" and \\ slashes\n"),
                    telemetry: if point % 2 == 0 {
                        Some(format!("# session {point}"))
                    } else {
                        None
                    },
                })
                .unwrap();
        }
        let path = journal.path().to_path_buf();
        drop(journal);
        let bytes = fs::read(&path).unwrap();
        let full = read_records(&path).unwrap();
        assert_eq!(full.len(), 5);
        let mut line_ends = Vec::new();
        let mut acc = 0usize;
        for line in bytes.split_inclusive(|&b| b == b'\n') {
            acc += line.len();
            line_ends.push(acc);
        }
        for cut in 0..=bytes.len() {
            fs::write(&path, &bytes[..cut]).unwrap();
            let records = read_records(&path).unwrap_or_else(|e| {
                panic!("offset {cut}: a torn tail must never fail the read: {e}")
            });
            let whole = line_ends.iter().filter(|&&e| e <= cut).count();
            assert!(
                records.len() >= whole,
                "offset {cut}: lost a whole record ({} < {whole})",
                records.len()
            );
            // At most the one tail line whose newline the cut removed
            // can additionally parse (when the cut hit the boundary).
            assert!(records.len() <= whole + 1, "offset {cut}: invented a record");
            assert_eq!(
                records[..],
                full[..records.len()],
                "offset {cut}: not a clean prefix"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_truncates_a_torn_tail_before_appending() {
        let dir = scratch("torn-reopen");
        let mut journal = Journal::create(&dir, &sample_start("run-torn")).unwrap();
        journal
            .append(&Record::Point {
                job: "fig7_alexnet_speedup".into(),
                point: 0,
                payload: "whole".into(),
                telemetry: None,
            })
            .unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);
        // Simulate a power cut mid-append: a partial record with no
        // trailing newline.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"record\":\"point\",\"job\":\"fi");
        fs::write(&path, &bytes).unwrap();
        // Reopen and append: the fragment must not fuse with the new
        // record into an unreadable interior line.
        let mut journal = Journal::reopen(&path).unwrap();
        journal
            .append(&Record::Point {
                job: "fig7_alexnet_speedup".into(),
                point: 1,
                payload: "after reopen".into(),
                telemetry: None,
            })
            .unwrap();
        drop(journal);
        let records = read_records(&path).unwrap();
        assert_eq!(records.len(), 3, "start + two whole points");
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.points.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A [`Vfs`] whose `n`-th fsync (across all files) fails; everything
    /// else passes through. Exercises the append rollback path.
    #[derive(Debug)]
    struct FailNthSync {
        fail_on: u32,
        count: Arc<std::sync::Mutex<u32>>,
    }

    struct FailNthFile {
        inner: Box<dyn VfsFile>,
        fail_on: u32,
        count: Arc<std::sync::Mutex<u32>>,
    }

    impl VfsFile for FailNthFile {
        fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            self.inner.write_all(buf)
        }

        fn sync_data(&mut self) -> io::Result<()> {
            let mut count = self.count.lock().unwrap();
            *count += 1;
            if *count == self.fail_on {
                return Err(io::Error::other("injected fsync failure"));
            }
            self.inner.sync_data()
        }

        fn sync_all(&mut self) -> io::Result<()> {
            self.inner.sync_all()
        }

        fn truncate(&mut self, len: u64) -> io::Result<()> {
            self.inner.truncate(len)
        }
    }

    impl Vfs for FailNthSync {
        fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            RealFs.create_dir_all(path)
        }

        fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
            RealFs.create(path)
        }

        fn open_append(&self, path: &Path, mode: Append) -> io::Result<Box<dyn VfsFile>> {
            Ok(Box::new(FailNthFile {
                inner: RealFs.open_append(path, mode)?,
                fail_on: self.fail_on,
                count: Arc::clone(&self.count),
            }))
        }

        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            RealFs.read(path)
        }

        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            RealFs.rename(from, to)
        }

        fn remove_file(&self, path: &Path) -> io::Result<()> {
            RealFs.remove_file(path)
        }

        fn read_dir(&self, path: &Path) -> io::Result<Vec<sparten_bench::vfs::VfsDirEntry>> {
            RealFs.read_dir(path)
        }

        fn modified(&self, path: &Path) -> io::Result<std::time::SystemTime> {
            RealFs.modified(path)
        }

        fn sync_dir(&self, path: &Path) -> io::Result<()> {
            RealFs.sync_dir(path)
        }
    }

    #[test]
    fn failed_append_rolls_back_and_the_journal_stays_usable() {
        let dir = scratch("rollback");
        let start = sample_start("run-rollback");
        let vfs = Arc::new(FailNthSync {
            fail_on: 3, // start and point 0 succeed; point 1's fsync fails
            count: Arc::new(std::sync::Mutex::new(0)),
        });
        let mut journal = Journal::create_with(&dir, &start, vfs).unwrap();
        let point = |n: usize| Record::Point {
            job: "fig7_alexnet_speedup".into(),
            point: n,
            payload: format!("p{n}"),
            telemetry: None,
        };
        journal.append(&point(0)).unwrap();
        let path = journal.path().to_path_buf();
        let before = fs::read(&path).unwrap();
        let err = journal.append(&point(1)).unwrap_err();
        assert!(matches!(err, JournalError::Sync(_)), "typed fsync error");
        assert!(err.to_string().contains("fsync"));
        assert_eq!(
            fs::read(&path).unwrap(),
            before,
            "the torn append must be rolled back to the record boundary"
        );
        // The journal is not poisoned: later appends still work and the
        // file replays without interior corruption.
        journal.append(&point(2)).unwrap();
        drop(journal);
        let records = read_records(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[1], point(0));
        assert_eq!(records[2], point(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_fingerprint_pins_every_component() {
        let jobs = sample_start("x").jobs;
        let base = registry_fingerprint(&jobs);
        let mut renamed = jobs.clone();
        renamed[0].name = "other".into();
        assert_ne!(base, registry_fingerprint(&renamed));
        let mut refp = jobs.clone();
        refp[1].fingerprint = "fp-c".into();
        assert_ne!(base, registry_fingerprint(&refp));
        let mut repointed = jobs.clone();
        repointed[0].points = 6;
        assert_ne!(base, registry_fingerprint(&repointed));
        let mut reordered = jobs.clone();
        reordered.swap(0, 1);
        assert_ne!(base, registry_fingerprint(&reordered));
    }
}
