//! Cooperative shutdown on SIGINT/SIGTERM, with no external crates.
//!
//! The workspace builds offline against std alone, so there is no `libc`
//! or `signal-hook` to lean on. Instead the handler is registered through
//! the C runtime's `signal(2)` — std links libc anyway — and does the only
//! thing that is async-signal-safe: bump an atomic. The executor polls the
//! atomic between worker events and turns the first signal into a *drain*
//! (stop dispatching, let in-flight points finish, journal a clean
//! shutdown); a second signal while draining hard-aborts via `_exit` so an
//! impatient ^C^C still kills a wedged run immediately.
//!
//! The escalation contract is the [`ShutdownFlag`] value: `0` = run, `1` =
//! drain, `>= 2` = abort. Tests drive a drain by handing the executor their
//! own flag and storing into it mid-run — no real signals required.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Shared shutdown state: `0` running, `1` draining, `>= 2` hard abort.
pub type ShutdownFlag = Arc<AtomicUsize>;

/// Exit code of a run that drained cleanly after a signal (mirrors BSD's
/// `EX_TEMPFAIL`: the run is incomplete but resumable, not wrong).
pub const DRAINED_EXIT_CODE: u8 = 75;

/// Exit code of a second-signal hard abort (conventional 128 + SIGINT).
pub const ABORT_EXIT_CODE: i32 = 130;

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    fn _exit(code: i32) -> !;
}

static FLAG: OnceLock<ShutdownFlag> = OnceLock::new();

extern "C" fn on_signal(_signum: i32) {
    // Only atomics and `_exit` here: anything else (allocation, locks,
    // stdio) is not async-signal-safe.
    if let Some(flag) = FLAG.get() {
        if flag.fetch_add(1, Ordering::SeqCst) >= 1 {
            unsafe { _exit(ABORT_EXIT_CODE) }
        }
    }
}

/// Installs the SIGINT/SIGTERM handler (idempotent) and returns the shared
/// flag to pass as [`RunOptions::shutdown`].
///
/// [`RunOptions::shutdown`]: crate::executor::RunOptions::shutdown
pub fn install() -> ShutdownFlag {
    let flag = FLAG.get_or_init(|| Arc::new(AtomicUsize::new(0)));
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    Arc::clone(flag)
}

/// Reads a flag's current escalation level.
pub fn level(flag: &AtomicUsize) -> usize {
    flag.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_shares_one_flag() {
        let a = install();
        let b = install();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(level(&a), 0);
    }
}
