//! The `sparten-harness` CLI: one entry point for the whole evaluation.
//!
//! ```text
//! cargo run --release -p sparten-harness -- run --filter fig7 --jobs 8
//! cargo run --release -p sparten-harness -- list
//! cargo run --release -p sparten-harness -- clean
//! ```

use sparten_harness::cache::Cache;
use sparten_harness::executor::{self, RunOptions};
use sparten_harness::{faults, registry};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
sparten-harness — parallel experiment orchestration with result caching

USAGE:
    sparten-harness run [--filter SUBSTR] [--jobs N] [--force] [--strict]
                        [--retries N] [--point-timeout SECS]
                        [--cache-dir PATH] [--no-artifacts]
                        [--telemetry] [--telemetry-dir PATH]
    sparten-harness faults [--seed N] [--trials N] [--quick]
    sparten-harness list [--filter SUBSTR]
    sparten-harness report [--filter SUBSTR] [--telemetry-dir PATH]
    sparten-harness clean [--cache-dir PATH]

COMMANDS:
    run      Run experiments (all, or those whose name contains --filter),
             skipping points already in the cache, then print a per-job
             wall-time/cache-hit summary. Failed points are retried, then
             quarantined: the run completes with partial results and the
             quarantine is written to results/failures.json.
    faults   Run the seeded fault-injection campaign: inject every fault
             class, classify each trial (detected / masked / silently-wrong
             / crashed), and print the coverage table. Exits non-zero if
             any trial was silently wrong or crashed.
    list     List registered experiments with kind, points, and deps.
    report   Summarize telemetry written by a previous `run --telemetry`:
             per-scope work/stall cycle totals and the dominant stall cause.
    clean    Delete every cache entry.

OPTIONS:
    --filter SUBSTR       Only experiments whose name contains SUBSTR.
    --jobs N              Worker threads (default: available parallelism).
    --force               Recompute every point, overwriting cache entries.
    --strict              Exit non-zero when any point was quarantined
                          (default: a degraded run still exits zero so one
                          bad point cannot fail a whole sweep).
    --retries N           Attempts per point before quarantine (default 2).
    --point-timeout SECS  Watchdog deadline per point; a point exceeding it
                          counts as a failed attempt and its worker is
                          replaced (default: no deadline).
    --cache-dir PATH      Cache location (default: results/cache).
    --no-artifacts        Do not write results/*.json artifacts to disk.
    --telemetry           Collect cycle-level counters and timeline spans;
                          write one Chrome trace (<job>.json, loadable at
                          ui.perfetto.dev) and one text report (<job>.txt)
                          per job. Implies recomputing every point so the
                          counters cover the whole run.
    --telemetry-dir PATH  Telemetry location (default: results/telemetry).
    --seed N              Campaign seed (default 1): same seed, same plan,
                          byte-identical coverage report.
    --trials N            Trials per fault class (default 6).
    --quick               Shorthand for --trials 3 (CI smoke).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "run" => cmd_run(&args[1..]),
        "faults" => cmd_faults(&args[1..]),
        "list" => cmd_list(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "clean" => cmd_clean(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--flag value` / bare-flag options shared by the subcommands.
struct Flags {
    filter: Option<String>,
    jobs: Option<usize>,
    force: bool,
    strict: bool,
    retries: Option<usize>,
    point_timeout: Option<Duration>,
    cache_dir: Option<String>,
    no_artifacts: bool,
    telemetry: bool,
    telemetry_dir: Option<String>,
    seed: Option<u64>,
    trials: Option<u32>,
    quick: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        filter: None,
        jobs: None,
        force: false,
        strict: false,
        retries: None,
        point_timeout: None,
        cache_dir: None,
        no_artifacts: false,
        telemetry: false,
        telemetry_dir: None,
        seed: None,
        trials: None,
        quick: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--filter" => {
                f.filter = Some(it.next().ok_or("--filter needs a value")?.clone());
            }
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                f.jobs = Some(n);
            }
            "--force" => f.force = true,
            "--strict" => f.strict = true,
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --retries value `{v}`"))?;
                if n == 0 {
                    return Err("--retries must allow at least 1 attempt".into());
                }
                f.retries = Some(n);
            }
            "--point-timeout" => {
                let v = it.next().ok_or("--point-timeout needs a value")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --point-timeout value `{v}`"))?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err("--point-timeout must be positive".into());
                }
                f.point_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                f.seed = Some(v.parse().map_err(|_| format!("bad --seed value `{v}`"))?);
            }
            "--trials" => {
                let v = it.next().ok_or("--trials needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad --trials value `{v}`"))?;
                if n == 0 {
                    return Err("--trials must be at least 1".into());
                }
                f.trials = Some(n);
            }
            "--quick" => f.quick = true,
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a value")?;
                if v.is_empty() {
                    return Err("--cache-dir must not be empty".into());
                }
                f.cache_dir = Some(v.clone());
            }
            "--no-artifacts" => f.no_artifacts = true,
            "--telemetry" => f.telemetry = true,
            "--telemetry-dir" => {
                let v = it.next().ok_or("--telemetry-dir needs a value")?;
                if v.is_empty() {
                    return Err("--telemetry-dir must not be empty".into());
                }
                f.telemetry_dir = Some(v.clone());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(f)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut opts = RunOptions {
        filter: flags.filter,
        force: flags.force,
        write_artifacts: !flags.no_artifacts,
        ..RunOptions::default()
    };
    if let Some(j) = flags.jobs {
        opts.jobs = j;
    }
    if let Some(n) = flags.retries {
        opts.max_attempts = n;
    }
    opts.point_timeout = flags.point_timeout;
    if let Some(d) = flags.cache_dir {
        opts.cache_dir = d.into();
    }
    if flags.telemetry || flags.telemetry_dir.is_some() {
        opts.telemetry_dir = Some(
            flags
                .telemetry_dir
                .unwrap_or_else(|| "results/telemetry".into())
                .into(),
        );
    }

    let report = executor::run(&registry(), &opts);
    if report.jobs.is_empty() {
        eprintln!("no experiments match the filter");
        return ExitCode::FAILURE;
    }

    // Per-job summary: name, kind, points, cache hits, wall time.
    println!("== Run summary ==\n");
    println!(
        "{:<28} {:<10} {:>6} {:>6} {:>9}  status",
        "experiment", "kind", "points", "hits", "time"
    );
    for j in &report.jobs {
        println!(
            "{:<28} {:<10} {:>6} {:>6} {:>8.3}s  {}",
            j.name,
            j.kind.label(),
            j.points,
            j.cache_hits,
            j.wall.as_secs_f64(),
            if j.error.is_some() { "FAILED" } else { "ok" },
        );
    }
    let hits = report.total_hits();
    let points = report.total_points();
    println!(
        "\n{} jobs, {points} points, {hits} cache hits ({:.0}%), {:.3}s wall on {} workers",
        report.jobs.len(),
        if points == 0 {
            0.0
        } else {
            100.0 * hits as f64 / points as f64
        },
        report.elapsed.as_secs_f64(),
        report.workers,
    );
    let c = report.cache;
    if c.lookups() > 0 {
        println!(
            "cache lookups: {} hit, {} miss, {} malformed",
            c.hits, c.misses, c.malformed
        );
        if c.malformed > 0 {
            println!("  ({} unusable entries were recomputed and rewritten)", c.malformed);
        }
    }
    if c.swept_tmp > 0 {
        println!(
            "cache hygiene: swept {} orphaned .tmp file{} from interrupted writes",
            c.swept_tmp,
            if c.swept_tmp == 1 { "" } else { "s" }
        );
    }
    if report.retries > 0 {
        println!("retries: {} failed attempt(s) re-dispatched", report.retries);
    }
    if !report.failures.is_empty() {
        println!(
            "quarantined: {} point(s) exhausted their retry budget (see results/failures.json)",
            report.failures.len()
        );
        for f in &report.failures {
            println!("  {} point {} ({} after {} attempts)", f.job, f.point, f.kind, f.attempts);
        }
    }
    if let Some(dir) = &opts.telemetry_dir {
        let traced = report.jobs.iter().filter(|j| j.telemetry.is_some()).count();
        println!(
            "telemetry: {traced} jobs exported to {}/ (<job>.json loads at ui.perfetto.dev; \
             summarize with `sparten-harness report`)",
            dir.display()
        );
    }
    // Graceful degradation: a run with quarantined points still completed
    // and wrote every healthy result, so it exits zero unless the caller
    // opted into --strict.
    if report.all_ok() || !flags.strict {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs the seeded fault-injection campaign and prints the coverage table.
fn cmd_faults(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let seed = flags.seed.unwrap_or(1);
    let trials = flags.trials.unwrap_or(if flags.quick { 3 } else { 6 });
    let report = faults::run_campaign(seed, trials);
    print!("{}", report.render());
    if report.silently_wrong() == 0 && report.crashed() == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "error: {} silently-wrong and {} crashed trials — the stack let a fault through",
            report.silently_wrong(),
            report.crashed()
        );
        ExitCode::FAILURE
    }
}

/// Summarizes the `.txt` telemetry reports in the telemetry directory:
/// per job, the retained/dropped event counts, then per recorded scope the
/// Figure 10–12 cycle decomposition (work/stall counter totals) and the
/// single largest stall cause.
fn cmd_report(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dir = flags
        .telemetry_dir
        .unwrap_or_else(|| "results/telemetry".into());
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot read {dir}: {e} (run with --telemetry first)");
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("txt"))
        .filter(|p| {
            flags.filter.as_deref().is_none_or(|f| {
                p.file_stem()
                    .and_then(|s| s.to_str())
                    .is_some_and(|s| s.contains(f))
            })
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no telemetry reports match in {dir}");
        return ExitCode::FAILURE;
    }

    println!("== Telemetry report ({dir}) ==");
    let mut ok = true;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("warning: cannot read {}: {e}", path.display());
                ok = false;
                continue;
            }
        };
        let parsed = match sparten_telemetry::parse_report(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("warning: {} does not parse: {e}", path.display());
                ok = false;
                continue;
            }
        };
        println!(
            "\n{}: {} events ({} dropped)",
            parsed.job, parsed.events, parsed.dropped
        );
        // Every scope that recorded work or stall cycles, in name order.
        let mut scopes: Vec<&str> = parsed
            .counters
            .keys()
            .filter_map(|name| {
                let (scope, rest) = name.split_once('/')?;
                (rest.starts_with("work.") || rest.starts_with("stall.")).then_some(scope)
            })
            .collect();
        scopes.dedup();
        if scopes.is_empty() {
            continue;
        }
        println!(
            "  {:<22} {:>14} {:>14} {:>14} {:>14}  dominant stall",
            "scope", "nonzero", "zero", "intra", "inter"
        );
        for scope in scopes {
            let counter = |suffix: &str| {
                parsed
                    .counters
                    .get(&format!("{scope}/{suffix}"))
                    .copied()
                    .unwrap_or(0)
            };
            let stall_prefix = format!("{scope}/stall.");
            let dominant = parsed
                .counters
                .iter()
                .filter(|(n, v)| n.starts_with(&stall_prefix) && **v > 0)
                .max_by_key(|(_, v)| **v)
                .map(|(n, v)| format!("{} ({v})", &n[stall_prefix.len()..]))
                .unwrap_or_else(|| "-".into());
            println!(
                "  {:<22} {:>14} {:>14} {:>14} {:>14}  {dominant}",
                scope,
                counter("work.nonzero"),
                counter("work.zero"),
                parsed.counter_sum(&format!("{scope}/stall.intra.")),
                parsed.counter_sum(&format!("{scope}/stall.inter.")),
            );
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_list(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<28} {:<10} {:>6}  deps",
        "experiment", "kind", "points"
    );
    for e in registry() {
        if flags
            .filter
            .as_deref()
            .is_some_and(|f| !e.name().contains(f))
        {
            continue;
        }
        println!(
            "{:<28} {:<10} {:>6}  {}",
            e.name(),
            e.kind().label(),
            e.num_points(),
            if e.deps().is_empty() {
                "-".to_string()
            } else {
                e.deps().join(", ")
            },
        );
    }
    ExitCode::SUCCESS
}

fn cmd_clean(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dir = flags.cache_dir.unwrap_or_else(|| "results/cache".into());
    match Cache::new(dir).clean() {
        Ok(n) => {
            println!("removed {n} cache entries");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
