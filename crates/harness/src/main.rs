//! The `sparten-harness` CLI: one entry point for the whole evaluation.
//!
//! ```text
//! cargo run --release -p sparten-harness -- run --filter fig7 --jobs 8
//! cargo run --release -p sparten-harness -- run --resume
//! cargo run --release -p sparten-harness -- fsck --repair
//! cargo run --release -p sparten-harness -- list
//! cargo run --release -p sparten-harness -- clean
//! ```

use sparten_bench::json::Json;
use sparten_harness::cache::Cache;
use sparten_harness::executor::{self, RunOptions};
use sparten_harness::{chaos, diskchaos, events, faults, fsck, journal, registry, signal};
use sparten_telemetry::TraceContext;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
sparten-harness — parallel experiment orchestration with result caching

USAGE:
    sparten-harness run [--filter SUBSTR] [--jobs N] [--force] [--strict]
                        [--retries N] [--point-timeout SECS]
                        [--cache-dir PATH] [--no-artifacts]
                        [--telemetry] [--telemetry-dir PATH]
                        [--resume [RUN_ID]] [--journal-dir PATH]
                        [--drain-timeout SECS] [--abort-after N]
                        [--events-dir PATH]
    sparten-harness dse [--quick] [--jobs N] [--force] [--strict]
                        [--retries N] [--point-timeout SECS]
                        [--cache-dir PATH] [--no-artifacts]
                        [--resume [RUN_ID]] [--journal-dir PATH]
                        [--drain-timeout SECS] [--abort-after N]
                        [--events-dir PATH]
    sparten-harness bench [--quick] [--filter SUBSTR] [--threshold X]
                          [--out PATH] [--check-schema] [--enforce]
    sparten-harness faults [--seed N] [--trials N] [--quick] [--report PATH]
    sparten-harness chaos [--seed N] [--trials N] [--quick]
    sparten-harness diskchaos [--seed N] [--trials N] [--quick]
    sparten-harness fsck [--repair] [--results-dir PATH]
    sparten-harness list [--filter SUBSTR]
    sparten-harness report [--filter SUBSTR] [--telemetry-dir PATH] [--json]
    sparten-harness events [--events-dir PATH] [--run RUN_ID] [--level L]
                           [--trace HEX] [--follow]
    sparten-harness promlint [--file PATH]
    sparten-harness serve [--addr HOST:PORT] [--port-file PATH] [--jobs N]
                          [--max-active N] [--max-queue N] [--cache-dir PATH]
                          [--journal-dir PATH] [--no-artifacts]
                          [--drain-timeout SECS] [--events-dir PATH]
    sparten-harness clean [--results-dir PATH] [--cache-dir PATH]
                          [--journal-dir PATH]

COMMANDS:
    run      Run experiments (all, or those whose name contains --filter),
             skipping points already in the cache, then print a per-job
             wall-time/cache-hit summary. Failed points are retried, then
             quarantined: the run completes with partial results and the
             quarantine is written to results/failures.json. Every run
             keeps a write-ahead journal under results/journal/, so an
             interrupted run (crash, SIGINT, SIGTERM) resumes with
             `run --resume`. On SIGINT/SIGTERM the run drains: in-flight
             points finish, the journal records a clean shutdown, and the
             exit code is 75 (resumable). A second signal aborts at once.
    dse      Sweep the analytical model (crates/model) over a grid of
             architectures: chunk size × compute units × clusters × buffer
             capacity × scheme × layer shape × density grid — 1 080 000
             configurations, or 16 200 with --quick. Batches of 512
             configurations run through the same parallel executor,
             content-addressed cache, and write-ahead journal as `run`
             (so an interrupted sweep resumes with `dse --resume` and
             re-runs are incremental), then the merged results are reduced
             to a throughput/energy Pareto frontier printed as a table and
             written to results/dse/. Deterministic: the same grid yields
             byte-identical output and artifacts on every run.
    bench    Run the deterministic micro+macro benchmark registry: each
             word-parallel fast-path kernel against its structural-circuit
             oracle, one cycle-simulated layer per architecture, the
             functional engine, and the harness cache hit path. Prints the
             speedup table, writes BENCH_sim.json (atomic), and compares
             against the previous BENCH_sim.json if one exists, reporting
             any benchmark slower than --threshold times its baseline
             (a warning by default; an error with --enforce).
    faults   Run the seeded fault-injection campaign: inject every fault
             class, classify each trial (detected / masked / silently-wrong
             / crashed), and print the coverage table. Exits non-zero if
             any trial was silently wrong or crashed.
    chaos    Run the seeded chaos campaign against a live serve daemon:
             boot a private server per trial and attack it over real
             sockets (torn request bodies, slow-loris byte drips,
             mid-stream disconnects, deadline storms, queue floods), then
             verify the resilience invariants — no leaked run permits, no
             stuck sessions, every journal sealed, cache uncorrupted, no
             hung threads. Exits non-zero on any violation or crash.
    diskchaos
             Run the seeded disk-fault campaign: execute a deterministic
             workload on a fault-injecting filesystem (ENOSPC, short
             writes, fsync failures, rename failures, read-side bit rot),
             simulate a power cut at an arbitrary op-log prefix, recover
             with `run --resume` + `fsck --repair`, and verify the
             recovered tree is byte-identical to a clean run. Exits
             non-zero on any recovery violation or crash.
    fsck     Audit the results tree: artifacts that no experiment produces
             or that no longer parse, cache entries failing their checksum,
             journals that are malformed / resumable / stale, and leftover
             *.tmp files. Exits non-zero when defects are found; with
             --repair, quarantines damage into results/quarantine/ (temp
             droppings are deleted) and exits zero on success.
    list     List registered experiments with kind, points, and deps.
    report   Summarize telemetry written by a previous `run --telemetry`:
             per-scope work/stall cycle totals and the dominant stall cause.
             With --json, emit the same data (plus p50/p95/p99 latency
             estimates per histogram) as a JSON array on stdout.
    events   Read a structured event log written by `run` or `serve`
             (results/events/<run-id>.jsonl by default, latest run unless
             --run names one), printing each JSONL event; filter by
             severity (--level debug|info|warn|error) or by trace id
             (--trace HEX, as printed in /run responses and event records),
             and tail live logs with --follow. Exits non-zero on a
             malformed event line.
    promlint Validate Prometheus text exposition read from stdin (or
             --file PATH): TYPE declarations, sample syntax, histogram
             bucket monotonicity. The CI smoke pipes `GET /metrics`
             (with `Accept: text/plain; version=0.0.4`) through this.
    serve    Run the multi-tenant simulation daemon: accepts job requests
             over HTTP, coalesces concurrent duplicates onto one shared
             execution (keyed by the content-addressed cache key), serves
             fully cached jobs at memory speed without touching the
             executor, streams per-point progress as chunked NDJSON, and
             sheds load with 429 + Retry-After once the admission budget
             (--max-active + --max-queue runs) is spent. Endpoints:
             GET /healthz, GET /metrics (text report by default;
             Prometheus exposition under `Accept: text/plain;
             version=0.0.4` or ?format=prometheus), GET /trace (Chrome
             trace JSON of every request's causal chain, loadable at
             ui.perfetto.dev), GET /jobs, GET /result?job=NAME
             (cache-only, raw output), POST /run?job=NAME (or JSON body
             {\"job\": \"NAME\"}).
             On SIGINT/SIGTERM the daemon drains: stops accepting,
             finishes every accepted request, journals the shutdown, and
             exits 75. A second signal aborts at once.
    clean    Delete every cache entry, stale journals, quarantined files
             left by `fsck --repair`, and orphaned *.tmp files, printing
             per-category counts.

OPTIONS:
    --filter SUBSTR       Only experiments whose name contains SUBSTR.
    --jobs N              Worker threads (default: available parallelism).
    --force               Recompute every point, overwriting cache entries.
    --strict              Exit non-zero when any point was quarantined
                          (default: a degraded run still exits zero so one
                          bad point cannot fail a whole sweep).
    --retries N           Attempts per point before quarantine (default 2).
    --point-timeout SECS  Watchdog deadline per point; a point exceeding it
                          counts as a failed attempt and its worker is
                          replaced (default: no deadline).
    --cache-dir PATH      Cache location (default: results/cache).
    --no-artifacts        Do not write results/*.json artifacts to disk.
    --telemetry           Collect cycle-level counters and timeline spans;
                          write one Chrome trace (<job>.json, loadable at
                          ui.perfetto.dev) and one text report (<job>.txt)
                          per job. Implies recomputing every point so the
                          counters cover the whole run.
    --telemetry-dir PATH  Telemetry location (default: results/telemetry).
    --resume [RUN_ID]     Resume an interrupted run from its journal
                          (default: the most recent journal). The journaled
                          options and experiment registry must match this
                          invocation; completed points are replayed, not
                          recomputed, and the final artifacts are identical
                          to an uninterrupted run's.
    --journal-dir PATH    Journal location (default: results/journal).
    --drain-timeout SECS  How long a signal-initiated drain waits for
                          in-flight points before abandoning them
                          (default 30).
    --abort-after N       Crash-test hook: die (journal left dangling, like
                          kill -9) after N points have been computed and
                          journaled. Used by the interrupted-run CI smoke.
    --repair              fsck: quarantine damaged files instead of only
                          reporting them.
    --results-dir PATH    Results tree root (default: results).
    --report PATH         faults: also write the coverage table to PATH.
    --seed N              Campaign seed (default 1): same seed, same plan,
                          byte-identical coverage report.
    --trials N            Trials per fault class (default 6).
    --quick               faults: shorthand for --trials 3; bench: ~5 ms
                          measurement budget per benchmark (CI smoke).
    --threshold X         bench: regression threshold as a new/old time
                          ratio (default 1.5).
    --out PATH            bench: artifact path (default BENCH_sim.json).
    --check-schema        bench: after writing, parse the artifact back and
                          validate it against the pinned schema; exit
                          non-zero if malformed.
    --enforce             bench: exit non-zero when any benchmark regressed
                          past the threshold (default: warn only, since
                          shared CI runners time noisily).
    --addr HOST:PORT      serve: bind address (default 127.0.0.1:7070;
                          port 0 picks an ephemeral port).
    --port-file PATH      serve: write the bound HOST:PORT to PATH once
                          listening (how scripts find an ephemeral port).
    --max-active N        serve: concurrent executor runs (default 2).
    --max-queue N         serve: admitted runs allowed to wait for a slot
                          beyond --max-active; a new job arriving past that
                          budget is answered 429 (default 8).
    --events-dir PATH     Structured event log location (default:
                          results/events). `run` writes through per event;
                          `serve` buffers in memory and flushes on drain
                          (and on panic).
    --run RUN_ID          events: read RUN_ID's log instead of the latest.
    --level L             events: minimum severity to print
                          (debug|info|warn|error; default debug = all).
    --trace HEX           events: only events carrying this 16-hex-digit
                          trace id.
    --follow              events: keep the log open and print new events
                          as they are appended (poll ~5x/second).
    --json                report: emit machine-readable JSON instead of
                          the text tables.
    --file PATH           promlint: read the exposition from PATH instead
                          of stdin.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "run" => cmd_run(&args[1..]),
        "dse" => cmd_dse(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "faults" => cmd_faults(&args[1..]),
        "chaos" => cmd_chaos(&args[1..]),
        "diskchaos" => cmd_diskchaos(&args[1..]),
        "fsck" => cmd_fsck(&args[1..]),
        "list" => cmd_list(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "events" => cmd_events(&args[1..]),
        "promlint" => cmd_promlint(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "clean" => cmd_clean(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            events::error("cli.unknown_command", format!("unknown command `{other}`"));
            events::raw_stderr("\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Which options each subcommand accepts, plus its one-line synopsis —
/// the source of truth for rejecting an inapplicable flag (previously
/// `list --force` was parsed and silently ignored).
struct CommandSpec {
    usage: &'static str,
    allowed: &'static [&'static str],
}

fn command_spec(cmd: &str) -> CommandSpec {
    match cmd {
        "run" => CommandSpec {
            usage: "sparten-harness run [--filter SUBSTR] [--jobs N] [--force] [--strict]\n\
                    \x20                   [--retries N] [--point-timeout SECS]\n\
                    \x20                   [--cache-dir PATH] [--no-artifacts]\n\
                    \x20                   [--telemetry] [--telemetry-dir PATH]\n\
                    \x20                   [--resume [RUN_ID]] [--journal-dir PATH]\n\
                    \x20                   [--drain-timeout SECS] [--abort-after N]\n\
                    \x20                   [--events-dir PATH]",
            allowed: &[
                "--filter",
                "--jobs",
                "-j",
                "--force",
                "--strict",
                "--retries",
                "--point-timeout",
                "--cache-dir",
                "--no-artifacts",
                "--telemetry",
                "--telemetry-dir",
                "--resume",
                "--journal-dir",
                "--drain-timeout",
                "--abort-after",
                "--events-dir",
            ],
        },
        "dse" => CommandSpec {
            usage: "sparten-harness dse [--quick] [--jobs N] [--force] [--strict]\n\
                    \x20                   [--retries N] [--point-timeout SECS]\n\
                    \x20                   [--cache-dir PATH] [--no-artifacts]\n\
                    \x20                   [--resume [RUN_ID]] [--journal-dir PATH]\n\
                    \x20                   [--drain-timeout SECS] [--abort-after N]\n\
                    \x20                   [--events-dir PATH]",
            allowed: &[
                "--quick",
                "--jobs",
                "-j",
                "--force",
                "--strict",
                "--retries",
                "--point-timeout",
                "--cache-dir",
                "--no-artifacts",
                "--resume",
                "--journal-dir",
                "--drain-timeout",
                "--abort-after",
                "--events-dir",
            ],
        },
        "bench" => CommandSpec {
            usage: "sparten-harness bench [--quick] [--filter SUBSTR] [--threshold X]\n\
                    \x20                     [--out PATH] [--check-schema] [--enforce]\n\
                    \x20                     [--deadline-ms N] [--retries N]",
            allowed: &[
                "--quick",
                "--filter",
                "--threshold",
                "--out",
                "--check-schema",
                "--enforce",
                "--deadline-ms",
                "--retries",
            ],
        },
        "faults" => CommandSpec {
            usage: "sparten-harness faults [--seed N] [--trials N] [--quick] [--report PATH]",
            allowed: &["--seed", "--trials", "--quick", "--report"],
        },
        "chaos" => CommandSpec {
            usage: "sparten-harness chaos [--seed N] [--trials N] [--quick]",
            allowed: &["--seed", "--trials", "--quick"],
        },
        "diskchaos" => CommandSpec {
            usage: "sparten-harness diskchaos [--seed N] [--trials N] [--quick]",
            allowed: &["--seed", "--trials", "--quick"],
        },
        "fsck" => CommandSpec {
            usage: "sparten-harness fsck [--repair] [--results-dir PATH]",
            allowed: &["--repair", "--results-dir"],
        },
        "list" => CommandSpec {
            usage: "sparten-harness list [--filter SUBSTR]",
            allowed: &["--filter"],
        },
        "report" => CommandSpec {
            usage: "sparten-harness report [--filter SUBSTR] [--telemetry-dir PATH] [--json]",
            allowed: &["--filter", "--telemetry-dir", "--json"],
        },
        "events" => CommandSpec {
            usage: "sparten-harness events [--events-dir PATH] [--run RUN_ID] [--level L]\n\
                    \x20                      [--trace HEX] [--follow]",
            allowed: &["--events-dir", "--run", "--level", "--trace", "--follow"],
        },
        "promlint" => CommandSpec {
            usage: "sparten-harness promlint [--file PATH]",
            allowed: &["--file"],
        },
        "serve" => CommandSpec {
            usage: "sparten-harness serve [--addr HOST:PORT] [--port-file PATH] [--jobs N]\n\
                    \x20                     [--max-active N] [--max-queue N] [--cache-dir PATH]\n\
                    \x20                     [--journal-dir PATH] [--no-artifacts]\n\
                    \x20                     [--drain-timeout SECS] [--deadline-ms N]",
            allowed: &[
                "--addr",
                "--port-file",
                "--jobs",
                "-j",
                "--max-active",
                "--max-queue",
                "--cache-dir",
                "--journal-dir",
                "--no-artifacts",
                "--drain-timeout",
                "--deadline-ms",
                "--events-dir",
            ],
        },
        "clean" => CommandSpec {
            usage: "sparten-harness clean [--results-dir PATH] [--cache-dir PATH]\n\
                    \x20                     [--journal-dir PATH]",
            allowed: &["--results-dir", "--cache-dir", "--journal-dir"],
        },
        _ => unreachable!("command_spec called for unrouted command `{cmd}`"),
    }
}

/// How flag parsing failed.
enum FlagsError {
    /// A flag this subcommand does not accept (or not a flag at all):
    /// name it, show the subcommand's usage, exit 2.
    Unknown(String),
    /// A recognized flag with a missing or unparseable value: exit 1.
    Invalid(String),
}

impl From<String> for FlagsError {
    fn from(message: String) -> Self {
        FlagsError::Invalid(message)
    }
}

impl From<&'static str> for FlagsError {
    fn from(message: &'static str) -> Self {
        FlagsError::Invalid(message.to_string())
    }
}

/// Parses `cmd`'s flags or prints the right diagnostic: unknown options
/// name the flag and the subcommand usage and exit 2; malformed values
/// keep the historical exit 1.
fn parse_cmd_flags(cmd: &str, args: &[String]) -> Result<Flags, ExitCode> {
    let spec = command_spec(cmd);
    match parse_flags(args, spec.allowed) {
        Ok(flags) => Ok(flags),
        Err(FlagsError::Unknown(flag)) => {
            events::error(
                "cli.unknown_option",
                format!("unknown option `{flag}` for `sparten-harness {cmd}`"),
            );
            events::raw_stderr(&format!("\nUSAGE:\n    {}\n", spec.usage));
            Err(ExitCode::from(2))
        }
        Err(FlagsError::Invalid(message)) => {
            events::error("cli.invalid_flag", message);
            Err(ExitCode::FAILURE)
        }
    }
}

/// Parses `--flag value` / bare-flag options shared by the subcommands.
struct Flags {
    filter: Option<String>,
    jobs: Option<usize>,
    force: bool,
    strict: bool,
    retries: Option<usize>,
    point_timeout: Option<Duration>,
    cache_dir: Option<String>,
    no_artifacts: bool,
    telemetry: bool,
    telemetry_dir: Option<String>,
    seed: Option<u64>,
    trials: Option<u32>,
    quick: bool,
    /// `Some(None)` = `--resume` (latest journal); `Some(Some(id))` =
    /// `--resume RUN_ID`.
    resume: Option<Option<String>>,
    journal_dir: Option<String>,
    drain_timeout: Option<Duration>,
    abort_after: Option<usize>,
    repair: bool,
    results_dir: Option<String>,
    report_path: Option<String>,
    threshold: Option<f64>,
    out_path: Option<String>,
    check_schema: bool,
    enforce: bool,
    addr: Option<String>,
    port_file: Option<String>,
    max_active: Option<usize>,
    max_queue: Option<usize>,
    events_dir: Option<String>,
    run_id: Option<String>,
    level: Option<String>,
    trace: Option<String>,
    follow: bool,
    json: bool,
    file_path: Option<String>,
    deadline_ms: Option<u64>,
}

fn parse_flags(args: &[String], allowed: &[&str]) -> Result<Flags, FlagsError> {
    let mut f = Flags {
        filter: None,
        jobs: None,
        force: false,
        strict: false,
        retries: None,
        point_timeout: None,
        cache_dir: None,
        no_artifacts: false,
        telemetry: false,
        telemetry_dir: None,
        seed: None,
        trials: None,
        quick: false,
        resume: None,
        journal_dir: None,
        drain_timeout: None,
        abort_after: None,
        repair: false,
        results_dir: None,
        report_path: None,
        threshold: None,
        out_path: None,
        check_schema: false,
        enforce: false,
        addr: None,
        port_file: None,
        max_active: None,
        max_queue: None,
        events_dir: None,
        run_id: None,
        level: None,
        trace: None,
        follow: false,
        json: false,
        file_path: None,
        deadline_ms: None,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if !allowed.contains(&arg.as_str()) {
            return Err(FlagsError::Unknown(arg.clone()));
        }
        match arg.as_str() {
            "--filter" => {
                f.filter = Some(it.next().ok_or("--filter needs a value")?.clone());
            }
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                f.jobs = Some(n);
            }
            "--force" => f.force = true,
            "--strict" => f.strict = true,
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --retries value `{v}`"))?;
                if n == 0 {
                    return Err("--retries must allow at least 1 attempt".into());
                }
                f.retries = Some(n);
            }
            "--point-timeout" => {
                let v = it.next().ok_or("--point-timeout needs a value")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --point-timeout value `{v}`"))?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err("--point-timeout must be positive".into());
                }
                f.point_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                f.seed = Some(v.parse().map_err(|_| format!("bad --seed value `{v}`"))?);
            }
            "--trials" => {
                let v = it.next().ok_or("--trials needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad --trials value `{v}`"))?;
                if n == 0 {
                    return Err("--trials must be at least 1".into());
                }
                f.trials = Some(n);
            }
            "--quick" => f.quick = true,
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a value")?;
                if v.is_empty() {
                    return Err("--cache-dir must not be empty".into());
                }
                f.cache_dir = Some(v.clone());
            }
            "--no-artifacts" => f.no_artifacts = true,
            "--telemetry" => f.telemetry = true,
            "--telemetry-dir" => {
                let v = it.next().ok_or("--telemetry-dir needs a value")?;
                if v.is_empty() {
                    return Err("--telemetry-dir must not be empty".into());
                }
                f.telemetry_dir = Some(v.clone());
            }
            "--resume" => {
                // The run id is optional: a following token that is not a
                // flag is the id, otherwise the latest journal is used.
                let id = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| (*v).clone());
                if id.is_some() {
                    it.next();
                }
                f.resume = Some(id);
            }
            "--journal-dir" => {
                let v = it.next().ok_or("--journal-dir needs a value")?;
                if v.is_empty() {
                    return Err("--journal-dir must not be empty".into());
                }
                f.journal_dir = Some(v.clone());
            }
            "--drain-timeout" => {
                let v = it.next().ok_or("--drain-timeout needs a value")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --drain-timeout value `{v}`"))?;
                if secs < 0.0 || !secs.is_finite() {
                    return Err("--drain-timeout must be non-negative".into());
                }
                f.drain_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --deadline-ms value `{v}`"))?;
                if ms == 0 {
                    return Err("--deadline-ms must be at least 1".into());
                }
                f.deadline_ms = Some(ms);
            }
            "--abort-after" => {
                let v = it.next().ok_or("--abort-after needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --abort-after value `{v}`"))?;
                if n == 0 {
                    return Err("--abort-after must be at least 1".into());
                }
                f.abort_after = Some(n);
            }
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                let t: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --threshold value `{v}`"))?;
                if !t.is_finite() || t <= 0.0 {
                    return Err("--threshold must be finite and positive".into());
                }
                f.threshold = Some(t);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                if v.is_empty() {
                    return Err("--out must not be empty".into());
                }
                f.out_path = Some(v.clone());
            }
            "--check-schema" => f.check_schema = true,
            "--enforce" => f.enforce = true,
            "--repair" => f.repair = true,
            "--results-dir" => {
                let v = it.next().ok_or("--results-dir needs a value")?;
                if v.is_empty() {
                    return Err("--results-dir must not be empty".into());
                }
                f.results_dir = Some(v.clone());
            }
            "--report" => {
                let v = it.next().ok_or("--report needs a value")?;
                if v.is_empty() {
                    return Err("--report must not be empty".into());
                }
                f.report_path = Some(v.clone());
            }
            "--addr" => {
                let v = it.next().ok_or("--addr needs a value")?;
                if v.is_empty() {
                    return Err("--addr must not be empty".into());
                }
                f.addr = Some(v.clone());
            }
            "--port-file" => {
                let v = it.next().ok_or("--port-file needs a value")?;
                if v.is_empty() {
                    return Err("--port-file must not be empty".into());
                }
                f.port_file = Some(v.clone());
            }
            "--max-active" => {
                let v = it.next().ok_or("--max-active needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --max-active value `{v}`"))?;
                if n == 0 {
                    return Err("--max-active must be at least 1".into());
                }
                f.max_active = Some(n);
            }
            "--max-queue" => {
                let v = it.next().ok_or("--max-queue needs a value")?;
                f.max_queue =
                    Some(v.parse().map_err(|_| format!("bad --max-queue value `{v}`"))?);
            }
            "--events-dir" => {
                let v = it.next().ok_or("--events-dir needs a value")?;
                if v.is_empty() {
                    return Err("--events-dir must not be empty".into());
                }
                f.events_dir = Some(v.clone());
            }
            "--run" => {
                let v = it.next().ok_or("--run needs a value")?;
                if v.is_empty() {
                    return Err("--run must not be empty".into());
                }
                f.run_id = Some(v.clone());
            }
            "--level" => {
                let v = it.next().ok_or("--level needs a value")?;
                if events::Level::parse(v).is_none() {
                    return Err(format!(
                        "bad --level value `{v}` (debug|info|warn|error)"
                    )
                    .into());
                }
                f.level = Some(v.clone());
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a value")?;
                if TraceContext::parse_hex(v).is_none() {
                    return Err(format!(
                        "bad --trace value `{v}` (expect 16 hex digits)"
                    )
                    .into());
                }
                f.trace = Some(v.clone());
            }
            "--follow" => f.follow = true,
            "--json" => f.json = true,
            "--file" => {
                let v = it.next().ok_or("--file needs a value")?;
                if v.is_empty() {
                    return Err("--file must not be empty".into());
                }
                f.file_path = Some(v.clone());
            }
            other => return Err(FlagsError::Unknown(other.to_string())),
        }
    }
    Ok(f)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("run", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let mut opts = RunOptions {
        filter: flags.filter,
        force: flags.force,
        write_artifacts: !flags.no_artifacts,
        ..RunOptions::default()
    };
    if let Some(j) = flags.jobs {
        opts.jobs = j;
    }
    if let Some(n) = flags.retries {
        opts.max_attempts = n;
    }
    opts.point_timeout = flags.point_timeout;
    if let Some(d) = flags.cache_dir {
        opts.cache_dir = d.into();
    }
    if flags.telemetry || flags.telemetry_dir.is_some() {
        opts.telemetry_dir = Some(
            flags
                .telemetry_dir
                .unwrap_or_else(|| "results/telemetry".into())
                .into(),
        );
    }
    if let Some(d) = flags.journal_dir {
        opts.journal_dir = Some(d.into());
    }
    if let Some(t) = flags.drain_timeout {
        opts.drain_timeout = t;
    }
    opts.abort_after = flags.abort_after;
    drive_executor(opts, &registry(), flags.resume, flags.events_dir, flags.strict)
}

/// `dse`: the analytical-model design-space sweep, driven through the same
/// executor/cache/journal stack as `run` — only the job registry differs
/// (one sweep experiment instead of the paper figures).
fn cmd_dse(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("dse", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let experiment: std::sync::Arc<dyn sparten_harness::Experiment> = if flags.quick {
        std::sync::Arc::new(sparten_harness::dse::DseExperiment::quick())
    } else {
        std::sync::Arc::new(sparten_harness::dse::DseExperiment::full())
    };
    let jobs = vec![experiment];
    let mut opts = RunOptions {
        force: flags.force,
        write_artifacts: !flags.no_artifacts,
        ..RunOptions::default()
    };
    if let Some(j) = flags.jobs {
        opts.jobs = j;
    }
    if let Some(n) = flags.retries {
        opts.max_attempts = n;
    }
    opts.point_timeout = flags.point_timeout;
    if let Some(d) = flags.cache_dir {
        opts.cache_dir = d.into();
    }
    if let Some(d) = flags.journal_dir {
        opts.journal_dir = Some(d.into());
    }
    if let Some(t) = flags.drain_timeout {
        opts.drain_timeout = t;
    }
    opts.abort_after = flags.abort_after;
    drive_executor(opts, &jobs, flags.resume, flags.events_dir, flags.strict)
}

/// The shared executor-driving tail of `run` and `dse`: resolve
/// `--resume`, open the event log, install cooperative signal handling,
/// run the jobs, and print the per-job summary. `strict` gates the exit
/// code on quarantined points.
fn drive_executor(
    mut opts: RunOptions,
    jobs: &[std::sync::Arc<dyn sparten_harness::Experiment>],
    resume_flag: Option<Option<String>>,
    events_dir_flag: Option<String>,
    strict: bool,
) -> ExitCode {
    // Resolve `--resume [RUN_ID]` to a journal path up front so a typo'd
    // run id fails with a one-line diagnostic, not mid-run.
    if let Some(resume) = resume_flag {
        let dir = opts
            .journal_dir
            .clone()
            .expect("run always journals unless tests disable it");
        let path = match resume {
            Some(id) => {
                let p = journal::journal_path(&dir, &id);
                if !p.exists() {
                    events::error(
                        "resume.not_found",
                        format!("no journal for run id `{id}` in {}", dir.display()),
                    );
                    return ExitCode::FAILURE;
                }
                p
            }
            None => match journal::latest_journal(&dir) {
                Ok(Some(p)) => p,
                Ok(None) => {
                    events::error(
                        "resume.nothing",
                        format!(
                            "nothing to resume — no journal in {} \
                             (interrupted runs leave one behind)",
                            dir.display()
                        ),
                    );
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    events::error(
                        "resume.scan_failed",
                        format!("cannot scan {}: {e}", dir.display()),
                    );
                    return ExitCode::FAILURE;
                }
            },
        };
        opts.resume = Some(path);
    }

    // One trace context and one structured-event log per CLI run. The run
    // id is resolved up front (a resume reuses the journal's) so the event
    // file and the journal share a name.
    let run_id = match &opts.resume {
        Some(path) => path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("run-resumed")
            .to_string(),
        None => {
            let id = journal::generate_run_id();
            opts.run_id = Some(id.clone());
            id
        }
    };
    opts.trace = Some(TraceContext::root());
    let events_dir = PathBuf::from(events_dir_flag.unwrap_or_else(|| "results/events".into()));
    if let Err(e) = events::init_run(&events_dir, &run_id) {
        // A broken event log never blocks the run itself.
        events::warn(
            "events.init_failed",
            format!("cannot open event log in {}: {e}", events_dir.display()),
        );
    }

    // Cooperative shutdown: first SIGINT/SIGTERM drains, second aborts.
    opts.shutdown = Some(signal::install());

    let report = match executor::run(jobs, &opts) {
        Ok(r) => r,
        Err(e) => {
            events::error("run.failed", &e);
            return ExitCode::FAILURE;
        }
    };
    if report.jobs.is_empty() {
        events::error("run.no_match", "no experiments match the filter");
        return ExitCode::FAILURE;
    }

    // Per-job summary: name, kind, points, cache hits, wall time.
    println!("== Run summary ==\n");
    println!(
        "{:<28} {:<10} {:>6} {:>6} {:>9}  status",
        "experiment", "kind", "points", "hits", "time"
    );
    for j in &report.jobs {
        println!(
            "{:<28} {:<10} {:>6} {:>6} {:>8.3}s  {}",
            j.name,
            j.kind.label(),
            j.points,
            j.cache_hits,
            j.wall.as_secs_f64(),
            if j.error.is_some() { "FAILED" } else { "ok" },
        );
    }
    let hits = report.total_hits();
    let points = report.total_points();
    println!(
        "\n{} jobs, {points} points, {hits} cache hits ({:.0}%), {:.3}s wall on {} workers",
        report.jobs.len(),
        if points == 0 {
            0.0
        } else {
            100.0 * hits as f64 / points as f64
        },
        report.elapsed.as_secs_f64(),
        report.workers,
    );
    let c = report.cache;
    if c.lookups() > 0 {
        println!(
            "cache lookups: {} hit, {} miss, {} malformed",
            c.hits, c.misses, c.malformed
        );
        if c.malformed > 0 {
            println!("  ({} unusable entries were recomputed and rewritten)", c.malformed);
        }
    }
    if c.swept_tmp > 0 {
        println!(
            "cache hygiene: swept {} orphaned .tmp file{} from interrupted writes",
            c.swept_tmp,
            if c.swept_tmp == 1 { "" } else { "s" }
        );
    }
    if report.replayed > 0 {
        println!(
            "resumed: {} completed point(s) replayed from the journal instead of recomputed",
            report.replayed
        );
    }
    if report.retries > 0 {
        println!("retries: {} failed attempt(s) re-dispatched", report.retries);
    }
    if !report.failures.is_empty() {
        println!(
            "quarantined: {} point(s) exhausted their retry budget (see results/failures.json)",
            report.failures.len()
        );
        for f in &report.failures {
            println!("  {} point {} ({} after {} attempts)", f.job, f.point, f.kind, f.attempts);
        }
    }
    if let Some(dir) = &opts.telemetry_dir {
        let traced = report.jobs.iter().filter(|j| j.telemetry.is_some()).count();
        println!(
            "telemetry: {traced} jobs exported to {}/ (<job>.json loads at ui.perfetto.dev; \
             summarize with `sparten-harness report`)",
            dir.display()
        );
    }
    if report.interrupted {
        let hint = report
            .run_id
            .as_deref()
            .map(|id| format!("sparten-harness run --resume {id}"))
            .unwrap_or_else(|| "sparten-harness run --resume".into());
        events::info(
            "run.interrupted",
            format!(
                "interrupted: drained after a shutdown signal; completed work is journaled.\n\
                 resume with: {hint}"
            ),
        );
        events::flush();
        return ExitCode::from(signal::DRAINED_EXIT_CODE);
    }
    // Graceful degradation: a run with quarantined points still completed
    // and wrote every healthy result, so it exits zero unless the caller
    // opted into --strict.
    if report.all_ok() || !strict {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs the seeded fault-injection campaign and prints the coverage table.
fn cmd_faults(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("faults", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let seed = flags.seed.unwrap_or(1);
    let trials = flags.trials.unwrap_or(if flags.quick { 3 } else { 6 });
    let report = faults::run_campaign(seed, trials);
    let rendered = report.render();
    print!("{rendered}");
    if let Some(path) = &flags.report_path {
        if let Err(e) = sparten_bench::atomic_write(path, &rendered) {
            events::error(
                "faults.report_write_failed",
                format!("cannot write coverage report to {path}: {e}"),
            );
            return ExitCode::FAILURE;
        }
        println!("coverage report written to {path}");
    }
    if report.silently_wrong() == 0 && report.crashed() == 0 {
        ExitCode::SUCCESS
    } else {
        events::error(
            "faults.undetected",
            format!(
                "{} silently-wrong and {} crashed trials — the stack let a fault through",
                report.silently_wrong(),
                report.crashed()
            ),
        );
        ExitCode::FAILURE
    }
}

/// Runs the seeded chaos campaign against per-trial serve daemons and
/// prints the invariant table.
fn cmd_chaos(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("chaos", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let seed = flags.seed.unwrap_or(1);
    let trials = flags.trials.unwrap_or(if flags.quick { 1 } else { 3 });
    let report = chaos::run_campaign(seed, trials);
    print!("{}", report.render());
    if report.violated() == 0 && report.crashed() == 0 {
        ExitCode::SUCCESS
    } else {
        events::error(
            "chaos.invariant_violated",
            format!(
                "{} violated and {} crashed trials — the service broke an invariant under chaos",
                report.violated(),
                report.crashed()
            ),
        );
        ExitCode::FAILURE
    }
}

/// Runs the seeded disk-fault campaign (fault-injecting VFS + power-cut
/// oracle) and prints the invariant table plus the injection counters.
fn cmd_diskchaos(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("diskchaos", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let seed = flags.seed.unwrap_or(1);
    let trials = flags.trials.unwrap_or(if flags.quick { 1 } else { 3 });
    let telemetry = sparten_telemetry::Telemetry::new();
    let report = diskchaos::run_campaign(seed, trials, &telemetry);
    print!("{}", report.render());
    // One greppable counters line: how much the campaign actually injected
    // and repaired. Deterministic for a given (seed, trials), like the
    // table above it.
    let snap = telemetry.metrics.snapshot();
    println!(
        "counters: disk.injected={} disk.enospc={} recovery.repaired={}",
        snap.counter("disk.injected").unwrap_or(0),
        snap.counter("disk.enospc").unwrap_or(0),
        snap.counter("recovery.repaired").unwrap_or(0)
    );
    if report.violated() == 0 && report.crashed() == 0 {
        ExitCode::SUCCESS
    } else {
        events::error(
            "diskchaos.invariant_violated",
            format!(
                "{} violated and {} crashed trials — recovery broke an invariant under disk faults",
                report.violated(),
                report.crashed()
            ),
        );
        ExitCode::FAILURE
    }
}

/// One-point synthetic experiment for the serve cache-hit benchmark: its
/// single record is pre-stored in the scratch cache, so `GET /result`
/// against it exercises exactly the daemon's warm path.
struct ServeProbe;

impl sparten_harness::Experiment for ServeProbe {
    fn name(&self) -> &'static str {
        "serve-probe"
    }

    fn kind(&self) -> sparten_bench::ExperimentKind {
        sparten_bench::ExperimentKind::Study
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn num_points(&self) -> usize {
        1
    }

    fn fingerprint(&self) -> String {
        "serve-probe:v1".into()
    }

    fn compute_point(&self, _point: usize) -> sparten_harness::PointPayload {
        sparten_harness::PointPayload::Record(
            "serve-probe record: a representative experiment line\n".repeat(16),
        )
    }

    fn render(&self, points: &[sparten_harness::PointPayload]) -> sparten_bench::Capture {
        let text = points
            .iter()
            .map(|p| match p {
                sparten_harness::PointPayload::Record(blob) => blob.as_str(),
                sparten_harness::PointPayload::Capture(c) => c.text.as_str(),
            })
            .collect::<String>();
        sparten_bench::Capture {
            text,
            artifacts: Vec::new(),
        }
    }
}

/// Runs the deterministic benchmark registry and the perf-regression check.
///
/// The kernel and layer benchmarks live in `sparten_bench::perf`; the one
/// benchmark that cannot (the cache hit path — `sparten-bench` must not
/// depend back on this crate) is injected here as an [`ExtraBench`]: a
/// throwaway cache directory is seeded with one stored point, and the
/// benchmark times the hit path (`lookup` + `load`) against it.
fn cmd_bench(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("bench", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let opts = sparten_bench::BenchOptions {
        quick: flags.quick,
        filter: flags.filter.clone(),
        threshold: flags.threshold.unwrap_or(sparten_bench::DEFAULT_THRESHOLD),
    };
    let out_path = flags
        .out_path
        .clone()
        .unwrap_or_else(|| sparten_bench::DEFAULT_OUT_PATH.to_string());

    // Seed a scratch cache with one point so the extra bench times a hit.
    let cache_dir = std::env::temp_dir().join(format!(
        "sparten-harness-bench-cache-{}",
        std::process::id()
    ));
    let cache = Cache::new(&cache_dir);
    let key = Cache::key("bench-probe", "bench-fingerprint", sparten_bench::SEED, 0);
    let payload = sparten_harness::PointPayload::Record(
        "harness/cache-hit probe record: a representative experiment line\n".repeat(16),
    );
    if let Err(e) = cache.store("bench-probe", 0, key, &payload) {
        events::error(
            "bench.cache_seed_failed",
            format!("cannot seed bench cache in {}: {e}", cache_dir.display()),
        );
        return ExitCode::FAILURE;
    }
    let mut extras = vec![sparten_bench::ExtraBench {
        name: "harness/cache-hit".to_string(),
        run: Box::new(|| {
            let hit = cache.load("bench-probe", 0, key);
            assert!(hit.is_some(), "seeded cache point must hit");
        }),
    }];

    // The serve hot path: one full HTTP round trip for a fully-cached job
    // against an in-process daemon on an ephemeral port. The scratch cache
    // is warmed with the probe experiment's single point, so every
    // iteration measures connect + parse + lookup + render + response —
    // the latency a duplicate tenant sees when the answer is already warm.
    let probe: std::sync::Arc<dyn sparten_harness::Experiment> = std::sync::Arc::new(ServeProbe);
    let probe_key = Cache::key(
        probe.name(),
        &probe.fingerprint(),
        sparten_harness::SEED,
        0,
    );
    if let Err(e) = cache.store(probe.name(), 0, probe_key, &probe.compute_point(0)) {
        events::error(
            "bench.cache_warm_failed",
            format!("cannot warm serve bench cache: {e}"),
        );
        return ExitCode::FAILURE;
    }
    let serve_shutdown = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let backend = std::sync::Arc::new(sparten_harness::serve::HarnessBackend::new(
        vec![probe],
        &cache_dir,
        None,
        false,
        1,
    ));
    let serve_opts = sparten_serve::ServeOptions {
        addr: "127.0.0.1:0".into(),
        max_active: 1,
        max_queued: 4,
        read_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_secs(5),
        default_deadline: Duration::from_secs(120),
        max_deadline: Duration::from_secs(600),
        shutdown: std::sync::Arc::clone(&serve_shutdown),
        build: Default::default(),
    };
    let telemetry = std::sync::Arc::new(sparten_telemetry::Telemetry::new());
    let (serve_addr, serve_thread) =
        match sparten_serve::Server::bind(backend, telemetry, serve_opts) {
            Ok(server) => match server.local_addr() {
                Ok(a) => {
                    let addr = a.to_string();
                    (addr, std::thread::spawn(move || server.serve()))
                }
                Err(e) => {
                    events::error(
                        "bench.serve_addr_failed",
                        format!("cannot resolve serve bench address: {e}"),
                    );
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                events::error(
                    "bench.serve_bind_failed",
                    format!("cannot bind serve bench daemon: {e}"),
                );
                return ExitCode::FAILURE;
            }
        };
    let bench_addr = serve_addr.clone();
    // `--deadline-ms` / `--retries` flow into the bench client so the
    // measured path exercises the same resilience options real clients
    // use (defaults: no deadline, no retries — identical wire bytes).
    let client_opts = sparten_serve::client::RequestOptions {
        deadline: flags.deadline_ms.map(Duration::from_millis),
        retries: flags.retries.map(|n| n.saturating_sub(1) as u32).unwrap_or(0),
        ..Default::default()
    };
    extras.push(sparten_bench::ExtraBench {
        name: "serve/cache-hit-latency".to_string(),
        run: Box::new(move || {
            let response = sparten_serve::client::request_with(
                &bench_addr,
                "GET",
                "/result?job=serve-probe",
                None,
                &client_opts,
            )
            .expect("serve bench round trip");
            assert_eq!(response.status, 200, "warmed probe must be a cache hit");
        }),
    });

    let report = sparten_bench::run_benchmarks(&opts, extras);
    serve_shutdown.store(1, std::sync::atomic::Ordering::SeqCst);
    if serve_thread.join().is_err() {
        events::warn("bench.serve_panicked", "serve bench daemon panicked during drain");
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    print!("{}", report.render_table());

    // Compare against the previous artifact before overwriting it.
    let mut regressed = false;
    if let Ok(prev) = std::fs::read_to_string(&out_path) {
        match sparten_bench::json::Json::parse(&prev) {
            Ok(baseline) => {
                let regressions = report.compare_with_baseline(&baseline);
                for r in &regressions {
                    events::warn(
                        "bench.regression",
                        format!(
                            "regression: {} went {:.0} -> {:.0} ns/iter ({:.2}x, threshold {:.2}x)",
                            r.name, r.old_ns, r.new_ns, r.ratio, opts.threshold
                        ),
                    );
                }
                if regressions.is_empty() {
                    println!(
                        "no regressions past {:.2}x against baseline {out_path}",
                        opts.threshold
                    );
                } else {
                    regressed = true;
                }
            }
            Err(e) => events::warn(
                "bench.baseline_unparseable",
                format!("ignoring unparseable baseline {out_path}: {e}"),
            ),
        }
    }

    let mut body = report.to_json().pretty();
    body.push('\n');
    if let Err(e) = sparten_bench::atomic_write(&out_path, &body) {
        events::error("bench.write_failed", format!("cannot write {out_path}: {e}"));
        return ExitCode::FAILURE;
    }
    println!("benchmark report written to {out_path}");

    if flags.check_schema {
        let written = match std::fs::read_to_string(&out_path) {
            Ok(s) => s,
            Err(e) => {
                events::error(
                    "bench.readback_failed",
                    format!("cannot read back {out_path}: {e}"),
                );
                return ExitCode::FAILURE;
            }
        };
        let parsed = match sparten_bench::json::Json::parse(&written) {
            Ok(j) => j,
            Err(e) => {
                events::error(
                    "bench.artifact_invalid",
                    format!("{out_path} is not valid JSON: {e}"),
                );
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = sparten_bench::check_schema(&parsed) {
            events::error(
                "bench.schema_failed",
                format!("{out_path} fails schema check: {e}"),
            );
            return ExitCode::FAILURE;
        }
        println!("schema check passed ({})", sparten_bench::BENCH_SCHEMA);
    }

    if regressed && flags.enforce {
        events::error(
            "bench.regression_enforced",
            "perf regressions past the threshold (--enforce)",
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Audits (and with `--repair`, quarantines damage in) the results tree.
fn cmd_fsck(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("fsck", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let root = PathBuf::from(flags.results_dir.unwrap_or_else(|| "results".into()));
    let jobs = registry();
    let names: Vec<&str> = jobs.iter().map(|j| j.name()).collect();
    let report = match fsck::fsck(&root, &names, flags.repair) {
        Ok(r) => r,
        Err(e) => {
            events::error(
                "fsck.audit_failed",
                format!("cannot audit {}: {e}", root.display()),
            );
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if report.clean() {
        return ExitCode::SUCCESS;
    }
    if !flags.repair {
        if report.has_resumable() {
            events::info(
                "fsck.resumable",
                "note: a dangling journal is a resumable run — prefer \
                 `sparten-harness run --resume` over --repair",
            );
        }
        return ExitCode::FAILURE;
    }
    // Repaired: success unless some repair itself failed.
    let failed = report
        .findings
        .iter()
        .any(|f| matches!(f.action, fsck::Action::Failed(_)));
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Summarizes the `.txt` telemetry reports in the telemetry directory:
/// per job, the retained/dropped event counts, then per recorded scope the
/// Figure 10–12 cycle decomposition (work/stall counter totals) and the
/// single largest stall cause.
fn cmd_report(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("report", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let dir = flags
        .telemetry_dir
        .unwrap_or_else(|| "results/telemetry".into());
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            events::error(
                "report.dir_unreadable",
                format!("cannot read {dir}: {e} (run with --telemetry first)"),
            );
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("txt"))
        .filter(|p| {
            flags.filter.as_deref().is_none_or(|f| {
                p.file_stem()
                    .and_then(|s| s.to_str())
                    .is_some_and(|s| s.contains(f))
            })
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        events::error("report.no_match", format!("no telemetry reports match in {dir}"));
        return ExitCode::FAILURE;
    }

    if flags.json {
        return report_json(&paths);
    }

    println!("== Telemetry report ({dir}) ==");
    let mut ok = true;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                events::warn(
                    "report.file_unreadable",
                    format!("cannot read {}: {e}", path.display()),
                );
                ok = false;
                continue;
            }
        };
        let parsed = match sparten_telemetry::parse_report(&text) {
            Ok(p) => p,
            Err(e) => {
                events::warn(
                    "report.file_unparseable",
                    format!("{} does not parse: {e}", path.display()),
                );
                ok = false;
                continue;
            }
        };
        println!(
            "\n{}: {} events ({} dropped)",
            parsed.job, parsed.events, parsed.dropped
        );
        // Every scope that recorded work or stall cycles, in name order.
        let mut scopes: Vec<&str> = parsed
            .counters
            .keys()
            .filter_map(|name| {
                let (scope, rest) = name.split_once('/')?;
                (rest.starts_with("work.") || rest.starts_with("stall.")).then_some(scope)
            })
            .collect();
        scopes.dedup();
        if !scopes.is_empty() {
            println!(
                "  {:<22} {:>14} {:>14} {:>14} {:>14}  dominant stall",
                "scope", "nonzero", "zero", "intra", "inter"
            );
            for scope in scopes {
                let counter = |suffix: &str| {
                    parsed
                        .counters
                        .get(&format!("{scope}/{suffix}"))
                        .copied()
                        .unwrap_or(0)
                };
                let stall_prefix = format!("{scope}/stall.");
                let dominant = parsed
                    .counters
                    .iter()
                    .filter(|(n, v)| n.starts_with(&stall_prefix) && **v > 0)
                    .max_by_key(|(_, v)| **v)
                    .map(|(n, v)| format!("{} ({v})", &n[stall_prefix.len()..]))
                    .unwrap_or_else(|| "-".into());
                println!(
                    "  {:<22} {:>14} {:>14} {:>14} {:>14}  {dominant}",
                    scope,
                    counter("work.nonzero"),
                    counter("work.zero"),
                    parsed.counter_sum(&format!("{scope}/stall.intra.")),
                    parsed.counter_sum(&format!("{scope}/stall.inter.")),
                );
            }
        }
        // Distribution estimates from the power-of-two histogram buckets
        // (upper-bound interpolation; same engine as Histogram::quantile).
        if !parsed.histograms.is_empty() {
            println!(
                "  {:<34} {:>12} {:>12} {:>12}",
                "histogram", "p50", "p95", "p99"
            );
            for (name, (buckets, _sum)) in &parsed.histograms {
                let q = |q: f64| {
                    sparten_telemetry::bucket_quantile(buckets, q)
                        .map(|v| format!("{v:.0}"))
                        .unwrap_or_else(|| "-".into())
                };
                println!(
                    "  {:<34} {:>12} {:>12} {:>12}",
                    name,
                    q(0.50),
                    q(0.95),
                    q(0.99)
                );
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `report --json`: the parsed telemetry reports as one JSON array —
/// counters, gauges, and histograms (with p50/p95/p99 estimates) per job —
/// rendered by the in-repo JSON writer.
fn report_json(paths: &[PathBuf]) -> ExitCode {
    let mut jobs: Vec<Json> = Vec::with_capacity(paths.len());
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                events::error(
                    "report.file_unreadable",
                    format!("cannot read {}: {e}", path.display()),
                );
                return ExitCode::FAILURE;
            }
        };
        let parsed = match sparten_telemetry::parse_report(&text) {
            Ok(p) => p,
            Err(e) => {
                events::error(
                    "report.file_unparseable",
                    format!("{} does not parse: {e}", path.display()),
                );
                return ExitCode::FAILURE;
            }
        };
        let counters = Json::Obj(
            parsed
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            parsed
                .gauges
                .iter()
                .map(|(k, (hi, lo, last, n))| {
                    (
                        k.clone(),
                        Json::obj([
                            ("hi", Json::Float(*hi)),
                            ("lo", Json::Float(*lo)),
                            ("last", Json::Float(*last)),
                            ("n", Json::UInt(*n)),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = Json::Obj(
            parsed
                .histograms
                .iter()
                .map(|(k, (buckets, sum))| {
                    let n: u64 = buckets.iter().sum();
                    let mut fields = vec![
                        ("n".to_string(), Json::UInt(n)),
                        ("sum".to_string(), Json::UInt(*sum)),
                    ];
                    for (q, label) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
                        if let Some(v) = sparten_telemetry::bucket_quantile(buckets, q) {
                            fields.push((label.to_string(), Json::Float(v)));
                        }
                    }
                    // Sparse bucket map: index (log2 upper bound) -> count.
                    fields.push((
                        "buckets".to_string(),
                        Json::Obj(
                            buckets
                                .iter()
                                .enumerate()
                                .filter(|(_, c)| **c > 0)
                                .map(|(i, c)| (i.to_string(), Json::UInt(*c)))
                                .collect(),
                        ),
                    ));
                    (k.clone(), Json::Obj(fields))
                })
                .collect(),
        );
        jobs.push(Json::obj([
            ("job", Json::str(&parsed.job)),
            ("file", Json::str(path.display().to_string())),
            ("events", Json::UInt(parsed.events)),
            ("dropped", Json::UInt(parsed.dropped)),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ]));
    }
    // Guarded write: tolerate a reader that hangs up mid-stream.
    use std::io::Write;
    let _ = writeln!(std::io::stdout(), "{}", Json::Arr(jobs).pretty());
    ExitCode::SUCCESS
}

fn cmd_list(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("list", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    println!(
        "{:<28} {:<10} {:>6}  deps",
        "experiment", "kind", "points"
    );
    for e in registry() {
        if flags
            .filter
            .as_deref()
            .is_some_and(|f| !e.name().contains(f))
        {
            continue;
        }
        println!(
            "{:<28} {:<10} {:>6}  {}",
            e.name(),
            e.kind().label(),
            e.num_points(),
            if e.deps().is_empty() {
                "-".to_string()
            } else {
                e.deps().join(", ")
            },
        );
    }
    ExitCode::SUCCESS
}

/// Runs the multi-tenant simulation daemon until a SIGINT/SIGTERM drain.
///
/// The daemon wraps the registry, cache, executor, and journal in an
/// HTTP service (see `sparten-serve`): duplicate concurrent requests
/// coalesce onto one execution, fully cached jobs answer at memory
/// speed, and saturation sheds load with 429. A serve-session journal is
/// created at bind and sealed on a clean drain, so a `kill -9`'d daemon
/// leaves a dangling journal for `fsck` to flag — the same crash-only
/// contract as `run`.
fn cmd_serve(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("serve", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let cache_dir = PathBuf::from(flags.cache_dir.unwrap_or_else(|| "results/cache".into()));
    let journal_dir =
        PathBuf::from(flags.journal_dir.unwrap_or_else(|| "results/journal".into()));
    let exec_jobs = flags.jobs.unwrap_or_else(executor::default_jobs);
    let experiments = registry();

    // The serve-session journal pins the registry at bind time.
    let jobs: Vec<journal::JournalJob> = experiments
        .iter()
        .map(|e| journal::JournalJob {
            name: e.name().to_string(),
            fingerprint: e.fingerprint(),
            points: e.num_points(),
        })
        .collect();
    let run_id = format!("serve-{}", journal::generate_run_id());
    let registry_fp = journal::registry_fingerprint(&jobs);
    let start = journal::StartRecord {
        run_id: run_id.clone(),
        filter: None,
        force: false,
        telemetry: false,
        seed: sparten_harness::SEED,
        registry_fp: registry_fp.clone(),
        jobs,
        trace: None,
    };
    let mut session_journal = match journal::Journal::create(&journal_dir, &start) {
        Ok(j) => j,
        Err(e) => {
            events::error(
                "serve.journal_failed",
                format!("cannot journal in {}: {e}", journal_dir.display()),
            );
            return ExitCode::FAILURE;
        }
    };

    // Buffered event sink: requests are hot-path, so events ride the
    // in-memory ring and hit disk on drain (or via the panic hook).
    let events_dir = PathBuf::from(
        flags
            .events_dir
            .clone()
            .unwrap_or_else(|| "results/events".into()),
    );
    if let Err(e) = events::init_serve(&events_dir, &run_id) {
        events::warn(
            "events.init_failed",
            format!("cannot open event log in {}: {e}", events_dir.display()),
        );
    }

    // One process-wide telemetry session: the server records request/gate/
    // queue spans into it, and the backend routes every executor run's
    // point and chunk spans into the same session (same trace ids), so
    // `GET /trace` exports one coherent timeline.
    let telemetry = std::sync::Arc::new(sparten_telemetry::Telemetry::new());
    let backend = std::sync::Arc::new(
        sparten_harness::serve::HarnessBackend::new(
            experiments,
            &cache_dir,
            Some(journal_dir.clone()),
            !flags.no_artifacts,
            exec_jobs,
        )
        .with_trace_sink(std::sync::Arc::clone(&telemetry)),
    );
    let opts = sparten_serve::ServeOptions {
        addr: flags.addr.unwrap_or_else(|| "127.0.0.1:7070".into()),
        max_active: flags.max_active.unwrap_or(2),
        max_queued: flags.max_queue.unwrap_or(8),
        read_timeout: Duration::from_secs(10),
        drain_timeout: flags.drain_timeout.unwrap_or(Duration::from_secs(30)),
        // `--deadline-ms` sets the default per-request budget (requests
        // may still send `Deadline-Ms`, clamped to the server max).
        default_deadline: flags
            .deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_secs(120)),
        max_deadline: Duration::from_secs(600),
        // First SIGINT/SIGTERM drains, second aborts — same as `run`.
        shutdown: signal::install(),
        build: sparten_serve::BuildInfo {
            version: env!("CARGO_PKG_VERSION").to_string(),
            registry_fp: u64::from_str_radix(&registry_fp, 16).unwrap_or(0),
        },
    };
    let server = match sparten_serve::Server::bind(backend, telemetry, opts) {
        Ok(s) => s,
        Err(e) => {
            events::error("serve.bind_failed", format!("cannot bind: {e}"));
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            events::error(
                "serve.addr_failed",
                format!("cannot resolve bound address: {e}"),
            );
            return ExitCode::FAILURE;
        }
    };
    println!("serving on http://{addr} (run id {run_id}, {exec_jobs} workers per run)");
    println!(
        "endpoints: GET /healthz /metrics /trace /jobs /result?job=NAME; POST /run?job=NAME"
    );
    if let Some(path) = &flags.port_file {
        if let Err(e) = sparten_bench::atomic_write(path, &format!("{addr}\n")) {
            events::error("serve.port_file_failed", format!("cannot write {path}: {e}"));
            return ExitCode::FAILURE;
        }
    }
    events::emit(
        events::Level::Debug,
        "serve.listening",
        &format!("serving on http://{addr}"),
        None,
        &[("run_id", Json::str(&run_id))],
    );

    let report = server.serve();

    // Drained: journal the shutdown, seal, exit 75 like an interrupted run.
    if let Err(e) = session_journal.append(&journal::Record::Shutdown {
        reason: "signal".into(),
    }) {
        events::warn("serve.journal_write_failed", format!("journal write failed: {e}"));
    }
    let status = if report.clean() { "ok" } else { "degraded" };
    if let Err(e) = session_journal.seal(status) {
        events::warn("serve.journal_seal_failed", format!("journal seal failed: {e}"));
    }
    if report.clean() {
        println!("drained: {} session(s) served, none dropped", report.sessions_served);
    } else {
        events::info(
            "serve.drain_degraded",
            format!(
                "drained: {} session(s) served, {} still open at the drain deadline",
                report.sessions_served, report.abandoned
            ),
        );
    }
    events::emit(
        events::Level::Debug,
        "serve.drained",
        "serve session drained",
        None,
        &[
            ("sessions_served", Json::UInt(report.sessions_served as u64)),
            ("abandoned", Json::UInt(report.abandoned as u64)),
        ],
    );
    // The buffered ring only reaches disk here (or via the panic hook).
    events::flush();
    ExitCode::from(signal::DRAINED_EXIT_CODE)
}

/// Removes files matching `pred` directly under `dir`; missing dir = 0.
fn sweep_files(dir: &Path, pred: impl Fn(&str) -> bool) -> std::io::Result<usize> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut removed = 0;
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if pred(name) {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

fn cmd_clean(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("clean", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let results = PathBuf::from(flags.results_dir.unwrap_or_else(|| "results".into()));
    let cache_dir = flags
        .cache_dir
        .map(PathBuf::from)
        .unwrap_or_else(|| results.join("cache"));
    let journal_dir = flags
        .journal_dir
        .map(PathBuf::from)
        .unwrap_or_else(|| results.join("journal"));

    let counts = match Cache::new(&cache_dir).clean() {
        Ok(c) => c,
        Err(e) => {
            events::error(
                "clean.cache_failed",
                format!("cannot clean {}: {e}", cache_dir.display()),
            );
            return ExitCode::FAILURE;
        }
    };
    let journals = sweep_files(&journal_dir, |n| {
        n.ends_with(".jsonl") || n.ends_with(".tmp")
    });
    let journals = match journals {
        Ok(n) => n,
        Err(e) => {
            events::error(
                "clean.journal_failed",
                format!("cannot clean {}: {e}", journal_dir.display()),
            );
            return ExitCode::FAILURE;
        }
    };
    // Orphaned atomic-write temps directly under results/ and telemetry/.
    let mut tmp = counts.tmp;
    for dir in [results.clone(), results.join("telemetry")] {
        match sweep_files(&dir, |n| n.ends_with(".tmp")) {
            Ok(n) => tmp += n,
            Err(e) => {
                events::error(
                    "clean.tmp_failed",
                    format!("cannot clean {}: {e}", dir.display()),
                );
                return ExitCode::FAILURE;
            }
        }
    }
    // Files quarantined by `fsck --repair` are dead evidence once the
    // operator cleans: sweep them like any other residue.
    let quarantine_dir = results.join("quarantine");
    let quarantined = match sweep_files(&quarantine_dir, |_| true) {
        Ok(n) => {
            let _ = std::fs::remove_dir(&quarantine_dir); // rmdir only if now empty
            n
        }
        Err(e) => {
            events::error(
                "clean.quarantine_failed",
                format!("cannot clean {}: {e}", quarantine_dir.display()),
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "removed {} cache entries, {} journal(s), {} quarantined file(s), {} orphaned .tmp file(s)",
        counts.entries, journals, quarantined, tmp
    );
    ExitCode::SUCCESS
}

/// Reads a structured event log (JSONL) written by `run` or `serve`,
/// filtering by severity and trace id; `--follow` tails the file.
fn cmd_events(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("events", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let dir = PathBuf::from(flags.events_dir.unwrap_or_else(|| "results/events".into()));
    let path = match &flags.run_id {
        Some(id) => {
            let p = dir.join(format!("{id}.jsonl"));
            if !p.exists() {
                events::error(
                    "events.not_found",
                    format!("no event log for run id `{id}` in {}", dir.display()),
                );
                return ExitCode::FAILURE;
            }
            p
        }
        None => match journal::latest_journal(&dir) {
            Ok(Some(p)) => p,
            Ok(None) => {
                events::error(
                    "events.none",
                    format!(
                        "no event logs in {} (run with `run` or `serve` first)",
                        dir.display()
                    ),
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                events::error(
                    "events.scan_failed",
                    format!("cannot scan {}: {e}", dir.display()),
                );
                return ExitCode::FAILURE;
            }
        },
    };
    // Validated at flag-parse time; defaults keep everything.
    let min_level = flags
        .level
        .as_deref()
        .and_then(events::Level::parse)
        .unwrap_or(events::Level::Debug);
    let want_trace = flags
        .trace
        .as_deref()
        .and_then(TraceContext::parse_hex)
        .map(|id| format!("{id:016x}"));

    // Guarded writes: `events | grep -q …` closes the pipe after the
    // first match, and println! would panic on the resulting EPIPE.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut offset = 0usize;
    let mut lineno = 0usize;
    loop {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                events::error(
                    "events.read_failed",
                    format!("cannot read {}: {e}", path.display()),
                );
                return ExitCode::FAILURE;
            }
        };
        // Only consume complete lines so --follow never splits an event
        // racing with the writer's append.
        let complete = match text[offset..].rfind('\n') {
            Some(i) => offset + i + 1,
            None => offset,
        };
        for line in text[offset..complete].lines() {
            lineno += 1;
            if line.trim().is_empty() {
                continue;
            }
            let event = match Json::parse(line) {
                Ok(j) => j,
                Err(e) => {
                    events::error(
                        "events.malformed",
                        format!("{}:{lineno}: malformed event: {e}", path.display()),
                    );
                    return ExitCode::FAILURE;
                }
            };
            let level = event
                .get("level")
                .and_then(Json::as_str)
                .and_then(events::Level::parse)
                .unwrap_or(events::Level::Info);
            if level < min_level {
                continue;
            }
            if let Some(want) = &want_trace {
                if event.get("trace").and_then(Json::as_str) != Some(want.as_str()) {
                    continue;
                }
            }
            if writeln!(out, "{line}").is_err() {
                // Reader hung up (e.g. grep -q): a clean stop, not a failure.
                return ExitCode::SUCCESS;
            }
        }
        offset = complete;
        if !flags.follow {
            break;
        }
        // Piped stdout is block-buffered; a tail must not lag a screenful.
        let _ = out.flush();
        std::thread::sleep(Duration::from_millis(200));
    }
    ExitCode::SUCCESS
}

/// Validates Prometheus text exposition from stdin or `--file`: the check
/// the CI smoke pipes `GET /metrics` through.
fn cmd_promlint(args: &[String]) -> ExitCode {
    let flags = match parse_cmd_flags("promlint", args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let (text, source) = match &flags.file_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => (t, p.clone()),
            Err(e) => {
                events::error("promlint.read_failed", format!("cannot read {p}: {e}"));
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            use std::io::Read;
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                events::error("promlint.stdin_failed", format!("cannot read stdin: {e}"));
                return ExitCode::FAILURE;
            }
            (s, "<stdin>".to_string())
        }
    };
    match sparten_telemetry::validate_exposition(&text) {
        Ok(()) => {
            println!(
                "{source}: exposition OK ({} line(s))",
                text.lines().filter(|l| !l.is_empty()).count()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            events::error("promlint.invalid", format!("{source}: {e}"));
            ExitCode::FAILURE
        }
    }
}
