//! The fault-injection campaign: inject every planned fault, classify
//! what the stack did about it, and tally per-class coverage.
//!
//! One trial = one [`FaultSpec`] from `sparten::faults::campaign_plan`.
//! Each trial builds a small deterministic workload, injects its fault
//! through the layer the fault targets (tensor structures, the cycle
//! simulators, the functional engine's output collector, or a serialized
//! cache entry on disk), and classifies the outcome:
//!
//! * **detected** — a typed error ([`TensorError`], [`SimError`]) or a
//!   failed invariant surfaced;
//! * **masked** — the observable result is provably identical to the
//!   fault-free reference (the fault was absorbed, e.g. a straggler that
//!   only moves timing, or a drop index past the last write);
//! * **silently-wrong** — the result changed and nothing noticed: the
//!   failure mode the campaign exists to rule out;
//! * **crashed** — the trial panicked instead of returning an error.
//!
//! The whole campaign is a pure function of `(seed, trials_per_class)`:
//! same seed, same plan, same injections, byte-identical report.

use crate::cache::{Cache, Lookup};
use crate::PointPayload;
use sparten::core::balance::BalanceMode;
use sparten::core::engine::SparTenEngine;
use sparten::faults::{
    campaign_plan, CoverageReport, DropSpec, FaultClass, FaultOutcome, FaultSpec, UnitFault,
    UnitFaultSpec,
};
use sparten::nn::generate::{workload, Workload};
use sparten::nn::ConvShape;
use sparten::sim::sparten::{simulate_sparten, Sparsity};
use sparten::sim::{simulate_sparten_faulted, MaskModel, SimConfig};
use sparten::tensor::SparseTensor3;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The campaign's fixed workload seed: fault variability comes from each
/// trial's injection-site RNG, not from workload resampling.
const WORKLOAD_SEED: u64 = 77;

/// Runs a full campaign and returns the coverage report. Deterministic:
/// the report is a pure function of the arguments.
pub fn run_campaign(seed: u64, trials_per_class: u32) -> CoverageReport {
    let mut report = CoverageReport::new(seed);
    for spec in campaign_plan(seed, trials_per_class) {
        // A trial that panics is exactly the "crashed" outcome; the hook
        // noise is suppressed around the call so expected aborts don't
        // spam the campaign output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = catch_unwind(AssertUnwindSafe(|| run_trial(&spec)))
            .unwrap_or(FaultOutcome::Crashed);
        std::panic::set_hook(prev);
        report.record(spec.class, outcome);
    }
    report
}

/// The small layer every trial runs: big enough to exercise multiple
/// chunks, clusters, and output writes; small enough that a full campaign
/// stays under a second.
fn trial_workload() -> Workload {
    let shape = ConvShape::new(8, 6, 6, 3, 8, 1, 1);
    workload(&shape, 0.45, 0.4, WORKLOAD_SEED)
}

fn trial_config() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.accel.num_clusters = 2;
    cfg.accel.cluster.compute_units = 4;
    cfg
}

fn run_trial(spec: &FaultSpec) -> FaultOutcome {
    let mut rng = spec.rng();
    match spec.class {
        FaultClass::MaskBitFlip => {
            let w = trial_workload();
            let chunk_size = trial_config().accel.cluster.chunk_size;
            let clean = SparseTensor3::from_dense(&w.input, chunk_size);
            let mut faulty = clean.clone();
            let entries = faulty.directory().entries().len();
            let entry = rng.gen_range(entries as u64) as usize;
            let bit = rng.gen_range(chunk_size as u64) as usize;
            faulty.flip_mask_bit(entry, bit);
            classify_tensor(&clean, &faulty)
        }
        FaultClass::ValueCorruption => {
            let w = trial_workload();
            let chunk_size = trial_config().accel.cluster.chunk_size;
            let clean = SparseTensor3::from_dense(&w.input, chunk_size);
            if clean.nnz() == 0 {
                return FaultOutcome::Masked; // nothing to corrupt
            }
            let mut faulty = clean.clone();
            let index = rng.gen_range(clean.nnz() as u64) as usize;
            // Model both corruption shapes the format forbids: a cleared
            // word (0.0) and a scrambled exponent (NaN).
            let value = if rng.gen_bool() { 0.0 } else { f32::NAN };
            faulty.corrupt_value(index, value);
            classify_tensor(&clean, &faulty)
        }
        FaultClass::ValueTruncation => {
            let w = trial_workload();
            let chunk_size = trial_config().accel.cluster.chunk_size;
            let clean = SparseTensor3::from_dense(&w.input, chunk_size);
            if clean.nnz() == 0 {
                return FaultOutcome::Masked;
            }
            let mut faulty = clean.clone();
            let keep = rng.gen_range(clean.nnz() as u64) as usize;
            faulty.truncate_values(keep);
            classify_tensor(&clean, &faulty)
        }
        FaultClass::SlowUnit => {
            let w = trial_workload();
            let cfg = trial_config();
            let fault = UnitFaultSpec {
                cluster: rng.gen_range(cfg.accel.num_clusters as u64) as usize,
                unit: rng.gen_range(cfg.accel.cluster.compute_units as u64) as usize,
                fault: UnitFault::Slow(2 + rng.gen_range(6)),
            };
            let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
            let clean = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::None);
            match simulate_sparten_faulted(
                &w,
                &m,
                &cfg,
                Sparsity::TwoSided,
                BalanceMode::None,
                &fault,
                None,
            ) {
                Err(_) => FaultOutcome::Detected,
                // A straggler must only stretch latency: identical work
                // accounting and no-faster cycles prove absorption.
                Ok(r)
                    if r.breakdown.nonzero == clean.breakdown.nonzero
                        && r.breakdown.zero == clean.breakdown.zero
                        && r.compute_cycles >= clean.compute_cycles
                        && r.accounting_holds() =>
                {
                    FaultOutcome::Masked
                }
                Ok(_) => FaultOutcome::SilentlyWrong,
            }
        }
        FaultClass::StuckUnit => {
            let w = trial_workload();
            let cfg = trial_config();
            let fault = UnitFaultSpec {
                cluster: rng.gen_range(cfg.accel.num_clusters as u64) as usize,
                unit: rng.gen_range(cfg.accel.cluster.compute_units as u64) as usize,
                fault: UnitFault::Stuck,
            };
            let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
            let clean = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::None);
            match simulate_sparten_faulted(
                &w,
                &m,
                &cfg,
                Sparsity::TwoSided,
                BalanceMode::None,
                &fault,
                None,
            ) {
                Err(_) => FaultOutcome::Detected,
                // Only a victim that never held work can go unnoticed, and
                // then the result must equal the clean run exactly.
                Ok(r)
                    if r.breakdown == clean.breakdown
                        && r.compute_cycles == clean.compute_cycles =>
                {
                    FaultOutcome::Masked
                }
                Ok(_) => FaultOutcome::SilentlyWrong,
            }
        }
        FaultClass::DroppedOutput => {
            let w = trial_workload();
            let cfg = trial_config();
            let chunk_size = cfg.accel.cluster.chunk_size;
            let engine = SparTenEngine::new(cfg.accel);
            let clean = engine.run_layer(&w, BalanceMode::None, true);
            let total: u64 = clean.trace.clusters.iter().map(|c| c.output_nnz).sum();
            // Mostly target real writes; occasionally aim past the end to
            // exercise the provably-absorbed no-op drop.
            let nth = rng.gen_range(total + 2);
            let faulted = engine.run_layer_faulted(
                &w,
                BalanceMode::None,
                true,
                &DropSpec {
                    nth_nonzero_write: nth,
                },
            );
            match faulted.verify_output_accounting(chunk_size) {
                Err(_) => FaultOutcome::Detected,
                Ok(()) if faulted.produced == clean.produced => FaultOutcome::Masked,
                Ok(()) => FaultOutcome::SilentlyWrong,
            }
        }
        FaultClass::CacheCorruption => with_scratch_cache(spec, |cache, payload, key| {
            let path = cache.entry_file("trial", 0, key);
            let mut bytes = std::fs::read(&path).expect("entry written");
            let byte = rng.gen_range(bytes.len() as u64) as usize;
            bytes[byte] ^= 1 << rng.gen_range(8);
            std::fs::write(&path, &bytes).expect("rewrite entry");
            classify_cache(cache.lookup("trial", 0, key), payload)
        }),
        FaultClass::CacheTruncation => with_scratch_cache(spec, |cache, payload, key| {
            let path = cache.entry_file("trial", 0, key);
            let bytes = std::fs::read(&path).expect("entry written");
            let keep = rng.gen_range(bytes.len() as u64) as usize;
            std::fs::write(&path, &bytes[..keep]).expect("truncate entry");
            classify_cache(cache.lookup("trial", 0, key), payload)
        }),
    }
}

/// Classifies a perturbed tensor against its clean twin: `validate()` is
/// the detection point; an undetected tensor that still decodes to the
/// clean dense image is provably absorbed.
fn classify_tensor(clean: &SparseTensor3, faulty: &SparseTensor3) -> FaultOutcome {
    if faulty.validate().is_err() {
        return FaultOutcome::Detected;
    }
    if faulty.to_dense() == clean.to_dense() {
        FaultOutcome::Masked
    } else {
        FaultOutcome::SilentlyWrong
    }
}

/// Stores one deterministic entry in a scratch cache, lets the trial
/// damage the entry file, and cleans the scratch directory afterwards.
fn with_scratch_cache(
    spec: &FaultSpec,
    trial: impl FnOnce(&Cache, &PointPayload, u64) -> FaultOutcome,
) -> FaultOutcome {
    let dir = std::env::temp_dir().join(format!(
        "sparten-fault-campaign-{}-{:016x}",
        std::process::id(),
        spec.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Cache::new(dir.clone());
    let payload = PointPayload::Record(format!(
        "scheme=SparTen compute={} memory=7\n",
        spec.seed
    ));
    let key = Cache::key("trial", "campaign-fp", spec.seed, 0);
    cache
        .store("trial", 0, key, &payload)
        .expect("scratch cache store");
    let outcome = trial(&cache, &payload, key);
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

/// Classifies a post-damage lookup: anything the cache refuses to serve
/// is detected; serving bytes that still equal the stored payload is
/// absorbed; serving anything else is silent corruption.
fn classify_cache(lookup: Lookup, original: &PointPayload) -> FaultOutcome {
    match lookup {
        Lookup::Malformed | Lookup::Miss => FaultOutcome::Detected,
        Lookup::Hit(p) if p == *original => FaultOutcome::Masked,
        Lookup::Hit(_) => FaultOutcome::SilentlyWrong,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_and_clean() {
        let a = run_campaign(1, 3);
        let b = run_campaign(1, 3);
        assert_eq!(a.render(), b.render(), "same seed, same report");
        assert_eq!(a.trials(), 8 * 3);
        assert_eq!(a.silently_wrong(), 0, "no fault may go silently wrong");
        assert_eq!(a.crashed(), 0, "every fault surfaces as a typed error");
    }

    #[test]
    fn different_seeds_change_injection_sites_not_coverage_guarantees() {
        let r = run_campaign(99, 2);
        assert_eq!(r.silently_wrong(), 0);
        assert_eq!(r.crashed(), 0);
        assert_eq!(r.trials(), 8 * 2);
    }

    #[test]
    fn structural_faults_are_always_detected() {
        // Mask flips and value truncation break a structural invariant by
        // construction — absorption is impossible, so the tally must be
        // 100% detected for these classes.
        let r = run_campaign(11, 4);
        for class in [FaultClass::MaskBitFlip, FaultClass::ValueTruncation] {
            let cov = r.class(class);
            assert_eq!(cov.detected, 4, "{}: {:?}", class.label(), cov);
        }
    }
}
