//! Content-addressed on-disk result cache.
//!
//! Every experiment *point* (one layer of a per-layer figure, or one whole
//! single-shot experiment) is cached under a key derived from everything
//! that determines its result: the experiment name, its configuration
//! fingerprint, the global workload seed, the point index, and the cache
//! format version. The key is in the file *name*, so a fingerprint change
//! (different network, schemes, or simulator config) makes old entries
//! unreachable rather than wrong; `clean` garbage-collects them.
//!
//! Entries are plain text with length-prefixed sections so cached payloads
//! can contain arbitrary lines, and carry a whole-body FNV-1a checksum in
//! the header so bit-level corruption or truncation *anywhere* in the entry
//! is caught on read. Any malformed entry — truncated file, bad header,
//! checksum mismatch, stale format version — is treated as a cache miss,
//! never an error: the point is simply recomputed and the entry rewritten.

use crate::PointPayload;
use sparten_bench::vfs::{atomic_write_with, RealFs, Vfs};
use sparten_bench::Capture;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bump to invalidate every existing cache entry (e.g. when the PRNG, the
/// record format, or simulator semantics change).
pub const CACHE_FORMAT_VERSION: u32 = 2;

const MAGIC: &str = "sparten-cache v2";

/// FNV-1a 64-bit over `\x1f`-separated parts: stable, dependency-free, and
/// good enough for cache addressing (collisions are survivable — the entry
/// header repeats the key and the payload is validated by the consumer).
pub fn fnv1a_parts(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for &b in p.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The classified outcome of one cache [`Cache::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The entry existed and parsed; here is its payload.
    Hit(PointPayload),
    /// No entry file exists for this key.
    Miss,
    /// An entry file exists but is unusable (truncated, corrupt, wrong
    /// key, or a stale format); it will be recomputed and overwritten.
    Malformed,
}

/// The on-disk cache at a directory (conventionally `results/cache/`).
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
}

impl Cache {
    /// Opens (without creating) a cache at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Cache::with_vfs(dir, Arc::new(RealFs))
    }

    /// [`new`](Cache::new) through an explicit [`Vfs`] (fault injection).
    pub fn with_vfs(dir: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> Self {
        Cache {
            dir: dir.into(),
            vfs,
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content key of one experiment point.
    pub fn key(name: &str, fingerprint: &str, seed: u64, point: usize) -> u64 {
        fnv1a_parts(&[
            &CACHE_FORMAT_VERSION.to_string(),
            name,
            fingerprint,
            &seed.to_string(),
            &point.to_string(),
        ])
    }

    fn entry_path(&self, name: &str, point: usize, key: u64) -> PathBuf {
        self.dir.join(format!("{name}.p{point:03}.{key:016x}.cache"))
    }

    /// The on-disk path an entry for `key` would occupy. Exposed so the
    /// fault-injection campaign can corrupt or truncate real entry files
    /// and assert the cache classifies them as [`Lookup::Malformed`].
    pub fn entry_file(&self, name: &str, point: usize, key: u64) -> PathBuf {
        self.entry_path(name, point, key)
    }

    /// Loads the payload for `key`, or `None` on miss or malformed entry.
    pub fn load(&self, name: &str, point: usize, key: u64) -> Option<PointPayload> {
        match self.lookup(name, point, key) {
            Lookup::Hit(payload) => Some(payload),
            Lookup::Miss | Lookup::Malformed => None,
        }
    }

    /// [`load`](Self::load) with the outcome classified: a missing entry
    /// file is a [`Lookup::Miss`], while a file that exists but cannot be
    /// parsed (truncated, wrong key, stale format) is [`Lookup::Malformed`].
    /// Both are recomputed identically; the harness counts them separately
    /// so a corrupted or stale cache is visible in the run summary instead
    /// of silently degrading hit rates.
    pub fn lookup(&self, name: &str, point: usize, key: u64) -> Lookup {
        let bytes = match self.vfs.read(&self.entry_path(name, point, key)) {
            Ok(b) => b,
            Err(_) => return Lookup::Miss,
        };
        let Ok(text) = String::from_utf8(bytes) else {
            return Lookup::Malformed;
        };
        match parse_entry(&text, key) {
            Some(payload) => Lookup::Hit(payload),
            None => Lookup::Malformed,
        }
    }

    /// Stores `payload` under `key`, creating the cache directory if
    /// needed. Interrupted writes cannot corrupt a warm cache: the entry
    /// goes through [`sparten_bench::atomic_write`] (temp sibling + fsync +
    /// rename), so a kill leaves either the old entry, the new entry, or a
    /// sweepable `*.tmp` — never a torn file.
    pub fn store(
        &self,
        name: &str,
        point: usize,
        key: u64,
        payload: &PointPayload,
    ) -> io::Result<()> {
        let path = self.entry_path(name, point, key);
        atomic_write_with(&*self.vfs, path, &serialize_entry(key, payload))
    }

    /// Removes orphaned `*.tmp` files left behind by interrupted
    /// [`store`](Self::store) calls; returns how many were swept. Run at
    /// cache-open time so a crashed writer never accumulates junk. Missing
    /// directory counts as already clean.
    pub fn sweep_tmp(&self) -> io::Result<usize> {
        self.sweep_tmp_older_than(std::time::Duration::ZERO)
    }

    /// Like [`sweep_tmp`](Self::sweep_tmp), but only removes temp files
    /// whose mtime is at least `min_age` old. The executor sweeps with a
    /// grace period because the serve daemon runs several executors over
    /// one shared cache directory: a crashed writer's orphan is minutes
    /// old, while a *live* sibling's in-flight atomic write is
    /// milliseconds old — sweeping it would fail the sibling's rename.
    pub fn sweep_tmp_older_than(&self, min_age: std::time::Duration) -> io::Result<usize> {
        let mut swept = 0;
        let entries = match self.vfs.read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let now = std::time::SystemTime::now();
        for entry in entries {
            let path = entry.path;
            if path.extension().and_then(|e| e.to_str()) != Some("tmp") {
                continue;
            }
            if !min_age.is_zero() {
                let age = self
                    .vfs
                    .modified(&path)
                    .ok()
                    .and_then(|mtime| now.duration_since(mtime).ok());
                // Unreadable metadata or a future mtime: leave the file
                // for a later sweep rather than risk a live write.
                if age.is_none_or(|a| a < min_age) {
                    continue;
                }
            }
            match self.vfs.remove_file(&path) {
                Ok(()) => swept += 1,
                // A sibling's rename can complete (or its own sweep win)
                // between readdir and unlink; already-gone is swept.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(swept)
    }

    /// Removes every cache entry (and stray temp file); returns per-category
    /// deletion counts. Missing directory counts as already clean.
    pub fn clean(&self) -> io::Result<CleanCounts> {
        let mut counts = CleanCounts::default();
        let entries = match self.vfs.read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(counts),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry.path;
            let bucket = match path.extension().and_then(|e| e.to_str()) {
                Some("cache") => &mut counts.entries,
                Some("tmp") => &mut counts.tmp,
                _ => continue,
            };
            match self.vfs.remove_file(&path) {
                Ok(()) => *bucket += 1,
                // A concurrent clean (or a sweeping sibling) can win the
                // race between readdir and unlink; already-gone counts as
                // cleaned by someone, not an error mid-sweep.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(counts)
    }
}

/// What [`Cache::clean`] deleted, by category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanCounts {
    /// Completed `*.cache` entries.
    pub entries: usize,
    /// Orphaned `*.tmp` files from interrupted writers.
    pub tmp: usize,
}

impl CleanCounts {
    /// Total files removed.
    pub fn total(&self) -> usize {
        self.entries + self.tmp
    }
}

/// Splits a cache entry file name (`<job>.p<point>.<key:016x>.cache`) into
/// its components. Returns `None` for names the cache never produces —
/// `fsck` treats those as foreign files, not corrupt entries.
pub fn parse_entry_filename(file_name: &str) -> Option<(&str, usize, u64)> {
    let stem = file_name.strip_suffix(".cache")?;
    let (rest, key_hex) = stem.rsplit_once('.')?;
    if key_hex.len() != 16 {
        return None;
    }
    let key = u64::from_str_radix(key_hex, 16).ok()?;
    let (name, point_part) = rest.rsplit_once('.')?;
    let point: usize = point_part.strip_prefix('p')?.parse().ok()?;
    Some((name, point, key))
}

/// Whether `text` is a well-formed entry for `expect_key`: magic, key, and
/// whole-body checksum all verify and the payload parses. This is the same
/// judgment [`Cache::lookup`] makes, exposed so `fsck` can audit entry
/// files in place.
pub fn verify_entry_text(text: &str, expect_key: u64) -> bool {
    parse_entry(text, expect_key).is_some()
}

/// Serializes a payload into the length-prefixed body format shared by
/// cache entries and the write-ahead run journal.
pub fn serialize_payload(payload: &PointPayload) -> String {
    let mut body = String::new();
    match payload {
        PointPayload::Record(blob) => {
            body.push_str(&format!("kind=record\nlen={}\n", blob.len()));
            body.push_str(blob);
        }
        PointPayload::Capture(c) => {
            body.push_str(&format!("kind=capture\ntext={}\n", c.text.len()));
            body.push_str(&c.text);
            body.push_str(&format!("artifacts={}\n", c.artifacts.len()));
            for (path, contents) in &c.artifacts {
                body.push_str(&format!("path={path}\nlen={}\n", contents.len()));
                body.push_str(contents);
                body.push('\n');
            }
        }
    }
    body
}

/// Parses a [`serialize_payload`] body back. The whole text must be
/// consumed — trailing bytes mean truncated-then-glued data, not a payload.
pub fn parse_payload(text: &str) -> Option<PointPayload> {
    let mut c = Cursor { rest: text };
    let payload = parse_payload_at(&mut c)?;
    c.rest.is_empty().then_some(payload)
}

fn serialize_entry(key: u64, payload: &PointPayload) -> String {
    let body = serialize_payload(payload);
    // The checksum covers the whole body (everything after the `sum=`
    // line), so a flipped bit or lost tail anywhere in the entry is caught
    // at parse time rather than surfacing as a wrong cached result.
    let sum = fnv1a_parts(&[&body]);
    format!("{MAGIC}\nkey={key:016x}\nsum={sum:016x}\n{body}")
}

/// A tiny cursor over the entry text, reading `\n`-terminated header lines
/// and exact-length payload sections (lengths are in bytes).
struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn line(&mut self) -> Option<&'a str> {
        let nl = self.rest.find('\n')?;
        let (line, rest) = self.rest.split_at(nl);
        self.rest = &rest[1..];
        Some(line)
    }

    fn take(&mut self, n: usize) -> Option<&'a str> {
        if !self.rest.is_char_boundary(n) || n > self.rest.len() {
            return None;
        }
        let (chunk, rest) = self.rest.split_at(n);
        self.rest = rest;
        Some(chunk)
    }

    fn field(&mut self, key: &str) -> Option<&'a str> {
        self.line()?.strip_prefix(key)
    }
}

fn parse_entry(text: &str, expect_key: u64) -> Option<PointPayload> {
    let mut c = Cursor { rest: text };
    if c.line()? != MAGIC {
        return None;
    }
    let key = u64::from_str_radix(c.field("key=")?, 16).ok()?;
    if key != expect_key {
        return None;
    }
    let sum = u64::from_str_radix(c.field("sum=")?, 16).ok()?;
    if fnv1a_parts(&[c.rest]) != sum {
        return None;
    }
    parse_payload_at(&mut c)
}

fn parse_payload_at(c: &mut Cursor<'_>) -> Option<PointPayload> {
    match c.field("kind=")? {
        "record" => {
            let len: usize = c.field("len=")?.parse().ok()?;
            let blob = c.take(len)?;
            Some(PointPayload::Record(blob.to_string()))
        }
        "capture" => {
            let text_len: usize = c.field("text=")?.parse().ok()?;
            let body = c.take(text_len)?.to_string();
            let n_artifacts: usize = c.field("artifacts=")?.parse().ok()?;
            let mut artifacts = Vec::with_capacity(n_artifacts);
            for _ in 0..n_artifacts {
                let path = c.field("path=")?.to_string();
                let len: usize = c.field("len=")?.parse().ok()?;
                let contents = c.take(len)?.to_string();
                if c.take(1)? != "\n" {
                    return None;
                }
                artifacts.push((path, contents));
            }
            Some(PointPayload::Capture(Capture {
                text: body,
                artifacts,
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_cache(tag: &str) -> Cache {
        let dir = std::env::temp_dir().join(format!("sparten-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Cache::new(dir)
    }

    #[test]
    fn record_payloads_roundtrip() {
        let cache = tmp_cache("record");
        let key = Cache::key("exp", "fp", 2019, 0);
        let payload = PointPayload::Record("scheme=Dense compute=1\nline two\n".into());
        cache.store("exp", 0, key, &payload).unwrap();
        match cache.load("exp", 0, key) {
            Some(PointPayload::Record(blob)) => {
                assert_eq!(blob, "scheme=Dense compute=1\nline two\n");
            }
            other => panic!("bad load: {other:?}"),
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn capture_payloads_roundtrip_with_artifacts() {
        let cache = tmp_cache("capture");
        let key = Cache::key("exp", "fp", 2019, 0);
        let payload = PointPayload::Capture(Capture {
            text: "a table\nwith\nlen=7 traps\n".into(),
            artifacts: vec![
                ("results/a.json".into(), "{\n  \"x\": 1\n}".into()),
                ("results/b.json".into(), String::new()),
            ],
        });
        cache.store("exp", 0, key, &payload).unwrap();
        let back = cache.load("exp", 0, key).expect("hit");
        match (&payload, &back) {
            (PointPayload::Capture(a), PointPayload::Capture(b)) => assert_eq!(a, b),
            _ => panic!("kind changed"),
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_depends_on_every_component() {
        let base = Cache::key("exp", "fp", 2019, 0);
        assert_ne!(base, Cache::key("exp2", "fp", 2019, 0));
        assert_ne!(base, Cache::key("exp", "fp2", 2019, 0));
        assert_ne!(base, Cache::key("exp", "fp", 2020, 0));
        assert_ne!(base, Cache::key("exp", "fp", 2019, 1));
    }

    #[test]
    fn malformed_entries_are_misses() {
        let cache = tmp_cache("malformed");
        fs::create_dir_all(cache.dir()).unwrap();
        let key = Cache::key("exp", "fp", 2019, 0);
        let path = cache.dir().join(format!("exp.p000.{key:016x}.cache"));

        let sum_of = |body: &str| fnv1a_parts(&[body]);
        let truncated_body = "kind=record\nlen=999\nshort";
        let weird_body = "kind=weird\n";
        for bad in [
            "".to_string(),
            "garbage".to_string(),
            "sparten-cache v1\nkey=0000000000000000\nkind=record\nlen=4\nabcd".into(), // stale format
            format!("{MAGIC}\nkey=0000000000000000\nsum=0\nkind=record\nlen=4\nabcd"), // wrong key
            format!("{MAGIC}\nkey={key:016x}\nkind=record\nlen=4\nabcd"), // no checksum line
            format!(
                "{MAGIC}\nkey={key:016x}\nsum={:016x}\n{truncated_body}",
                sum_of(truncated_body)
            ),
            format!(
                "{MAGIC}\nkey={key:016x}\nsum={:016x}\n{weird_body}",
                sum_of(weird_body)
            ),
        ] {
            fs::write(&path, &bad).unwrap();
            assert!(cache.load("exp", 0, key).is_none(), "accepted: {bad:?}");
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn checksum_catches_corruption_and_truncation() {
        let cache = tmp_cache("checksum");
        let key = Cache::key("exp", "fp", 2019, 0);
        let payload = PointPayload::Record("scheme=Dense compute=1234\n".into());
        cache.store("exp", 0, key, &payload).unwrap();
        let path = cache.entry_file("exp", 0, key);
        let pristine = fs::read_to_string(&path).unwrap();

        // Flip one payload byte: lengths still parse, checksum must not.
        let corrupted = pristine.replace("compute=1234", "compute=1235");
        assert_ne!(corrupted, pristine);
        fs::write(&path, &corrupted).unwrap();
        assert_eq!(cache.lookup("exp", 0, key), Lookup::Malformed);

        // Drop the tail of the file.
        fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
        assert_eq!(cache.lookup("exp", 0, key), Lookup::Malformed);

        // The pristine bytes still parse.
        fs::write(&path, &pristine).unwrap();
        assert_eq!(cache.lookup("exp", 0, key), Lookup::Hit(payload));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn sweep_tmp_removes_only_orphaned_temp_files() {
        let cache = tmp_cache("sweep");
        assert_eq!(cache.sweep_tmp().unwrap(), 0); // missing dir is clean
        let key = Cache::key("exp", "fp", 2019, 0);
        cache
            .store("exp", 0, key, &PointPayload::Record("x\n".into()))
            .unwrap();
        fs::write(cache.dir().join("exp.p001.dead.tmp"), "partial").unwrap();
        fs::write(cache.dir().join("other.tmp"), "").unwrap();
        assert_eq!(cache.sweep_tmp().unwrap(), 2);
        assert_eq!(cache.sweep_tmp().unwrap(), 0);
        assert!(cache.load("exp", 0, key).is_some(), "entries survive sweep");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn lookup_classifies_miss_hit_and_malformed() {
        let cache = tmp_cache("classify");
        let key = Cache::key("exp", "fp", 2019, 0);
        assert_eq!(cache.lookup("exp", 0, key), Lookup::Miss);

        let payload = PointPayload::Record("r\n".into());
        cache.store("exp", 0, key, &payload).unwrap();
        assert_eq!(cache.lookup("exp", 0, key), Lookup::Hit(payload));

        let path = cache.dir().join(format!("exp.p000.{key:016x}.cache"));
        fs::write(&path, "garbage").unwrap();
        assert_eq!(cache.lookup("exp", 0, key), Lookup::Malformed);
        fs::write(&path, [0xff, 0xfe]).unwrap(); // not UTF-8
        assert_eq!(cache.lookup("exp", 0, key), Lookup::Malformed);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn clean_removes_entries_and_tolerates_missing_dir() {
        let cache = tmp_cache("clean");
        assert_eq!(cache.clean().unwrap().total(), 0);
        let key = Cache::key("exp", "fp", 2019, 0);
        cache
            .store("exp", 0, key, &PointPayload::Record("x\n".into()))
            .unwrap();
        fs::write(cache.dir().join("stray.tmp"), "partial").unwrap();
        let counts = cache.clean().unwrap();
        assert_eq!(counts, CleanCounts { entries: 1, tmp: 1 });
        assert!(cache.load("exp", 0, key).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    /// A [`Vfs`] whose `read_dir` reports phantom entries that no longer
    /// exist by unlink time — the readdir/remove race a concurrent clean
    /// or sweeping sibling produces.
    #[derive(Debug)]
    struct PhantomEntryFs;

    impl Vfs for PhantomEntryFs {
        fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            RealFs.create_dir_all(path)
        }

        fn create(&self, path: &Path) -> io::Result<Box<dyn sparten_bench::vfs::VfsFile>> {
            RealFs.create(path)
        }

        fn open_append(
            &self,
            path: &Path,
            mode: sparten_bench::vfs::Append,
        ) -> io::Result<Box<dyn sparten_bench::vfs::VfsFile>> {
            RealFs.open_append(path, mode)
        }

        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            RealFs.read(path)
        }

        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            RealFs.rename(from, to)
        }

        fn remove_file(&self, path: &Path) -> io::Result<()> {
            RealFs.remove_file(path)
        }

        fn read_dir(&self, path: &Path) -> io::Result<Vec<sparten_bench::vfs::VfsDirEntry>> {
            let mut entries = RealFs.read_dir(path)?;
            for phantom in ["vanished.p000.0000000000000000.cache", "vanished.tmp"] {
                entries.push(sparten_bench::vfs::VfsDirEntry {
                    path: path.join(phantom),
                    is_file: true,
                });
            }
            Ok(entries)
        }

        fn modified(&self, path: &Path) -> io::Result<std::time::SystemTime> {
            RealFs.modified(path)
        }

        fn sync_dir(&self, path: &Path) -> io::Result<()> {
            RealFs.sync_dir(path)
        }
    }

    #[test]
    fn clean_and_sweep_tolerate_concurrently_deleted_entries() {
        let base = tmp_cache("race");
        let cache = Cache::with_vfs(base.dir(), Arc::new(PhantomEntryFs));
        let key = Cache::key("exp", "fp", 2019, 0);
        cache
            .store("exp", 0, key, &PointPayload::Record("x\n".into()))
            .unwrap();
        fs::write(cache.dir().join("stray.tmp"), "partial").unwrap();
        // The phantom .tmp vanishes between readdir and unlink; the sweep
        // must skip it, not error out mid-sweep.
        assert_eq!(cache.sweep_tmp().unwrap(), 1);
        // Same for clean, for both entry and temp categories.
        let counts = cache.clean().unwrap();
        assert_eq!(counts, CleanCounts { entries: 1, tmp: 0 });
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn entry_filenames_parse_back_to_their_components() {
        let cache = tmp_cache("filename");
        let key = Cache::key("fig7_alexnet_speedup", "fp", 2019, 3);
        let path = cache.entry_file("fig7_alexnet_speedup", 3, key);
        let file_name = path.file_name().unwrap().to_str().unwrap();
        assert_eq!(
            parse_entry_filename(file_name),
            Some(("fig7_alexnet_speedup", 3, key))
        );
        assert_eq!(parse_entry_filename("notacache.txt"), None);
        assert_eq!(parse_entry_filename("x.p000.zz.cache"), None);
    }

    #[test]
    fn payloads_roundtrip_outside_the_cache() {
        for payload in [
            PointPayload::Record("r1\nr2\n".into()),
            PointPayload::Capture(Capture {
                text: "body\n".into(),
                artifacts: vec![("results/x.json".into(), "[]".into())],
            }),
        ] {
            let body = serialize_payload(&payload);
            assert_eq!(parse_payload(&body), Some(payload.clone()));
            // Trailing garbage is rejected, not silently ignored.
            assert_eq!(parse_payload(&format!("{body}junk")), None);
        }
    }
}
