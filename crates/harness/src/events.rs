//! Structured, leveled wide-event log for the harness.
//!
//! Every diagnostic the harness used to print to stderr is a typed event: one
//! compact JSON object per line carrying a monotonic sequence number, a
//! microsecond timestamp, a severity, a machine-readable kind, the
//! human-readable message, and — when the emitting code runs under a
//! trace context — the request/run trace and span ids. Events flow into
//! one process-wide sink that:
//!
//! * **mirrors to stderr** with the historical prefixes (`error: …`,
//!   `warning: …`, plain text for notices), so operators and the verify
//!   smokes see exactly what they always saw;
//! * keeps a **bounded in-memory ring** (oldest dropped, drops counted —
//!   the same never-silent contract as the telemetry recorder);
//! * optionally appends to `results/events/<run-id>.jsonl` —
//!   **write-through** for `harness run` (each event is durable the
//!   moment it happens, matching the journal's crash-only posture) and
//!   **buffered** for `harness serve` (flushed on drain and from a
//!   chained panic hook, so the hot request path never waits on disk).
//!
//! The sink works before any `init_*` call: events mirror to stderr and
//! fill the ring, nothing is written to disk. That lets CLI parse errors
//! route through the same API as deep executor diagnostics.
//!
//! `harness events` reads the files back, filtering by level and trace.

use sparten_bench::json::Json;
use sparten_bench::vfs::{Append, RealFs, Vfs, VfsFile};
use sparten_telemetry::TraceContext;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default bound on the in-memory ring.
pub const DEFAULT_RING_CAP: usize = 4096;

/// Event severity, ordered from chattiest to most serious.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Lifecycle breadcrumbs (run started, point computed). Not mirrored
    /// to stderr.
    Debug,
    /// Operator notices; mirrored to stderr verbatim.
    Info,
    /// Recoverable problems; mirrored as `warning: …`.
    Warn,
    /// Failures; mirrored as `error: …`.
    Error,
}

impl Level {
    /// Stable lowercase label used in the JSONL `level` field.
    pub fn label(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a label back (for `events --level`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// How the sink persists lines to its file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Persistence {
    /// No file; ring + stderr only (the pre-init default).
    None,
    /// Append and flush each line as it is emitted (`harness run`).
    WriteThrough,
    /// Hold lines in the ring until [`Sink::flush`] (`harness serve`).
    Buffered,
}

struct Inner {
    seq: u64,
    /// Unflushed (buffered mode) or most recent (otherwise) lines.
    ring: VecDeque<String>,
    cap: usize,
    /// Lines evicted from the ring before reaching disk.
    dropped: u64,
    persistence: Persistence,
    path: Option<PathBuf>,
    file: Option<Box<dyn VfsFile>>,
    /// Bytes known to form whole lines in the file; a torn event write
    /// rolls back to this so the JSONL stays parseable.
    file_len: u64,
    /// Lines that should have been persisted but were not because the
    /// file write failed (ENOSPC, dead disk): the sink degrades to the
    /// in-memory ring rather than panicking or aborting the run.
    disk_dropped: u64,
    mirror: bool,
}

impl fmt::Debug for Inner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inner")
            .field("seq", &self.seq)
            .field("ring", &self.ring.len())
            .field("dropped", &self.dropped)
            .field("persistence", &self.persistence)
            .field("path", &self.path)
            .field("disk_dropped", &self.disk_dropped)
            .finish_non_exhaustive()
    }
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            seq: 0,
            ring: VecDeque::new(),
            cap: DEFAULT_RING_CAP,
            dropped: 0,
            persistence: Persistence::None,
            path: None,
            file: None,
            file_len: 0,
            disk_dropped: 0,
            mirror: true,
        }
    }
}

/// A structured event sink. Most callers use the process-wide instance
/// via the module-level functions; tests construct their own.
#[derive(Debug, Default)]
pub struct Sink {
    inner: Mutex<Inner>,
}

/// Degrades a sink whose event file stopped accepting writes: best-effort
/// rolls the file back to the last whole line, closes it, and warns once
/// on stderr. Subsequent events stay in the ring and are counted in
/// [`Sink::disk_dropped`] — the log gets worse, the run never dies.
fn degrade_to_ring(inner: &mut Inner, cause: &std::io::Error) {
    if let Some(mut file) = inner.file.take() {
        let _ = file.truncate(inner.file_len);
    }
    if inner.mirror {
        let path = inner
            .path
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_default();
        let _ = std::io::stderr().write_all(
            format!(
                "warning: event log {path} unwritable ({cause}); further events stay in memory\n"
            )
            .as_bytes(),
        );
    }
}

impl Sink {
    /// A fresh, file-less sink (ring + stderr mirror only).
    pub fn new() -> Sink {
        Sink::default()
    }

    fn open_file(
        vfs: &dyn Vfs,
        dir: &Path,
        run_id: &str,
    ) -> std::io::Result<(PathBuf, Box<dyn VfsFile>)> {
        vfs.create_dir_all(dir)?;
        let path = dir.join(format!("{run_id}.jsonl"));
        let file = vfs.open_append(&path, Append::OrCreate)?;
        Ok((path, file))
    }

    /// Points the sink at `dir/<run_id>.jsonl`, write-through: every
    /// event is appended (and flushed) as it happens.
    pub fn init_write_through(&self, dir: &Path, run_id: &str) -> std::io::Result<PathBuf> {
        self.init_write_through_with(&RealFs, dir, run_id)
    }

    /// [`init_write_through`](Sink::init_write_through) through an
    /// explicit [`Vfs`].
    pub fn init_write_through_with(
        &self,
        vfs: &dyn Vfs,
        dir: &Path,
        run_id: &str,
    ) -> std::io::Result<PathBuf> {
        let (path, file) = Sink::open_file(vfs, dir, run_id)?;
        let mut inner = self.inner.lock().expect("events lock");
        inner.persistence = Persistence::WriteThrough;
        inner.path = Some(path.clone());
        inner.file = Some(file);
        inner.file_len = 0;
        Ok(path)
    }

    /// Points the sink at `dir/<run_id>.jsonl`, buffered: events
    /// accumulate in the ring until [`flush`](Sink::flush).
    pub fn init_buffered(&self, dir: &Path, run_id: &str) -> std::io::Result<PathBuf> {
        self.init_buffered_with(&RealFs, dir, run_id)
    }

    /// [`init_buffered`](Sink::init_buffered) through an explicit [`Vfs`].
    pub fn init_buffered_with(
        &self,
        vfs: &dyn Vfs,
        dir: &Path,
        run_id: &str,
    ) -> std::io::Result<PathBuf> {
        let (path, file) = Sink::open_file(vfs, dir, run_id)?;
        let mut inner = self.inner.lock().expect("events lock");
        inner.persistence = Persistence::Buffered;
        inner.path = Some(path.clone());
        inner.file = Some(file);
        inner.file_len = 0;
        Ok(path)
    }

    /// Disables the stderr mirror (tests).
    pub fn set_mirror(&self, on: bool) {
        self.inner.lock().expect("events lock").mirror = on;
    }

    /// Emits one event. `extras` append as additional JSON fields.
    pub fn emit(
        &self,
        level: Level,
        kind: &str,
        msg: &str,
        trace: Option<TraceContext>,
        extras: &[(&str, Json)],
    ) {
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut inner = self.inner.lock().expect("events lock");
        inner.seq += 1;
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("seq", Json::UInt(inner.seq)),
            ("ts_us", Json::UInt(ts_us)),
            ("level", Json::str(level.label())),
            ("kind", Json::str(kind)),
            ("msg", Json::str(msg)),
        ];
        if let Some(ctx) = trace {
            pairs.push(("trace", Json::str(ctx.trace_hex())));
            pairs.push(("span", Json::str(format!("{:016x}", ctx.span_id))));
        }
        let mut obj = Json::obj(pairs);
        if let Json::Obj(fields) = &mut obj {
            for (k, v) in extras {
                fields.push((k.to_string(), v.clone()));
            }
        }
        let line = obj.compact();

        match inner.persistence {
            Persistence::WriteThrough => {
                let write = match inner.file.as_mut() {
                    Some(file) => {
                        let framed = format!("{line}\n");
                        let result = file.write_all(framed.as_bytes());
                        if result.is_ok() {
                            inner.file_len += framed.len() as u64;
                        }
                        Some(result)
                    }
                    None => None,
                };
                match write {
                    Some(Ok(())) => {}
                    Some(Err(e)) => {
                        // ENOSPC or a dying disk: degrade to the ring
                        // (never panic, never abort the run) and keep a
                        // dropped-write count so the loss is visible.
                        degrade_to_ring(&mut inner, &e);
                        inner.disk_dropped += 1;
                        if inner.ring.len() >= inner.cap {
                            inner.ring.pop_front();
                            inner.dropped += 1;
                        }
                        inner.ring.push_back(line);
                    }
                    None if inner.path.is_some() => {
                        // Already degraded: this line should have been
                        // persisted and was not.
                        inner.disk_dropped += 1;
                        if inner.ring.len() >= inner.cap {
                            inner.ring.pop_front();
                            inner.dropped += 1;
                        }
                        inner.ring.push_back(line);
                    }
                    None => {}
                }
            }
            Persistence::Buffered | Persistence::None => {
                if inner.ring.len() >= inner.cap {
                    inner.ring.pop_front();
                    inner.dropped += 1;
                }
                inner.ring.push_back(line);
            }
        }

        if inner.mirror && level >= Level::Info {
            let prefix = match level {
                Level::Error => "error: ",
                Level::Warn => "warning: ",
                _ => "",
            };
            // One write_all so concurrent workers don't interleave
            // mid-line, matching what line-buffered stderr guaranteed.
            let _ = std::io::stderr().write_all(format!("{prefix}{msg}\n").as_bytes());
        }
    }

    /// Writes buffered lines (and a terminal `events.dropped` record if
    /// any were evicted) to the file. No-op in other modes.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().expect("events lock");
        if inner.persistence != Persistence::Buffered {
            return;
        }
        let lines: Vec<String> = inner.ring.drain(..).collect();
        let dropped = inner.dropped;
        inner.dropped = 0;
        if dropped > 0 {
            inner.seq += 1;
        }
        let seq = inner.seq;
        if inner.file.is_none() {
            // Degraded earlier: the drained lines cannot be persisted.
            inner.disk_dropped += lines.len() as u64;
            return;
        }
        let mut to_write: Vec<String> = lines;
        if dropped > 0 {
            let note = Json::obj([
                ("seq", Json::UInt(seq)),
                ("level", Json::str("warn")),
                ("kind", Json::str("events.dropped")),
                (
                    "msg",
                    Json::str(format!("{dropped} event(s) evicted before flush")),
                ),
                ("dropped", Json::UInt(dropped)),
            ]);
            to_write.push(note.compact());
        }
        for (i, line) in to_write.iter().enumerate() {
            let framed = format!("{line}\n");
            let result = inner
                .file
                .as_mut()
                .expect("checked above; degrade returns")
                .write_all(framed.as_bytes());
            match result {
                Ok(()) => inner.file_len += framed.len() as u64,
                Err(e) => {
                    degrade_to_ring(&mut inner, &e);
                    inner.disk_dropped += (to_write.len() - i) as u64;
                    return;
                }
            }
        }
    }

    /// Lines dropped from the ring so far (test hook).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("events lock").dropped
    }

    /// Lines that should have reached the event file but did not because
    /// the disk stopped accepting writes (the sink degraded to its ring).
    pub fn disk_dropped(&self) -> u64 {
        self.inner.lock().expect("events lock").disk_dropped
    }

    /// The sink's file path, when one was initialised.
    pub fn path(&self) -> Option<PathBuf> {
        self.inner.lock().expect("events lock").path.clone()
    }

    #[cfg(test)]
    fn set_cap(&self, cap: usize) {
        self.inner.lock().expect("events lock").cap = cap;
    }
}

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(Sink::default)
}

/// Initialises the process-wide sink in write-through mode
/// (`harness run`): `dir/<run_id>.jsonl`, one durable line per event.
pub fn init_run(dir: &Path, run_id: &str) -> std::io::Result<PathBuf> {
    sink().init_write_through(dir, run_id)
}

/// Initialises the process-wide sink in buffered mode (`harness serve`)
/// and chains a panic hook so a crashing daemon still flushes its ring.
pub fn init_serve(dir: &Path, run_id: &str) -> std::io::Result<PathBuf> {
    let path = sink().init_buffered(dir, run_id)?;
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        sink().flush();
        previous(info);
    }));
    Ok(path)
}

/// Flushes the process-wide sink (buffered mode only).
pub fn flush() {
    sink().flush();
}

/// Toggles the process-wide sink's stderr mirror. The disk-fault
/// campaign turns it off around trials: a run under injected ENOSPC
/// legitimately warns hundreds of times, and the campaign report is the
/// deliverable, not the per-trial noise.
pub fn set_mirror(on: bool) {
    sink().set_mirror(on);
}

/// Emits one event on the process-wide sink, with optional trace context
/// and extra JSON fields.
pub fn emit(
    level: Level,
    kind: &str,
    msg: &str,
    trace: Option<TraceContext>,
    extras: &[(&str, Json)],
) {
    sink().emit(level, kind, msg, trace, extras);
}

/// Debug-level breadcrumb (file/ring only, never mirrored to stderr).
pub fn debug(kind: &str, msg: &str, trace: Option<TraceContext>) {
    emit(Level::Debug, kind, msg, trace, &[]);
}

/// Info-level notice, mirrored to stderr verbatim.
pub fn info(kind: &str, msg: impl AsRef<str>) {
    emit(Level::Info, kind, msg.as_ref(), None, &[]);
}

/// Warning, mirrored to stderr as `warning: …`.
pub fn warn(kind: &str, msg: impl AsRef<str>) {
    emit(Level::Warn, kind, msg.as_ref(), None, &[]);
}

/// Warning carrying trace context.
pub fn warn_traced(kind: &str, msg: impl AsRef<str>, trace: Option<TraceContext>) {
    emit(Level::Warn, kind, msg.as_ref(), trace, &[]);
}

/// Error, mirrored to stderr as `error: …`.
pub fn error(kind: &str, msg: impl AsRef<str>) {
    emit(Level::Error, kind, msg.as_ref(), None, &[]);
}

/// Writes raw text to stderr, bypassing the event log (usage banners —
/// not diagnostics, so they never belong in the JSONL).
pub fn raw_stderr(text: &str) {
    let _ = std::io::stderr().write_all(text.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let s = Sink::new();
        s.set_mirror(false);
        s.set_cap(2);
        for i in 0..5 {
            s.emit(Level::Debug, "t", &format!("m{i}"), None, &[]);
        }
        assert_eq!(s.dropped(), 3);
        let inner = s.inner.lock().unwrap();
        assert_eq!(inner.ring.len(), 2);
        assert!(inner.ring[0].contains("\"msg\":\"m3\""), "{}", inner.ring[0]);
    }

    #[test]
    fn write_through_lines_parse_and_carry_trace() {
        let dir = std::env::temp_dir().join(format!("sparten-events-{}", std::process::id()));
        let s = Sink::new();
        s.set_mirror(false);
        let path = s.init_write_through(&dir, "run-test").expect("init");
        let ctx = TraceContext::from_ids(0xabcd, 0x1234);
        s.emit(
            Level::Warn,
            "cache.write_failed",
            "disk full",
            Some(ctx),
            &[("job", Json::str("fig7"))],
        );
        let text = fs::read_to_string(&path).expect("read");
        let line = text.lines().next().expect("one line");
        let parsed = Json::parse(line).expect("parse");
        assert_eq!(parsed.get("level").and_then(Json::as_str), Some("warn"));
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("cache.write_failed"));
        assert_eq!(
            parsed.get("trace").and_then(Json::as_str),
            Some("000000000000abcd")
        );
        assert_eq!(parsed.get("job").and_then(Json::as_str), Some("fig7"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn buffered_mode_holds_lines_until_flush_and_reports_drops() {
        let dir = std::env::temp_dir().join(format!("sparten-events-b-{}", std::process::id()));
        let s = Sink::new();
        s.set_mirror(false);
        s.set_cap(2);
        let path = s.init_buffered(&dir, "serve-test").expect("init");
        for i in 0..4 {
            s.emit(Level::Info, "t", &format!("m{i}"), None, &[]);
        }
        assert_eq!(fs::read_to_string(&path).expect("read"), "");
        s.flush();
        let text = fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        // 2 retained + the events.dropped record for the 2 evicted.
        assert_eq!(lines.len(), 3, "{text}");
        let last = Json::parse(lines[2]).expect("parse");
        assert_eq!(last.get("kind").and_then(Json::as_str), Some("events.dropped"));
        assert_eq!(last.get("dropped").and_then(Json::as_u64), Some(2));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_failure_degrades_to_ring_without_panicking() {
        use sparten_bench::vfs::{FaultConfig, FaultFs};
        let dir = std::env::temp_dir().join(format!("sparten-events-d-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = Sink::new();
        s.set_mirror(false);
        // A zero-byte disk budget: the very first event write hits ENOSPC.
        let vfs = FaultFs::new(
            7,
            FaultConfig {
                enospc_after_bytes: Some(0),
                ..FaultConfig::default()
            },
        );
        let path = s
            .init_write_through_with(&vfs, &dir, "run-degrade")
            .expect("init");
        s.emit(Level::Warn, "t", "first", None, &[]);
        s.emit(Level::Warn, "t", "second", None, &[]);
        assert_eq!(s.disk_dropped(), 2);
        {
            let inner = s.inner.lock().unwrap();
            assert!(inner.file.is_none(), "sink should have closed its file");
            assert_eq!(inner.ring.len(), 2);
            assert!(inner.ring[0].contains("\"msg\":\"first\""));
        }
        // The on-disk log rolled back to whole lines (here: empty).
        assert_eq!(fs::read_to_string(&path).expect("read"), "");
        fs::remove_dir_all(&dir).ok();
    }
}
