//! The harness side of the serve daemon: a [`Backend`] over the
//! experiment registry, the content-addressed cache, and the worker-pool
//! executor.
//!
//! The `sparten-serve` crate schedules requests and speaks HTTP but knows
//! nothing about experiments. This module supplies the three capabilities
//! it needs:
//!
//! * **identity** — each job's coalescing key is derived from the same
//!   material as its cache keys (name, fingerprint, seed), so "identical
//!   request" in the server means exactly "would produce byte-identical
//!   results";
//! * **the memory-speed hit path** — [`HarnessBackend::cached`] assembles
//!   a whole job from validated cache entries and renders it without
//!   touching the executor;
//! * **execution** — [`HarnessBackend::execute`] runs one job through
//!   [`executor::run`] with the same options `harness run` uses (journaled,
//!   self-healing, artifact-writing), wiring the executor's per-point
//!   [`ProgressHook`] into the server's broadcast stream.
//!
//! Concurrent `execute` calls are safe by construction: the server
//! coalesces duplicates, so two executor runs never compute the same job
//! at once, and distinct jobs touch distinct cache entries, artifact
//! files, and journals (run ids carry a process-wide sequence number).

use crate::cache::{fnv1a_parts, Cache, Lookup};
use crate::executor::{self, PointOrigin, ProgressHook, RunOptions};
use crate::{Experiment, PointPayload};
use sparten_serve::{Backend, JobInfo, JobOutput, PointSource};
use sparten_telemetry::{CancelToken, Telemetry, TraceContext};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// [`Backend`] implementation over the harness registry and machinery.
pub struct HarnessBackend {
    experiments: Vec<Arc<dyn Experiment>>,
    cache_dir: PathBuf,
    journal_dir: Option<PathBuf>,
    write_artifacts: bool,
    exec_jobs: usize,
    run_seq: AtomicUsize,
    trace_sink: Option<Arc<Telemetry>>,
    trace_epoch: Option<Instant>,
}

impl HarnessBackend {
    /// A backend serving `experiments`, reading/writing the cache at
    /// `cache_dir`, journaling executor runs under `journal_dir` (`None`
    /// disables journaling, for tests), writing `results/*` artifacts iff
    /// `write_artifacts`, and giving each executor run `exec_jobs` worker
    /// threads.
    pub fn new(
        experiments: Vec<Arc<dyn Experiment>>,
        cache_dir: impl Into<PathBuf>,
        journal_dir: Option<PathBuf>,
        write_artifacts: bool,
        exec_jobs: usize,
    ) -> HarnessBackend {
        HarnessBackend {
            experiments,
            cache_dir: cache_dir.into(),
            journal_dir,
            write_artifacts,
            exec_jobs: exec_jobs.max(1),
            run_seq: AtomicUsize::new(0),
            trace_sink: None,
            trace_epoch: None,
        }
    }

    /// Routes every executor run's wall-clock spans (per-point execution,
    /// cache-hit instants, merged simulator sessions) into `sink`, each
    /// stamped with the request's trace context. The server exports the
    /// same session at `/trace`, so one download shows request → gate →
    /// queue wait → point → chunk on a single timeline. Timestamps count
    /// from this call.
    pub fn with_trace_sink(mut self, sink: Arc<Telemetry>) -> HarnessBackend {
        self.trace_sink = Some(sink);
        self.trace_epoch = Some(Instant::now());
        self
    }

    fn find(&self, name: &str) -> Option<&Arc<dyn Experiment>> {
        self.experiments.iter().find(|e| e.name() == name)
    }

    /// The job-level coalescing key: same material as the per-point cache
    /// keys, so it changes exactly when a rerun could produce different
    /// bytes.
    fn coalesce_key(exp: &Arc<dyn Experiment>) -> u64 {
        fnv1a_parts(&[
            exp.name(),
            &exp.fingerprint(),
            &format!("seed={}", crate::SEED),
        ])
    }

    fn info(exp: &Arc<dyn Experiment>) -> JobInfo {
        JobInfo {
            name: exp.name().to_string(),
            kind: exp.kind().label().to_string(),
            points: exp.num_points(),
            key: Self::coalesce_key(exp),
        }
    }
}

impl Backend for HarnessBackend {
    fn jobs(&self) -> Vec<JobInfo> {
        self.experiments.iter().map(Self::info).collect()
    }

    fn job(&self, name: &str) -> Option<JobInfo> {
        self.find(name).map(Self::info)
    }

    fn cached(&self, name: &str) -> Option<JobOutput> {
        let exp = self.find(name)?;
        let cache = Cache::new(&self.cache_dir);
        let fp = exp.fingerprint();
        let mut points: Vec<PointPayload> = Vec::with_capacity(exp.num_points());
        for point in 0..exp.num_points() {
            let key = Cache::key(exp.name(), &fp, crate::SEED, point);
            match cache.lookup(exp.name(), point, key) {
                Lookup::Hit(payload) if exp.validate(point, &payload) => points.push(payload),
                _ => return None,
            }
        }
        let capture = exp.render(&points);
        Some(JobOutput {
            text: capture.text,
            artifacts: capture.artifacts,
        })
    }

    fn execute(
        &self,
        name: &str,
        progress: Arc<dyn Fn(usize, PointSource) + Send + Sync>,
        trace: Option<TraceContext>,
        cancel: CancelToken,
    ) -> Result<JobOutput, String> {
        let exp = Arc::clone(self.find(name).ok_or_else(|| format!("unknown job `{name}`"))?);
        let seq = self.run_seq.fetch_add(1, Ordering::SeqCst);
        let opts = RunOptions {
            filter: None,
            jobs: self.exec_jobs,
            force: false,
            cache_dir: self.cache_dir.clone(),
            write_artifacts: self.write_artifacts,
            stream_output: false,
            telemetry_dir: None,
            max_attempts: 2,
            point_timeout: None,
            // Quarantine reporting is per-request here (the error flows
            // back over HTTP); a shared failures.json would be a write
            // race between concurrent runs.
            failures_path: None,
            journal_dir: self.journal_dir.clone(),
            resume: None,
            run_id: Some(format!("{}-s{seq:04}", crate::journal::generate_run_id())),
            // In-flight runs complete fully during a drain; the server
            // stops new admissions instead.
            shutdown: None,
            drain_timeout: Duration::from_secs(30),
            abort_after: None,
            progress: Some(ProgressHook(Arc::new(move |_job, point, origin| {
                progress(
                    point,
                    match origin {
                        PointOrigin::Cache => PointSource::Cache,
                        PointOrigin::Computed => PointSource::Computed,
                    },
                )
            }))),
            trace,
            trace_sink: self.trace_sink.clone(),
            trace_epoch: self.trace_epoch,
            cancel: Some(cancel),
            vfs: Arc::new(sparten_bench::vfs::RealFs),
        };
        let report = executor::run(&[exp], &opts)?;
        let job = report
            .jobs
            .into_iter()
            .next()
            .ok_or_else(|| "executor returned no job report".to_string())?;
        match job.error {
            Some(e) => Err(e),
            None => Ok(JobOutput {
                text: job.output,
                artifacts: job.artifacts,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn coalescing_keys_are_stable_and_distinct() {
        let experiments = registry();
        let backend = HarnessBackend::new(experiments.clone(), "results/cache", None, false, 1);
        let jobs = backend.jobs();
        assert_eq!(jobs.len(), experiments.len());
        // Distinct jobs get distinct keys; the same job keys identically
        // across calls (the whole point of coalescing on it).
        let mut keys: Vec<u64> = jobs.iter().map(|j| j.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), jobs.len());
        let again = backend.jobs();
        assert_eq!(jobs, again);
    }

    #[test]
    fn unknown_names_resolve_to_none() {
        let backend = HarnessBackend::new(registry(), "results/cache", None, false, 1);
        assert!(backend.job("no_such_job").is_none());
        assert!(backend.cached("no_such_job").is_none());
    }
}
