//! Crash-only execution tests: kill the run at every legal crash point,
//! resume from the write-ahead journal, and prove the recovered results
//! are byte-identical to an uninterrupted run's. Also covers the graceful
//! signal drain, journal torn-tail tolerance, resume-compatibility
//! checks, and the results-tree fsck.

use sparten::nn::{ConvShape, LayerSpec};
use sparten::sim::{Scheme, SimConfig};
use sparten_bench::registry::layer_record;
use sparten_bench::{run_layer, run_layer_telemetry, Capture, ExperimentKind};
use sparten_harness::executor::{self, RunOptions, RunReport};
use sparten_harness::{fsck, journal, registry, Experiment, PointPayload};
use sparten_telemetry::{parse_report, Telemetry};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A five-point experiment shaped like `fig7_alexnet_speedup` (one point
/// per AlexNet conv layer) but on small synthetic layers, so every crash
/// point K in 1..=5 can be swept in milliseconds per run.
struct FigShaped {
    name: &'static str,
    /// When set, stores the shutdown flag to drain-level while computing
    /// point 0 — the experiment signals its own run, deterministically.
    drain_flag: Option<Arc<AtomicUsize>>,
}

impl FigShaped {
    fn new(name: &'static str) -> Self {
        FigShaped {
            name,
            drain_flag: None,
        }
    }

    fn layer(&self, point: usize) -> LayerSpec {
        LayerSpec {
            name: ["conv1", "conv2", "conv3", "conv4", "conv5"][point],
            shape: ConvShape::new(6 + point, 5, 5, 3, 4, 1, 1),
            input_density: 0.5,
            filter_density: 0.4,
        }
    }
}

impl Experiment for FigShaped {
    fn name(&self) -> &'static str {
        self.name
    }

    fn kind(&self) -> ExperimentKind {
        ExperimentKind::Figure
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn num_points(&self) -> usize {
        5
    }

    fn fingerprint(&self) -> String {
        format!("figshaped:{}", self.name)
    }

    fn compute_point(&self, point: usize) -> PointPayload {
        if point == 0 {
            if let Some(flag) = &self.drain_flag {
                flag.store(1, Ordering::SeqCst);
            }
        }
        let result = run_layer(&self.layer(point), &Scheme::all(), &SimConfig::small());
        PointPayload::Record(layer_record(&result))
    }

    fn compute_point_telemetry(&self, point: usize) -> (PointPayload, Option<Telemetry>) {
        let session = Telemetry::new();
        let result = run_layer_telemetry(
            &self.layer(point),
            &Scheme::all(),
            &SimConfig::small(),
            &session,
        );
        (PointPayload::Record(layer_record(&result)), Some(session))
    }

    fn render(&self, points: &[PointPayload]) -> Capture {
        let mut text = format!("== {} ==\n", self.name);
        for p in points {
            match p {
                PointPayload::Record(blob) => text.push_str(blob),
                PointPayload::Capture(_) => unreachable!(),
            }
        }
        Capture {
            text: text.clone(),
            artifacts: vec![(format!("results/{}.json", self.name), text)],
        }
    }
}

/// A results-tree root with the conventional cache/ and journal/ layout.
fn fresh_tree(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sparten-crash-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(tree: &Path, jobs: usize) -> RunOptions {
    RunOptions {
        filter: None,
        jobs,
        force: false,
        cache_dir: tree.join("cache"),
        write_artifacts: false,
        stream_output: false,
        telemetry_dir: None,
        max_attempts: 2,
        point_timeout: None,
        failures_path: None,
        journal_dir: Some(tree.join("journal")),
        resume: None,
        run_id: None,
        shutdown: None,
        drain_timeout: Duration::from_secs(30),
        abort_after: None,
        progress: None,
        trace: None,
        trace_sink: None,
        trace_epoch: None,
        cancel: None,
        ..RunOptions::default()
    }
}

/// `(output, artifacts)` per job — everything a run externalizes.
fn externals(report: &RunReport) -> Vec<(String, Vec<(String, String)>)> {
    report
        .jobs
        .iter()
        .map(|j| (j.output.clone(), j.artifacts.clone()))
        .collect()
}

fn journal_files(tree: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(tree.join("journal")) else {
        return Vec::new();
    };
    let mut files: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    files.sort();
    files
}

#[test]
fn crash_at_every_point_resumes_byte_identical() {
    // Reference: an uninterrupted run of the five-point figure.
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(FigShaped::new("sweep_fig"))];
    let ref_tree = fresh_tree("sweep-ref");
    let reference = executor::run(&exps, &opts(&ref_tree, 2)).unwrap();
    assert!(reference.all_ok());
    assert!(
        journal_files(&ref_tree).is_empty(),
        "a completed run seals (removes) its journal"
    );

    // Crash after K = 1..=5 journaled points, then resume. K = 5 crashes
    // after the last point but before render/artifacts — still a crash.
    for k in 1..=5 {
        let tree = fresh_tree(&format!("sweep-k{k}"));
        let mut crash_opts = opts(&tree, 2);
        crash_opts.abort_after = Some(k);
        let err = executor::run(&exps, &crash_opts).unwrap_err();
        assert!(err.contains("crash hook"), "{err}");
        let dangling = journal_files(&tree);
        assert_eq!(dangling.len(), 1, "crash leaves exactly one journal");

        let mut resume_opts = opts(&tree, 2);
        resume_opts.resume = Some(dangling[0].clone());
        let resumed = executor::run(&exps, &resume_opts).unwrap();
        assert!(resumed.all_ok());
        assert_eq!(resumed.replayed, k, "all {k} journaled points replayed");
        assert_eq!(
            externals(&resumed),
            externals(&reference),
            "crash after {k} points must not change any output byte"
        );
        assert!(
            journal_files(&tree).is_empty(),
            "the resumed run seals the journal it finished"
        );
        let _ = std::fs::remove_dir_all(&tree);
    }
    let _ = std::fs::remove_dir_all(&ref_tree);
}

#[test]
fn a_resumed_run_can_itself_crash_and_resume() {
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(FigShaped::new("double_crash"))];
    let ref_tree = fresh_tree("double-ref");
    let reference = executor::run(&exps, &opts(&ref_tree, 1)).unwrap();

    let tree = fresh_tree("double");
    let mut first = opts(&tree, 1);
    first.abort_after = Some(1);
    executor::run(&exps, &first).unwrap_err();

    // The resume crashes too, after one more computed point.
    let mut second = opts(&tree, 1);
    second.resume = Some(journal_files(&tree)[0].clone());
    second.abort_after = Some(1);
    executor::run(&exps, &second).unwrap_err();

    let mut third = opts(&tree, 1);
    third.resume = Some(journal_files(&tree)[0].clone());
    let finished = executor::run(&exps, &third).unwrap();
    assert!(finished.all_ok());
    assert_eq!(finished.replayed, 2, "both crashes' points survive");
    assert_eq!(externals(&finished), externals(&reference));
    let _ = std::fs::remove_dir_all(&tree);
    let _ = std::fs::remove_dir_all(&ref_tree);
}

#[test]
fn a_torn_journal_tail_is_tolerated_on_resume() {
    // Crash, then tear the journal mid-append (no trailing newline) — the
    // torn final line must be discarded, not poison the whole journal.
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(FigShaped::new("torn_tail"))];
    let ref_tree = fresh_tree("torn-ref");
    let reference = executor::run(&exps, &opts(&ref_tree, 1)).unwrap();

    let tree = fresh_tree("torn");
    let mut crash = opts(&tree, 1);
    crash.abort_after = Some(2);
    executor::run(&exps, &crash).unwrap_err();
    let path = journal_files(&tree)[0].clone();
    let mut text = std::fs::read_to_string(&path).unwrap();
    text.push_str("{\"record\": \"point\", \"job\": \"torn_tail\", \"poi");
    std::fs::write(&path, &text).unwrap();

    let replay = journal::replay(&path).unwrap();
    assert_eq!(replay.points.len(), 2, "the torn line is not a point");
    // Replay is deterministic: same journal, same replay.
    let again = journal::replay(&path).unwrap();
    assert_eq!(replay.points, again.points);
    assert_eq!(replay.start.run_id, again.start.run_id);

    let mut resume = opts(&tree, 1);
    resume.resume = Some(path);
    let resumed = executor::run(&exps, &resume).unwrap();
    assert_eq!(resumed.replayed, 2);
    assert_eq!(externals(&resumed), externals(&reference));
    let _ = std::fs::remove_dir_all(&tree);
    let _ = std::fs::remove_dir_all(&ref_tree);
}

#[test]
fn resume_rejects_mismatched_options_and_registry() {
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(FigShaped::new("mismatch"))];
    let tree = fresh_tree("mismatch");
    let mut crash = opts(&tree, 1);
    crash.abort_after = Some(1);
    executor::run(&exps, &crash).unwrap_err();
    let path = journal_files(&tree)[0].clone();

    // Different --force than the journaled run.
    let mut forced = opts(&tree, 1);
    forced.resume = Some(path.clone());
    forced.force = true;
    let err = executor::run(&exps, &forced).unwrap_err();
    assert!(err.contains("force"), "{err}");

    // Different experiment set (registry fingerprint changes).
    let other: Vec<Arc<dyn Experiment>> = vec![Arc::new(FigShaped::new("other_fig"))];
    let mut wrong = opts(&tree, 1);
    wrong.resume = Some(path);
    let err = executor::run(&other, &wrong).unwrap_err();
    assert!(err.contains("registry") || err.contains("experiment"), "{err}");
    let _ = std::fs::remove_dir_all(&tree);
}

#[test]
fn telemetry_sessions_survive_crash_and_resume() {
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(FigShaped::new("tel_crash"))];
    let ref_tree = fresh_tree("telcrash-ref");
    let mut ref_opts = opts(&ref_tree, 1);
    ref_opts.telemetry_dir = Some(ref_tree.join("telemetry"));
    let reference = executor::run(&exps, &ref_opts).unwrap();
    let ref_tel = reference.jobs[0].telemetry.as_ref().unwrap();

    let tree = fresh_tree("telcrash");
    let mut crash = opts(&tree, 1);
    crash.telemetry_dir = Some(tree.join("telemetry"));
    crash.abort_after = Some(2);
    executor::run(&exps, &crash).unwrap_err();

    let mut resume = opts(&tree, 1);
    resume.telemetry_dir = Some(tree.join("telemetry"));
    resume.resume = Some(journal_files(&tree)[0].clone());
    let resumed = executor::run(&exps, &resume).unwrap();
    assert_eq!(resumed.replayed, 2);
    let tel = resumed.jobs[0].telemetry.as_ref().unwrap();

    // The replayed points' sessions came back through the journal, so the
    // merged counters — simulator work/stall cycles included — match an
    // uninterrupted run exactly. (Timing gauges are not counters.)
    let ref_parsed = parse_report(&ref_tel.report_text).unwrap();
    let parsed = parse_report(&tel.report_text).unwrap();
    assert_eq!(ref_parsed.counters, parsed.counters);
    assert_eq!(ref_parsed.events, parsed.events);
    let _ = std::fs::remove_dir_all(&tree);
    let _ = std::fs::remove_dir_all(&ref_tree);
}

#[test]
fn drain_interrupts_cleanly_and_resume_completes() {
    // The experiment trips the shutdown flag while computing point 0, so
    // the drain happens at a deterministic moment: in-flight work (point
    // 0) finishes and is journaled, queued points are bounced.
    let flag: Arc<AtomicUsize> = Arc::new(AtomicUsize::new(0));
    let mut exp = FigShaped::new("drain_fig");
    exp.drain_flag = Some(Arc::clone(&flag));
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(exp)];

    let tree = fresh_tree("drain");
    let mut o = opts(&tree, 1);
    o.shutdown = Some(Arc::clone(&flag));
    let report = executor::run(&exps, &o).unwrap();
    assert!(report.interrupted, "drain must be reported");
    assert!(report.run_id.is_some());
    assert!(!report.all_ok(), "the drained job is incomplete");
    assert!(report.jobs[0]
        .error
        .as_deref()
        .unwrap()
        .contains("interrupted"));
    let dangling = journal_files(&tree);
    assert_eq!(dangling.len(), 1, "a drained run keeps its journal");

    // Resume (no flag this time) — identical to a clean run.
    let clean_exps: Vec<Arc<dyn Experiment>> =
        vec![Arc::new(FigShaped::new("drain_fig"))];
    let ref_tree = fresh_tree("drain-ref");
    let reference = executor::run(&clean_exps, &opts(&ref_tree, 1)).unwrap();
    let mut resume = opts(&tree, 1);
    resume.resume = Some(dangling[0].clone());
    let resumed = executor::run(&clean_exps, &resume).unwrap();
    assert!(resumed.all_ok());
    assert!(resumed.replayed >= 1, "the in-flight point was journaled");
    assert_eq!(externals(&resumed), externals(&reference));
    let _ = std::fs::remove_dir_all(&tree);
    let _ = std::fs::remove_dir_all(&ref_tree);
}

#[test]
fn fsck_flags_a_crashed_tree_and_resume_makes_it_clean() {
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(FigShaped::new("fsck_fig"))];
    let tree = fresh_tree("fsck-cycle");
    let mut crash = opts(&tree, 1);
    crash.abort_after = Some(2);
    executor::run(&exps, &crash).unwrap_err();

    let report = fsck::fsck(&tree, &["fsck_fig"], false).unwrap();
    assert!(report.has_resumable());
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    assert_eq!(report.findings[0].category, "dangling-journal");

    let mut resume = opts(&tree, 1);
    resume.resume = Some(journal_files(&tree)[0].clone());
    executor::run(&exps, &resume).unwrap();
    let after = fsck::fsck(&tree, &["fsck_fig"], false).unwrap();
    assert!(after.clean(), "{}", after.render());

    // Seed cache corruption: fsck pinpoints the entry, repair quarantines
    // it, and the next audit is clean again.
    let entry = std::fs::read_dir(tree.join("cache"))
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("cache"))
        .unwrap();
    let mut bytes = std::fs::read(&entry).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&entry, &bytes).unwrap();
    let corrupt = fsck::fsck(&tree, &["fsck_fig"], false).unwrap();
    assert_eq!(corrupt.findings.len(), 1);
    assert_eq!(corrupt.findings[0].category, "corrupt-cache");
    let repaired = fsck::fsck(&tree, &["fsck_fig"], true).unwrap();
    assert!(matches!(
        repaired.findings[0].action,
        fsck::Action::Quarantined(_)
    ));
    assert!(fsck::fsck(&tree, &["fsck_fig"], false).unwrap().clean());
    let _ = std::fs::remove_dir_all(&tree);
}

#[test]
fn real_fig7_crash_resume_is_byte_identical() {
    // The real registry experiment the CLI smoke sweeps: crash after two
    // journaled AlexNet layers, resume, and compare against an
    // uninterrupted run. One real-workload point of the K-sweep above.
    let jobs = registry();
    let tree = fresh_tree("fig7");
    let mut crash = opts(&tree, 2);
    crash.filter = Some("fig7_alexnet_speedup".into());
    crash.abort_after = Some(2);
    executor::run(&jobs, &crash).unwrap_err();
    let dangling = journal_files(&tree);
    assert_eq!(dangling.len(), 1);

    let mut resume = opts(&tree, 2);
    resume.filter = Some("fig7_alexnet_speedup".into());
    resume.resume = Some(dangling[0].clone());
    let resumed = executor::run(&jobs, &resume).unwrap();
    assert!(resumed.all_ok());
    assert_eq!(resumed.replayed, 2);

    // Reference run shares the cache: the four cached points hit, the one
    // journaled-but-never-cached point recomputes, and the byte-identity
    // claim covers both paths at once.
    let mut ref_opts = opts(&tree, 2);
    ref_opts.filter = Some("fig7_alexnet_speedup".into());
    let reference = executor::run(&jobs, &ref_opts).unwrap();
    assert!(reference.all_ok());
    assert_eq!(externals(&resumed), externals(&reference));
    assert!(resumed.jobs[0].output.contains("Figure 7"));
    let _ = std::fs::remove_dir_all(&tree);
}
