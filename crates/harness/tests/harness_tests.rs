//! Integration tests for the orchestration harness: determinism across
//! worker counts and cache states, dependency ordering, cache-hit
//! accounting, and failure isolation.

use sparten::nn::{ConvShape, LayerSpec};
use sparten::sim::{Scheme, SimConfig, SimResult};
use sparten_bench::registry::layer_record;
use sparten_bench::{run_layer, run_layer_telemetry, Capture, ExperimentKind};
use sparten_harness::executor::{self, RunOptions, RunReport};
use sparten_harness::{registry, Experiment, PointPayload};
use sparten_telemetry::{parse_report, Telemetry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A small experiment over synthetic layers; each point simulates one
/// small layer across all eight schemes, exactly like the real figures.
struct TestExp {
    name: &'static str,
    deps: &'static [&'static str],
    points: usize,
    /// Channel-count knob so different experiments do different work.
    depth: usize,
    /// Optional completion log for ordering assertions.
    log: Option<Arc<Mutex<Vec<&'static str>>>>,
    /// Panic on compute, to test failure isolation.
    poisoned: bool,
}

impl TestExp {
    fn new(name: &'static str, points: usize, depth: usize) -> Self {
        TestExp {
            name,
            deps: &[],
            points,
            depth,
            log: None,
            poisoned: false,
        }
    }

    fn layer(&self, point: usize) -> LayerSpec {
        LayerSpec {
            name: ["P0", "P1", "P2", "P3"][point],
            shape: ConvShape::new(self.depth + point, 5, 5, 3, 4, 1, 1),
            input_density: 0.5,
            filter_density: 0.4,
        }
    }
}

impl Experiment for TestExp {
    fn name(&self) -> &'static str {
        self.name
    }

    fn kind(&self) -> ExperimentKind {
        ExperimentKind::Study
    }

    fn deps(&self) -> &'static [&'static str] {
        self.deps
    }

    fn num_points(&self) -> usize {
        self.points
    }

    fn fingerprint(&self) -> String {
        format!("test:{}:{}:{}", self.name, self.points, self.depth)
    }

    fn compute_point(&self, point: usize) -> PointPayload {
        assert!(!self.poisoned, "poisoned experiment");
        let spec = self.layer(point);
        let result = run_layer(&spec, &Scheme::all(), &SimConfig::small());
        PointPayload::Record(layer_record(&result))
    }

    fn compute_point_telemetry(&self, point: usize) -> (PointPayload, Option<Telemetry>) {
        assert!(!self.poisoned, "poisoned experiment");
        let spec = self.layer(point);
        let session = Telemetry::new();
        let result = run_layer_telemetry(&spec, &Scheme::all(), &SimConfig::small(), &session);
        (PointPayload::Record(layer_record(&result)), Some(session))
    }

    fn render(&self, points: &[PointPayload]) -> Capture {
        if let Some(log) = &self.log {
            log.lock().unwrap().push(self.name);
        }
        let mut text = format!("== {} ==\n", self.name);
        for p in points {
            match p {
                PointPayload::Record(blob) => text.push_str(blob),
                PointPayload::Capture(_) => unreachable!(),
            }
        }
        Capture {
            text,
            artifacts: Vec::new(),
        }
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sparten-harness-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(cache_dir: PathBuf, jobs: usize) -> RunOptions {
    RunOptions {
        filter: None,
        jobs,
        force: false,
        cache_dir,
        write_artifacts: false,
        stream_output: false,
        telemetry_dir: None,
        max_attempts: 2,
        point_timeout: None,
        failures_path: None,
        // Journaling/resume/drain are exercised by crash_tests.rs; these
        // tests run journal-free so they leave no results/journal behind.
        journal_dir: None,
        resume: None,
        run_id: None,
        shutdown: None,
        drain_timeout: Duration::from_secs(30),
        abort_after: None,
        progress: None,
        trace: None,
        trace_sink: None,
        trace_epoch: None,
        cancel: None,
        ..RunOptions::default()
    }
}

/// These tests never interrupt a run, so the executor's `Result` is
/// always `Ok`; unwrap it once here instead of at every call site.
fn run(exps: &[Arc<dyn Experiment>], opts: &RunOptions) -> RunReport {
    executor::run(exps, opts).expect("uninterrupted run succeeds")
}

fn outputs(report: &sparten_harness::executor::RunReport) -> Vec<String> {
    report.jobs.iter().map(|j| j.output.clone()).collect()
}

#[test]
fn results_are_bit_identical_across_jobs_and_cache_states() {
    // Same seed ⇒ bit-identical SimResults for all 8 schemes on small
    // layers, for --jobs 1 vs N and cold vs warm cache.
    let exps: Vec<Arc<dyn Experiment>> = vec![
        Arc::new(TestExp::new("det_a", 4, 8)),
        Arc::new(TestExp::new("det_b", 3, 12)),
    ];
    let dir_serial = fresh_dir("det-serial");
    let dir_parallel = fresh_dir("det-parallel");

    let serial_cold = run(&exps, &opts(dir_serial.clone(), 1));
    let parallel_cold = run(&exps, &opts(dir_parallel.clone(), 4));
    let parallel_warm = run(&exps, &opts(dir_parallel.clone(), 4));

    assert_eq!(outputs(&serial_cold), outputs(&parallel_cold));
    assert_eq!(outputs(&parallel_cold), outputs(&parallel_warm));
    assert_eq!(serial_cold.total_hits(), 0);
    assert_eq!(parallel_warm.total_hits(), 7);

    // The outputs really are SimResult records that parse bit-exactly.
    let body = serial_cold.jobs[0]
        .output
        .strip_prefix("== det_a ==\n")
        .unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 4 * Scheme::all().len());
    for line in lines {
        let r = SimResult::from_record(line).expect("record parses");
        assert_eq!(r.to_record(), line);
    }

    let _ = std::fs::remove_dir_all(dir_serial);
    let _ = std::fs::remove_dir_all(dir_parallel);
}

#[test]
fn direct_recomputation_is_bit_identical() {
    // The underlying guarantee the cache rests on, without the executor.
    let exp = TestExp::new("direct", 1, 16);
    let a = run_layer(&exp.layer(0), &Scheme::all(), &SimConfig::small());
    let b = run_layer(&exp.layer(0), &Scheme::all(), &SimConfig::small());
    assert_eq!(a.results, b.results);
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.to_record(), y.to_record());
    }
}

#[test]
fn output_is_emitted_in_registry_order_not_completion_order() {
    // Big job first in the registry, tiny jobs later: under 4 workers the
    // tiny jobs finish first, but reports stay in registry order.
    let exps: Vec<Arc<dyn Experiment>> = vec![
        Arc::new(TestExp::new("order_big", 4, 40)),
        Arc::new(TestExp::new("order_t1", 1, 4)),
        Arc::new(TestExp::new("order_t2", 1, 5)),
    ];
    let dir = fresh_dir("order");
    let report = run(&exps, &opts(dir.clone(), 4));
    let names: Vec<&str> = report.jobs.iter().map(|j| j.name).collect();
    assert_eq!(names, vec!["order_big", "order_t1", "order_t2"]);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn dependencies_complete_before_dependents_start() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut first = TestExp::new("dep_first", 2, 20);
    first.log = Some(Arc::clone(&log));
    let mut second = TestExp::new("dep_second", 1, 4);
    second.deps = &["dep_first"];
    second.log = Some(Arc::clone(&log));
    // Registry order puts the dependent first to prove scheduling, not
    // listing order, is what delays it.
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(second), Arc::new(first)];
    let dir = fresh_dir("deps");
    let report = run(&exps, &opts(dir.clone(), 4));
    assert!(report.all_ok());
    assert_eq!(*log.lock().unwrap(), vec!["dep_first", "dep_second"]);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn force_recomputes_despite_a_warm_cache() {
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(TestExp::new("force_me", 2, 8))];
    let dir = fresh_dir("force");
    let cold = run(&exps, &opts(dir.clone(), 2));
    assert_eq!(cold.total_hits(), 0);
    let warm = run(&exps, &opts(dir.clone(), 2));
    assert_eq!(warm.total_hits(), 2);
    let mut forced_opts = opts(dir.clone(), 2);
    forced_opts.force = true;
    let forced = run(&exps, &forced_opts);
    assert_eq!(forced.total_hits(), 0);
    assert_eq!(outputs(&cold), outputs(&forced));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn filter_selects_by_substring_and_waives_missing_deps() {
    let mut dependent = TestExp::new("solo_dependent", 1, 6);
    dependent.deps = &["solo_missing"];
    let exps: Vec<Arc<dyn Experiment>> = vec![
        Arc::new(TestExp::new("solo_missing", 1, 6)),
        Arc::new(dependent),
    ];
    let dir = fresh_dir("filter");
    let mut o = opts(dir.clone(), 2);
    o.filter = Some("dependent".into());
    let report = run(&exps, &o);
    assert_eq!(report.jobs.len(), 1);
    assert_eq!(report.jobs[0].name, "solo_dependent");
    assert!(report.all_ok());
    let _ = std::fs::remove_dir_all(dir);
}

/// A single-point experiment that panics on its first `fail_first`
/// compute attempts, then produces the same deterministic record a clean
/// experiment would — the "transient fault" the retry path must heal.
struct FlakyExp {
    name: &'static str,
    fail_first: usize,
    calls: AtomicUsize,
    /// `None` panics; `Some(d)` hangs for `d` instead (watchdog tests).
    hang: Option<Duration>,
}

impl FlakyExp {
    fn new(name: &'static str, fail_first: usize) -> Self {
        FlakyExp {
            name,
            fail_first,
            calls: AtomicUsize::new(0),
            hang: None,
        }
    }
}

impl Experiment for FlakyExp {
    fn name(&self) -> &'static str {
        self.name
    }

    fn kind(&self) -> ExperimentKind {
        ExperimentKind::Study
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn num_points(&self) -> usize {
        1
    }

    fn fingerprint(&self) -> String {
        format!("flaky:{}", self.name)
    }

    fn compute_point(&self, _point: usize) -> PointPayload {
        if self.calls.fetch_add(1, Ordering::SeqCst) < self.fail_first {
            match self.hang {
                Some(d) => std::thread::sleep(d),
                None => panic!("transient fault"),
            }
        }
        let spec = TestExp::new(self.name, 1, 8).layer(0);
        let result = run_layer(&spec, &Scheme::all(), &SimConfig::small());
        PointPayload::Record(layer_record(&result))
    }

    fn compute_point_telemetry(&self, point: usize) -> (PointPayload, Option<Telemetry>) {
        (self.compute_point(point), None)
    }

    fn render(&self, points: &[PointPayload]) -> Capture {
        let mut text = format!("== {} ==\n", self.name);
        for p in points {
            match p {
                PointPayload::Record(blob) => text.push_str(blob),
                PointPayload::Capture(_) => unreachable!(),
            }
        }
        Capture {
            text,
            artifacts: Vec::new(),
        }
    }
}

#[test]
fn transient_panic_is_retried_and_the_job_completes() {
    let flaky = Arc::new(FlakyExp::new("flaky_once", 1));
    let clean = Arc::new(FlakyExp::new("flaky_once", 0));
    let exps: Vec<Arc<dyn Experiment>> = vec![flaky];
    let dir = fresh_dir("retry");
    let report = run(&exps, &opts(dir.clone(), 2));
    assert!(report.all_ok(), "retry should heal a one-shot panic");
    assert_eq!(report.retries, 1);
    assert!(report.failures.is_empty());

    // The healed output is byte-identical to a never-failed run.
    let dir2 = fresh_dir("retry-clean");
    let clean_report = run(&[clean as Arc<dyn Experiment>], &opts(dir2.clone(), 2));
    assert_eq!(outputs(&report), outputs(&clean_report));
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(dir2);
}

#[test]
fn exhausted_retries_quarantine_the_point_but_spare_the_run() {
    // `fail_first` above the attempt budget: every attempt panics.
    let exps: Vec<Arc<dyn Experiment>> = vec![
        Arc::new(FlakyExp::new("always_bad", usize::MAX)),
        Arc::new(TestExp::new("bystander", 2, 8)),
    ];
    let dir = fresh_dir("quarantine");
    let failures_json = dir.join("failures.json");
    let mut o = opts(dir.clone(), 2);
    o.failures_path = Some(failures_json.clone());
    let report = run(&exps, &o);

    assert!(!report.all_ok());
    assert_eq!(report.failures.len(), 1);
    let f = &report.failures[0];
    assert_eq!((f.job, f.point, f.attempts, f.kind), ("always_bad", 0, 2, "panic"));
    assert_eq!(report.retries, 1, "one re-dispatch before quarantine");

    // The machine-readable report landed and names the quarantined point.
    let written = std::fs::read_to_string(&failures_json).expect("failures.json written");
    assert!(written.contains("\"job\": \"always_bad\""));
    assert!(written.contains("\"kind\": \"panic\""));
    assert!(written.contains("\"message\": \"transient fault\""));

    // The bystander's output is byte-identical to a clean run of it.
    let dir2 = fresh_dir("quarantine-clean");
    let clean = run(
        &[Arc::new(TestExp::new("bystander", 2, 8)) as Arc<dyn Experiment>],
        &opts(dir2.clone(), 2),
    );
    assert!(report.jobs[0].error.as_deref().unwrap().contains("panicked"));
    assert_eq!(report.jobs[1].output, clean.jobs[0].output);

    // A subsequent clean run removes the stale quarantine report.
    let clean_exps: Vec<Arc<dyn Experiment>> =
        vec![Arc::new(TestExp::new("bystander", 2, 8))];
    let report2 = run(&clean_exps, &o);
    assert!(report2.all_ok());
    assert!(!failures_json.exists(), "stale failures.json must be removed");

    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(dir2);
}

#[test]
fn hung_point_trips_the_watchdog_and_is_quarantined() {
    let mut hung = FlakyExp::new("hangs", usize::MAX);
    hung.hang = Some(Duration::from_secs(5));
    let exps: Vec<Arc<dyn Experiment>> = vec![
        Arc::new(hung),
        Arc::new(TestExp::new("prompt", 1, 8)),
    ];
    let dir = fresh_dir("watchdog");
    let mut o = opts(dir.clone(), 2);
    o.max_attempts = 1; // one hang is enough; don't wait out a retry
    o.point_timeout = Some(Duration::from_millis(100));
    let report = run(&exps, &o);

    assert!(!report.all_ok());
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].kind, "timeout");
    assert!(report.jobs[0].error.as_deref().unwrap().contains("timed out"));
    assert!(report.jobs[1].error.is_none(), "bystander unaffected");
    assert!(report.jobs[1].output.starts_with("== prompt =="));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn a_panicking_job_fails_alone() {
    let mut bad = TestExp::new("poison", 2, 8);
    bad.poisoned = true;
    let exps: Vec<Arc<dyn Experiment>> = vec![
        Arc::new(bad),
        Arc::new(TestExp::new("survivor", 2, 8)),
    ];
    let dir = fresh_dir("poison");
    let report = run(&exps, &opts(dir.clone(), 2));
    assert!(!report.all_ok());
    assert!(report.jobs[0].error.as_deref().unwrap().contains("poison"));
    assert!(report.jobs[1].error.is_none());
    assert!(report.jobs[1].output.starts_with("== survivor =="));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn telemetry_runs_export_reconciled_counters_and_valid_traces() {
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(TestExp::new("tel_job", 2, 8))];
    let cache_dir = fresh_dir("tel-cache");
    let tel_dir = fresh_dir("tel-out");

    // Warm the cache first: telemetry must bypass it so counters are
    // complete, and the payload output must still be byte-identical.
    let plain = run(&exps, &opts(cache_dir.clone(), 2));
    let mut o = opts(cache_dir.clone(), 2);
    o.telemetry_dir = Some(tel_dir.clone());
    let traced = run(&exps, &o);
    assert_eq!(traced.total_hits(), 0, "telemetry bypasses the cache");
    assert_eq!(outputs(&plain), outputs(&traced));

    let tel = traced.jobs[0].telemetry.as_ref().expect("telemetry attached");

    // The text report parses and its counters reconcile with the payload:
    // per-scheme work.nonzero sums across both points.
    let parsed = parse_report(&tel.report_text).expect("report parses");
    assert_eq!(parsed.job, "tel_job");
    let mut expect_nonzero = 0u64;
    for point in 0..2 {
        let exp = TestExp::new("tel_job", 2, 8);
        let spec = exp.layer(point);
        let r = run_layer(&spec, &[Scheme::SpartenGbH], &SimConfig::small());
        expect_nonzero += r.results[0].breakdown.nonzero;
    }
    assert_eq!(parsed.counters["SparTen/work.nonzero"], expect_nonzero);
    assert_eq!(parsed.counters["harness/points"], 2);
    assert_eq!(parsed.counters["harness/cache.hits"], 0);

    // The Chrome trace is structurally sound JSON with per-point tracks.
    assert!(tel.chrome_json.starts_with('{'));
    assert!(tel.chrome_json.contains("\"displayTimeUnit\""));
    assert!(tel.chrome_json.contains("\"traceEvents\""));
    assert!(tel.chrome_json.contains("P0:SparTen"));
    assert!(tel.chrome_json.contains("P1:SparTen"));
    assert!(tel.chrome_json.trim_end().ends_with('}'));

    // Both exporter files landed on disk.
    let json = std::fs::read_to_string(tel_dir.join("tel_job.json")).expect("json written");
    let text = std::fs::read_to_string(tel_dir.join("tel_job.txt")).expect("txt written");
    assert_eq!(json, tel.chrome_json);
    assert_eq!(text, tel.report_text);

    let _ = std::fs::remove_dir_all(cache_dir);
    let _ = std::fs::remove_dir_all(tel_dir);
}

#[test]
fn cache_lookups_are_classified_in_the_run_report() {
    let exps: Vec<Arc<dyn Experiment>> = vec![Arc::new(TestExp::new("stats_job", 2, 8))];
    let dir = fresh_dir("cache-stats");

    let cold = run(&exps, &opts(dir.clone(), 2));
    assert_eq!(cold.cache.misses, 2);
    assert_eq!((cold.cache.hits, cold.cache.malformed), (0, 0));

    let warm = run(&exps, &opts(dir.clone(), 2));
    assert_eq!(warm.cache.hits, 2);
    assert_eq!((warm.cache.misses, warm.cache.malformed), (0, 0));

    // Corrupt one entry: it is counted as malformed, recomputed, and the
    // rewritten entry hits again on the next run.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("cache"))
        .expect("a cache entry exists");
    std::fs::write(&entry, "truncated garbage").unwrap();
    let repaired = run(&exps, &opts(dir.clone(), 2));
    assert_eq!(repaired.cache.malformed, 1);
    assert_eq!(repaired.cache.hits, 1);
    assert!(repaired.all_ok());
    let again = run(&exps, &opts(dir.clone(), 2));
    assert_eq!(again.cache.hits, 2);

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn real_registry_experiment_is_cacheable_and_stable() {
    // The cheapest real experiment end-to-end: cold vs warm byte-identity.
    let dir = fresh_dir("real");
    let mut o = opts(dir.clone(), 2);
    o.filter = Some("table2_hw_params".into());
    let cold = run(&registry(), &o);
    assert_eq!(cold.jobs.len(), 1);
    assert!(cold.all_ok());
    assert_eq!(cold.total_hits(), 0);
    let warm = run(&registry(), &o);
    assert_eq!(warm.total_hits(), 1);
    assert_eq!(outputs(&cold), outputs(&warm));
    assert!(cold.jobs[0].output.contains("Table 2"));
    let _ = std::fs::remove_dir_all(dir);
}
