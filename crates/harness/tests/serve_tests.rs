//! End-to-end tests for `harness serve` over real sockets.
//!
//! Each test binds a [`Server`] on an ephemeral port with a
//! [`HarnessBackend`] over cheap synthetic experiments, drives it with
//! the `sparten_serve::client`, and asserts the acceptance properties:
//! concurrent duplicate requests share exactly one execution, saturation
//! answers 429 + `Retry-After`, cache hits are byte-identical to a direct
//! executor run, and a drain completes in-flight requests, refuses new
//! connections, and leaves no dangling journal. (The real-signal path —
//! SIGTERM against the binary exiting 75 — is covered by the serve smoke
//! in `scripts/verify.sh`, which this suite cannot do in-process.)

use sparten_bench::json::Json;
use sparten_bench::{Capture, ExperimentKind};
use sparten_harness::executor::{self, RunOptions};
use sparten_harness::serve::HarnessBackend;
use sparten_harness::{Experiment, PointPayload};
use sparten_serve::client::{request, Response};
use sparten_serve::{ServeOptions, Server};
use sparten_telemetry::{Telemetry, TraceContext};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A synthetic experiment: deterministic payloads, optional per-point
/// delay (to hold the admission budget in the saturation/drain tests).
struct TestExp {
    name: &'static str,
    points: usize,
    delay: Duration,
}

impl Experiment for TestExp {
    fn name(&self) -> &'static str {
        self.name
    }
    fn kind(&self) -> ExperimentKind {
        ExperimentKind::Study
    }
    fn deps(&self) -> &'static [&'static str] {
        &[]
    }
    fn num_points(&self) -> usize {
        self.points
    }
    fn fingerprint(&self) -> String {
        format!("serve-test:{}:{}", self.name, self.points)
    }
    fn compute_point(&self, point: usize) -> PointPayload {
        if !self.delay.is_zero() {
            thread::sleep(self.delay);
        }
        PointPayload::Record(format!("{} computed point {point}\n", self.name))
    }
    fn compute_point_telemetry(&self, point: usize) -> (PointPayload, Option<Telemetry>) {
        // A per-point simulator session with one "chunk" span, so the
        // serve trace export shows request → point → chunk. Payload bytes
        // are identical to compute_point's (the cache contract).
        let session = Telemetry::new();
        let pid = session.recorder.alloc_process("sim");
        let t0 = Instant::now();
        let payload = self.compute_point(point);
        let took = (t0.elapsed().as_micros() as u64).max(1);
        session.recorder.span(pid, 0, "chunk", 0, took, &[]);
        (payload, Some(session))
    }
    fn render(&self, points: &[PointPayload]) -> Capture {
        let mut text = format!("== {} ==\n", self.name);
        for p in points {
            match p {
                PointPayload::Record(blob) => text.push_str(blob),
                PointPayload::Capture(_) => unreachable!(),
            }
        }
        Capture {
            text,
            artifacts: Vec::new(),
        }
    }
}

fn exp(name: &'static str, points: usize) -> Arc<dyn Experiment> {
    Arc::new(TestExp {
        name,
        points,
        delay: Duration::ZERO,
    })
}

fn slow_exp(name: &'static str, points: usize, delay: Duration) -> Arc<dyn Experiment> {
    Arc::new(TestExp {
        name,
        points,
        delay,
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sparten-serve-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Binds a server over `experiments`, returning the bound address, the
/// shared telemetry (for direct metric assertions), the shutdown flag,
/// and the server thread's join handle.
#[allow(clippy::type_complexity)]
fn start_server(
    experiments: Vec<Arc<dyn Experiment>>,
    cache_dir: &Path,
    journal_dir: Option<PathBuf>,
    max_active: usize,
    max_queued: usize,
) -> (
    String,
    Arc<Telemetry>,
    Arc<AtomicUsize>,
    thread::JoinHandle<sparten_serve::DrainReport>,
) {
    let (addr, telemetry, shutdown, handle, _probe) = start_server_with(
        experiments,
        cache_dir,
        journal_dir,
        max_active,
        max_queued,
        Duration::from_secs(30),
    );
    (addr, telemetry, shutdown, handle)
}

/// [`start_server`] with a configurable read timeout (the resilience
/// tests shrink it so slow-loris reaping is fast) and a [`ServerProbe`]
/// for gate/session invariant assertions.
#[allow(clippy::type_complexity)]
fn start_server_with(
    experiments: Vec<Arc<dyn Experiment>>,
    cache_dir: &Path,
    journal_dir: Option<PathBuf>,
    max_active: usize,
    max_queued: usize,
    read_timeout: Duration,
) -> (
    String,
    Arc<Telemetry>,
    Arc<AtomicUsize>,
    thread::JoinHandle<sparten_serve::DrainReport>,
    sparten_serve::ServerProbe,
) {
    let telemetry = Arc::new(Telemetry::new());
    let backend = Arc::new(
        HarnessBackend::new(experiments, cache_dir.to_path_buf(), journal_dir, false, 2)
            .with_trace_sink(Arc::clone(&telemetry)),
    );
    let shutdown = Arc::new(AtomicUsize::new(0));
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        max_active,
        max_queued,
        read_timeout,
        drain_timeout: Duration::from_secs(30),
        default_deadline: Duration::from_secs(120),
        max_deadline: Duration::from_secs(600),
        shutdown: Arc::clone(&shutdown),
        build: Default::default(),
    };
    let server = Server::bind(backend, Arc::clone(&telemetry), opts).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let probe = server.probe();
    let handle = thread::spawn(move || server.serve());
    (addr, telemetry, shutdown, handle, probe)
}

fn counter(telemetry: &Telemetry, name: &str) -> u64 {
    telemetry.metrics.snapshot().counter(name).unwrap_or(0)
}

/// The `output` field of the final NDJSON `done` event of a streamed run.
fn done_output(response: &Response) -> String {
    let lines = response.lines();
    let last = lines.last().expect("stream has events");
    let event = Json::parse(last).expect("done event parses");
    assert_eq!(
        event.get("status").and_then(Json::as_str),
        Some("ok"),
        "run must succeed: {last}"
    );
    event
        .get("output")
        .and_then(Json::as_str)
        .expect("done carries output")
        .to_string()
}

/// What `harness run` would print for `name`: a direct executor run over
/// the same experiments with its own scratch cache.
fn direct_output(experiments: &[Arc<dyn Experiment>], name: &str, tag: &str) -> String {
    let opts = RunOptions {
        filter: Some(name.to_string()),
        jobs: 2,
        force: false,
        cache_dir: fresh_dir(tag),
        write_artifacts: false,
        stream_output: false,
        telemetry_dir: None,
        max_attempts: 2,
        point_timeout: None,
        failures_path: None,
        journal_dir: None,
        resume: None,
        run_id: None,
        shutdown: None,
        drain_timeout: Duration::from_secs(30),
        abort_after: None,
        progress: None,
        trace: None,
        trace_sink: None,
        trace_epoch: None,
        cancel: None,
        ..RunOptions::default()
    };
    let report = executor::run(experiments, &opts).expect("direct run succeeds");
    let job = report
        .jobs
        .iter()
        .find(|j| j.name == name)
        .expect("job present");
    assert!(job.error.is_none());
    job.output.clone()
}

/// The acceptance-criteria load test: 8 concurrent clients, over half of
/// them duplicates, against 3 unique jobs. Exactly one executor run per
/// unique cache key, zero dropped (non-200) accepted requests, and every
/// payload byte-identical to a direct `harness run` of the same job.
#[test]
fn concurrent_duplicate_requests_share_one_execution() {
    let experiments = vec![exp("srv_a", 2), exp("srv_b", 3), exp("srv_c", 1)];
    let cache_dir = fresh_dir("load-cache");
    let (addr, telemetry, shutdown, handle) =
        start_server(experiments.clone(), &cache_dir, None, 2, 8);

    // 8 clients, 3 unique jobs => 5 of 8 are duplicates (>= 50%).
    let wanted = ["srv_a", "srv_a", "srv_a", "srv_b", "srv_b", "srv_b", "srv_c", "srv_c"];
    let clients: Vec<_> = wanted
        .iter()
        .map(|job| {
            let addr = addr.clone();
            let target = format!("/run?job={job}");
            thread::spawn(move || request(&addr, "POST", &target, None).expect("request"))
        })
        .collect();
    let responses: Vec<Response> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    // Zero dropped accepted requests: every client streamed to completion.
    for response in &responses {
        assert_eq!(response.status, 200);
    }
    // Exactly one executor run per unique key. (Concurrency makes *which*
    // clients coalesce nondeterministic — a late duplicate may arrive
    // after its twin finished and hit the cache instead — but the run
    // count per key cannot exceed one because the first run warms the
    // cache for everyone after it.)
    assert_eq!(counter(&telemetry, "serve/exec.runs"), 3);
    assert_eq!(counter(&telemetry, "serve/exec.failures"), 0);
    assert_eq!(counter(&telemetry, "serve/rejected.saturated"), 0);
    let coalesced = counter(&telemetry, "serve/coalesced");
    let full_hits = counter(&telemetry, "serve/cache.full_hits");
    assert_eq!(coalesced + full_hits, 5, "the 5 duplicates joined or hit");

    // Byte-identical payloads: every duplicate agrees, and each matches a
    // direct executor run of the same job.
    for (job, response) in wanted.iter().zip(&responses) {
        let served = done_output(response);
        let direct = direct_output(&experiments, job, &format!("load-direct-{job}"));
        assert_eq!(served, direct, "served output for {job} must match harness run");
    }

    // The cache now holds every unique point exactly once: 2 + 3 + 1.
    let entries = std::fs::read_dir(&cache_dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "cache"))
        .count();
    assert_eq!(entries, 6, "one cache store per unique point");

    shutdown.store(1, Ordering::SeqCst);
    let report = handle.join().unwrap();
    assert!(report.clean());
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The root trace id minted for a streamed run, from the `accepted`
/// NDJSON event's `trace` field.
fn ndjson_trace(response: &Response) -> u64 {
    let lines = response.lines();
    let first = lines.first().expect("stream has an accepted event");
    let event = Json::parse(first).expect("accepted event parses");
    assert_eq!(event.get("event").and_then(Json::as_str), Some("accepted"));
    let hex = event.get("trace").and_then(Json::as_str).expect("trace field");
    TraceContext::parse_hex(hex).expect("trace id parses")
}

/// Names of the Chrome-trace events whose args carry `trace_id`.
fn trace_event_names(events: &[Json], trace_id: u64) -> Vec<String> {
    events
        .iter()
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Json::as_u64)
                == Some(trace_id)
        })
        .filter_map(|e| e.get("name").and_then(Json::as_str).map(str::to_string))
        .collect()
}

/// The observability acceptance e2e: one POST /run plus one coalesced
/// duplicate produce a single Chrome trace in which the request span,
/// gate verdict, queue wait, executor point spans, and per-chunk
/// simulator spans all carry the runner's trace id — and the follower's
/// request is linked to the runner it joined via `runner_trace`.
#[test]
fn trace_export_links_request_gate_points_and_chunks() {
    let experiments = vec![slow_exp("srv_traced", 2, Duration::from_millis(500))];
    let cache_dir = fresh_dir("trace-cache");
    let (addr, telemetry, shutdown, handle) =
        start_server(experiments, &cache_dir, None, 2, 8);

    let runner = {
        let addr = addr.clone();
        thread::spawn(move || request(&addr, "POST", "/run?job=srv_traced", None).expect("runner"))
    };
    // Wait for the run to be admitted and executing, then join it while
    // its ~500 ms points are still in flight.
    let deadline = Instant::now() + Duration::from_secs(10);
    while counter(&telemetry, "serve/exec.runs") == 0 {
        assert!(Instant::now() < deadline, "runner never started");
        thread::sleep(Duration::from_millis(5));
    }
    let follower_resp = request(&addr, "POST", "/run?job=srv_traced", None).expect("follower");
    let runner_resp = runner.join().unwrap();
    assert_eq!(runner_resp.status, 200);
    assert_eq!(follower_resp.status, 200);
    assert_eq!(counter(&telemetry, "serve/exec.runs"), 1, "one shared execution");
    assert_eq!(counter(&telemetry, "serve/coalesced"), 1, "duplicate joined it");

    let runner_trace = ndjson_trace(&runner_resp);
    let follower_trace = ndjson_trace(&follower_resp);
    assert_ne!(runner_trace, follower_trace, "each request mints its own trace");

    // One /trace download holds the whole correlated timeline.
    let trace = request(&addr, "GET", "/trace", None).expect("trace export");
    assert_eq!(trace.status, 200);
    let parsed = Json::parse(trace.body.trim()).expect("chrome trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    let runner_chain = trace_event_names(events, runner_trace);
    let has = |name: &str| runner_chain.iter().any(|n| n == name);
    assert!(has("request"), "runner request span: {runner_chain:?}");
    assert!(has("gate.runner"), "gate verdict: {runner_chain:?}");
    assert!(has("queue.wait"), "queue wait span: {runner_chain:?}");
    let points = runner_chain.iter().filter(|n| *n == "point").count();
    assert_eq!(points, 2, "one executor span per point: {runner_chain:?}");
    let chunks = runner_chain.iter().filter(|n| *n == "chunk").count();
    assert_eq!(chunks, 2, "one simulator chunk span per point: {runner_chain:?}");

    let follower_chain = trace_event_names(events, follower_trace);
    assert!(
        follower_chain.iter().any(|n| n == "gate.follower"),
        "follower verdict: {follower_chain:?}"
    );
    // The follower's request span names the execution it joined.
    let follower_request = events
        .iter()
        .find(|e| {
            e.get("name").and_then(Json::as_str) == Some("request")
                && e.get("args")
                    .and_then(|a| a.get("trace_id"))
                    .and_then(Json::as_u64)
                    == Some(follower_trace)
        })
        .expect("follower request span");
    assert_eq!(
        follower_request
            .get("args")
            .and_then(|a| a.get("runner_trace"))
            .and_then(Json::as_u64),
        Some(runner_trace),
        "follower links to the runner's trace"
    );

    shutdown.store(1, Ordering::SeqCst);
    assert!(handle.join().unwrap().clean());
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn saturation_rejects_new_jobs_with_429_and_retry_after() {
    let experiments = vec![
        slow_exp("srv_slow_x", 1, Duration::from_millis(700)),
        slow_exp("srv_slow_y", 1, Duration::from_millis(700)),
    ];
    let cache_dir = fresh_dir("saturation-cache");
    // Budget of exactly one admitted run: the second unique job bounces.
    let (addr, telemetry, shutdown, handle) =
        start_server(experiments, &cache_dir, None, 1, 0);

    let runner = {
        let addr = addr.clone();
        thread::spawn(move || request(&addr, "POST", "/run?job=srv_slow_x", None).expect("runner"))
    };
    // Wait until the run is admitted and executing, so the saturation
    // answer below is deterministic, not a race with the runner's accept.
    let deadline = Instant::now() + Duration::from_secs(10);
    while counter(&telemetry, "serve/exec.runs") == 0 {
        assert!(Instant::now() < deadline, "runner never started");
        thread::sleep(Duration::from_millis(5));
    }

    let bounced = request(&addr, "POST", "/run?job=srv_slow_y", None).expect("reject");
    assert_eq!(bounced.status, 429);
    assert_eq!(bounced.header("retry-after"), Some("1"));
    assert_eq!(counter(&telemetry, "serve/rejected.saturated"), 1);

    // A duplicate of the in-flight job is NOT load: it coalesces fine
    // even though the admission budget is spent.
    let follower = request(&addr, "POST", "/run?job=srv_slow_x", None).expect("follower");
    assert_eq!(follower.status, 200);

    assert_eq!(runner.join().unwrap().status, 200);
    assert_eq!(counter(&telemetry, "serve/exec.runs"), 1);

    shutdown.store(1, Ordering::SeqCst);
    assert!(handle.join().unwrap().clean());
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn cache_hits_bypass_the_executor_and_match_harness_run_bytes() {
    let experiments = vec![exp("srv_warm", 3)];
    let cache_dir = fresh_dir("warm-cache");

    // Warm the cache exactly the way `harness run` does: a direct
    // executor run into the same cache directory.
    let opts = RunOptions {
        filter: None,
        jobs: 2,
        force: false,
        cache_dir: cache_dir.clone(),
        write_artifacts: false,
        stream_output: false,
        telemetry_dir: None,
        max_attempts: 2,
        point_timeout: None,
        failures_path: None,
        journal_dir: None,
        resume: None,
        run_id: None,
        shutdown: None,
        drain_timeout: Duration::from_secs(30),
        abort_after: None,
        progress: None,
        trace: None,
        trace_sink: None,
        trace_epoch: None,
        cancel: None,
        ..RunOptions::default()
    };
    let direct = executor::run(&experiments, &opts).expect("warming run");
    let direct_text = direct.jobs[0].output.clone();

    let (addr, telemetry, shutdown, handle) =
        start_server(experiments, &cache_dir, None, 2, 8);

    // The raw-output endpoint is the byte-identity surface.
    let raw = request(&addr, "GET", "/result?job=srv_warm", None).expect("result");
    assert_eq!(raw.status, 200);
    assert_eq!(raw.body, direct_text);

    // The streamed path serves the same bytes in its done event.
    let streamed = request(&addr, "POST", "/run?job=srv_warm", None).expect("run");
    assert_eq!(streamed.status, 200);
    assert_eq!(done_output(&streamed), direct_text);

    // Memory speed means the executor was never touched.
    assert_eq!(counter(&telemetry, "serve/exec.runs"), 0);
    assert_eq!(counter(&telemetry, "serve/cache.full_hits"), 2);

    // /metrics round-trips through the telemetry text format.
    let metrics = request(&addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(metrics.status, 200);
    let parsed = sparten_telemetry::parse_report(&metrics.body).expect("report parses");
    assert_eq!(parsed.counters.get("serve/cache.full_hits"), Some(&2));

    shutdown.store(1, Ordering::SeqCst);
    assert!(handle.join().unwrap().clean());
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Drain: an in-flight request finishes and streams its result, new
/// connections are refused, the executor's journal is sealed (no dangling
/// `*.jsonl`), and the drain report is clean.
#[test]
fn drain_finishes_inflight_requests_and_seals_the_journal() {
    let experiments = vec![slow_exp("srv_drain", 2, Duration::from_millis(400))];
    let cache_dir = fresh_dir("drain-cache");
    let journal_dir = fresh_dir("drain-journal");
    let (addr, telemetry, shutdown, handle) = start_server(
        experiments,
        &cache_dir,
        Some(journal_dir.clone()),
        2,
        8,
    );

    let inflight = {
        let addr = addr.clone();
        thread::spawn(move || request(&addr, "POST", "/run?job=srv_drain", None).expect("inflight"))
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while counter(&telemetry, "serve/exec.runs") == 0 {
        assert!(Instant::now() < deadline, "run never started");
        thread::sleep(Duration::from_millis(5));
    }

    // Raise the drain flag mid-run: the accepted request must complete.
    shutdown.store(1, Ordering::SeqCst);
    let response = inflight.join().unwrap();
    assert_eq!(response.status, 200);
    let output = done_output(&response);
    assert!(output.contains("srv_drain computed point"), "{output}");

    let report = handle.join().unwrap();
    assert!(report.clean(), "drain abandoned sessions: {report:?}");
    assert!(report.sessions_served >= 1);

    // New connections are refused once drained.
    assert!(request(&addr, "GET", "/healthz", None).is_err());

    // The executor journaled the run and sealed it on completion: a
    // drained daemon leaves no dangling journal behind.
    let dangling = std::fs::read_dir(&journal_dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(dangling, 0, "journal must be sealed after a clean drain");

    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_dir_all(&journal_dir);
}

/// Router behavior for the non-run endpoints and malformed input.
#[test]
fn router_answers_health_jobs_and_rejects_garbage() {
    let experiments = vec![exp("srv_meta", 1)];
    let cache_dir = fresh_dir("router-cache");
    let (addr, telemetry, shutdown, handle) =
        start_server(experiments, &cache_dir, None, 2, 8);

    let health = request(&addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);
    assert!(
        health.body.starts_with("ok\n"),
        "healthz body: {}",
        health.body
    );
    assert!(
        health.body.contains("# build version="),
        "healthz carries build info: {}",
        health.body
    );

    let jobs = request(&addr, "GET", "/jobs", None).expect("jobs");
    assert_eq!(jobs.status, 200);
    let parsed = Json::parse(jobs.body.trim()).expect("jobs JSON");
    let Json::Arr(list) = parsed else { panic!("jobs must be an array") };
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].get("name").and_then(Json::as_str), Some("srv_meta"));

    let missing = request(&addr, "POST", "/run?job=unknown_job", None).expect("404");
    assert_eq!(missing.status, 404);
    assert_eq!(counter(&telemetry, "serve/rejected.unknown_job"), 1);

    let no_job = request(&addr, "POST", "/run", None).expect("400");
    assert_eq!(no_job.status, 400);

    let body_run = request(&addr, "POST", "/run", Some("{\"job\": \"srv_meta\"}"))
        .expect("JSON body run");
    assert_eq!(body_run.status, 200);

    let wrong_method = request(&addr, "GET", "/run?job=srv_meta", None).expect("405");
    assert_eq!(wrong_method.status, 405);

    let nowhere = request(&addr, "GET", "/nowhere", None).expect("404 endpoint");
    assert_eq!(nowhere.status, 404);

    shutdown.store(1, Ordering::SeqCst);
    assert!(handle.join().unwrap().clean());
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Slow-loris: a client dripping its request one byte at a time is
/// answered 408 once the *total* read budget runs out (the per-read
/// socket timeout alone would never fire), and the connection never
/// reaches admission — with an execution budget of one, a well-formed
/// request right after still gets the slot.
#[test]
fn slow_loris_is_reaped_within_the_read_budget_without_admission() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let experiments = vec![exp("srv_loris", 1)];
    let cache_dir = fresh_dir("loris-cache");
    let read_timeout = Duration::from_millis(300);
    let (addr, telemetry, shutdown, handle, probe) =
        start_server_with(experiments, &cache_dir, None, 1, 0, read_timeout);

    let started = Instant::now();
    let loris = TcpStream::connect(&addr).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    // Drip header bytes far slower than the read budget allows. The
    // dripper stops when the server reaps the connection (write fails);
    // the iteration bound only guards against a hung test.
    let dripper = {
        let mut stream = loris.try_clone().expect("clone");
        thread::spawn(move || {
            for byte in b"GET /jobs HTTP/1.1\r\nHost: drip\r\n".iter().cycle().take(400) {
                if stream.write_all(&[*byte]).is_err() {
                    break;
                }
                thread::sleep(Duration::from_millis(25));
            }
        })
    };

    let mut reply = String::new();
    let mut stream = loris;
    let _ = stream.read_to_string(&mut reply);
    let reaped_after = started.elapsed();
    drop(stream);
    dripper.join().unwrap();

    assert!(
        reply.starts_with("HTTP/1.1 408"),
        "slow client must be answered 408, got: {reply:?}"
    );
    assert!(
        reaped_after >= Duration::from_millis(250),
        "reaped suspiciously early ({reaped_after:?}): the read budget never armed"
    );
    assert!(
        reaped_after < read_timeout + Duration::from_secs(5),
        "reap took {reaped_after:?}, far beyond the {read_timeout:?} budget"
    );
    assert!(counter(&telemetry, "serve/http.bad_request") >= 1);
    assert_eq!(counter(&telemetry, "serve/exec.runs"), 0, "loris must not reach the executor");
    assert_eq!(probe.gate_admitted(), 0, "loris must not hold admission budget");

    // The single execution slot is free for a real request.
    let ok = request(&addr, "POST", "/run?job=srv_loris", None).expect("well-formed run");
    assert_eq!(ok.status, 200);

    shutdown.store(1, Ordering::SeqCst);
    assert!(handle.join().unwrap().clean());
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Torn request: a client that promises a 100-byte body, sends a
/// fragment, and disconnects is reaped promptly (EOF, not a timeout
/// wait) without consuming an admission slot or executor run.
#[test]
fn torn_request_mid_body_is_reaped_without_admission() {
    use std::io::Write;
    use std::net::TcpStream;

    let experiments = vec![exp("srv_torn", 1)];
    let cache_dir = fresh_dir("torn-cache");
    let read_timeout = Duration::from_millis(300);
    let (addr, telemetry, shutdown, handle, probe) =
        start_server_with(experiments, &cache_dir, None, 1, 0, read_timeout);

    for _ in 0..3 {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(
                b"POST /run HTTP/1.1\r\nHost: torn\r\nContent-Length: 100\r\n\r\npartial-body",
            )
            .expect("torn write");
        drop(stream); // disconnect mid-body
    }

    // All three torn connections must be accepted and reaped within the
    // read budget (EOF reaps immediately; the bound is generous slack).
    let deadline = Instant::now() + read_timeout + Duration::from_secs(10);
    while probe.sessions_served() < 3 {
        assert!(Instant::now() < deadline, "torn connections never reaped");
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(probe.open_sessions(), 0, "reaped sessions must be closed");
    assert_eq!(counter(&telemetry, "serve/exec.runs"), 0, "torn bodies must not execute");
    assert_eq!(probe.gate_admitted(), 0, "torn bodies must not hold admission budget");

    // The single execution slot is free for a real request.
    let ok = request(&addr, "POST", "/run?job=srv_torn", None).expect("well-formed run");
    assert_eq!(ok.status, 200);

    shutdown.store(1, Ordering::SeqCst);
    assert!(handle.join().unwrap().clean());
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Deadline propagation e2e: a request whose budget is already spent
/// (`Deadline-Ms: 0`) is answered 504 at admission — the executor is
/// never dispatched — while the same job with a sane budget runs fine.
#[test]
fn expired_deadline_answers_504_without_dispatching_the_executor() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let experiments = vec![slow_exp("srv_expired", 1, Duration::from_millis(100))];
    let cache_dir = fresh_dir("expired-cache");
    let (addr, telemetry, shutdown, handle) =
        start_server(experiments, &cache_dir, None, 1, 0);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(b"POST /run?job=srv_expired HTTP/1.1\r\nHost: t\r\nDeadline-Ms: 0\r\n\r\n")
        .expect("request write");
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    assert!(
        reply.starts_with("HTTP/1.1 504"),
        "expired deadline must answer 504, got: {reply:?}"
    );
    assert!(reply.contains("deadline-exceeded"), "{reply:?}");
    assert!(reply.contains("\"stage\":\"admission\""), "{reply:?}");
    assert_eq!(counter(&telemetry, "serve/deadline.expired"), 1);
    assert_eq!(counter(&telemetry, "serve/exec.runs"), 0, "504 must precede dispatch");

    // The same job with the default budget executes normally.
    let ok = request(&addr, "POST", "/run?job=srv_expired", None).expect("sane budget");
    assert_eq!(ok.status, 200);
    assert_eq!(counter(&telemetry, "serve/exec.runs"), 1);

    shutdown.store(1, Ordering::SeqCst);
    assert!(handle.join().unwrap().clean());
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Cooperative cancellation e2e: when every subscriber of a run
/// disconnects, the gate fires the run's cancel token, the executor
/// stops at a checkpoint, the run is journaled `cancelled` (sealed — no
/// dangling `*.jsonl`), and the admission permit is released so the next
/// unique job gets the slot.
#[test]
fn abandoned_run_is_cancelled_journaled_and_releases_its_permit() {
    use std::io::Write;
    use std::net::TcpStream;

    let experiments = vec![
        slow_exp("srv_abandon", 6, Duration::from_millis(100)),
        exp("srv_after", 1),
    ];
    let cache_dir = fresh_dir("abandon-cache");
    let journal_dir = fresh_dir("abandon-journal");
    let (addr, telemetry, shutdown, handle, probe) = start_server_with(
        experiments,
        &cache_dir,
        Some(journal_dir.clone()),
        1,
        0,
        Duration::from_secs(30),
    );

    // Kick off the slow run, wait until the executor is actually inside
    // it, then drop the only subscriber.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"POST /run?job=srv_abandon HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("request write");
    let deadline = Instant::now() + Duration::from_secs(10);
    while counter(&telemetry, "serve/exec.runs") == 0 {
        assert!(Instant::now() < deadline, "run never started");
        thread::sleep(Duration::from_millis(5));
    }
    drop(stream);

    // The next finished point notices the empty subscriber list, fires
    // the cancel token, and the run stops at a cancellation checkpoint.
    let deadline = Instant::now() + Duration::from_secs(15);
    while counter(&telemetry, "serve/exec.cancelled") == 0 {
        assert!(Instant::now() < deadline, "abandoned run was never cancelled");
        thread::sleep(Duration::from_millis(10));
    }

    // Permit released: with an execution budget of one, a different job
    // must be admitted. (The cancel counter ticks just before the permit
    // is finished, so tolerate a brief 429 window.)
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let after = request(&addr, "POST", "/run?job=srv_after", None).expect("after request");
        if after.status == 200 {
            break;
        }
        assert_eq!(after.status, 429, "only saturation is acceptable while the cancel settles");
        assert!(Instant::now() < deadline, "permit never released after cancellation");
        thread::sleep(Duration::from_millis(20));
    }

    shutdown.store(1, Ordering::SeqCst);
    let report = handle.join().unwrap();
    assert!(report.clean(), "drain abandoned sessions: {report:?}");
    assert_eq!(probe.gate_admitted(), 0, "cancelled run leaked its permit");
    assert_eq!(probe.gate_active(), 0, "cancelled run leaked its slot");

    // Both runs' journals are sealed: the cancelled one with status
    // `cancelled`, the completed one with `ok` — sealing deletes the
    // file, so any survivor is a leak.
    let dangling = std::fs::read_dir(&journal_dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(dangling, 0, "cancelled run must seal its journal");

    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_dir_all(&journal_dir);
}
