//! SparTen: a from-scratch reproduction of the MICRO 2019 sparse CNN
//! accelerator, its baselines, and its evaluation.
//!
//! This facade re-exports the whole public API:
//!
//! * [`tensor`] — bit-mask sparse tensors (SparseMaps, chunks), CSR/RLE
//!   comparison formats, Z-first layout, the output-region allocator;
//! * [`arch`] — circuit-level models: prefix sums, priority encoder,
//!   inner-join sequencer, output compactor, permutation network;
//! * [`nn`] — CNN substrate: shapes, reference convolution, pruning, the
//!   paper's Table 3 benchmark networks, synthetic workload generation;
//! * [`core`] — the SparTen accelerator: compute clusters, greedy
//!   balancing (GB-S / GB-H), the functional engine, the BLAS-like API;
//! * [`sim`] — cycle-level simulators for Dense, One-sided, SparTen, and
//!   SCNN with the paper's execution-time breakdown;
//! * [`energy`] — the 45 nm energy model (Figure 13) and the cluster ASIC
//!   area/power estimate (Table 4);
//! * [`model`] — first-order analytical throughput/energy model and the
//!   design-space-exploration grids behind `sparten-harness dse`, kept
//!   honest by a differential oracle against the cycle-accurate
//!   simulators;
//! * [`telemetry`] — cycle-level counters, stall-cause tracing, and the
//!   Chrome-trace/plain-text exporters behind `sparten-harness
//!   --telemetry`;
//! * [`faults`] — deterministic fault injection: seeded fault plans over
//!   masks, packed values, compute units, output writes, and cache
//!   entries, with the coverage report behind `sparten-harness faults`.
//!
//! # Quickstart
//!
//! ```
//! use sparten::nn::{alexnet, LayerSpec};
//! use sparten::sim::{simulate_spec, Scheme, SimConfig};
//!
//! let net = alexnet();
//! let layer = &net.layers[2]; // AlexNet Layer2
//! let cfg = SimConfig::large();
//! let dense = simulate_spec(layer, &cfg, Scheme::Dense, 1);
//! let sparten = simulate_spec(layer, &cfg, Scheme::SpartenGbH, 1);
//! assert!(sparten.speedup_over(&dense) > 1.0);
//! ```

pub use sparten_arch as arch;
pub use sparten_core as core;
pub use sparten_faults as faults;
pub use sparten_energy as energy;
pub use sparten_model as model;
pub use sparten_nn as nn;
pub use sparten_sim as sim;
pub use sparten_telemetry as telemetry;
pub use sparten_tensor as tensor;
