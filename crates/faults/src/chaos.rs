//! Network chaos taxonomy and campaign planning for the serve daemon.
//!
//! A separate vocabulary from [`FaultClass`](crate::FaultClass) on
//! purpose: the data-fault campaign perturbs tensors, units, and cache
//! bytes *inside* the stack, while chaos trials attack the serve daemon
//! from *outside* — over real sockets, with the misbehaviors production
//! clients actually exhibit. Keeping the taxonomies apart also keeps the
//! fault campaign's pinned totals (`8 × trials`) and byte-identical
//! report stable.
//!
//! Like the fault plan, a chaos plan is a flat list of seeded trials:
//! the same `(seed, trials_per_class)` always produces the same plan,
//! the same per-trial RNG streams, and — because the report tallies only
//! invariant outcomes, never timings — a byte-identical report.

use crate::rng::FaultRng;
use std::fmt::Write as _;

/// The kinds of client/network misbehavior the chaos campaign drives
/// against a live server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChaosClass {
    /// A request whose body is cut off mid-write: the client advertises
    /// a `Content-Length` and disconnects partway through the body.
    TornBody,
    /// A slow-loris client: the request header arrives one byte at a
    /// time, each byte within the per-read timeout, trying to hold a
    /// connection slot forever.
    SlowLoris,
    /// A client that submits a valid run and disconnects mid-stream,
    /// while the run is still producing progress events.
    MidStreamDisconnect,
    /// A burst of requests carrying deadlines too short to meet (some
    /// already expired), which must all be answered 504/503 without
    /// reaching the executor.
    DeadlineStorm,
    /// More concurrent distinct jobs than the admission budget allows;
    /// the overflow must bounce 429 and the rest must all complete.
    QueueFlood,
}

impl ChaosClass {
    /// All chaos classes, in the fixed campaign order.
    pub fn all() -> &'static [ChaosClass] {
        &[
            ChaosClass::TornBody,
            ChaosClass::SlowLoris,
            ChaosClass::MidStreamDisconnect,
            ChaosClass::DeadlineStorm,
            ChaosClass::QueueFlood,
        ]
    }

    /// Stable human-readable label (used in reports).
    pub fn label(self) -> &'static str {
        match self {
            ChaosClass::TornBody => "torn-body",
            ChaosClass::SlowLoris => "slow-loris",
            ChaosClass::MidStreamDisconnect => "mid-stream-disconnect",
            ChaosClass::DeadlineStorm => "deadline-storm",
            ChaosClass::QueueFlood => "queue-flood",
        }
    }

    fn index(self) -> u64 {
        ChaosClass::all()
            .iter()
            .position(|&c| c == self)
            .expect("class listed in all()") as u64
    }
}

/// One planned chaos trial: a class, a trial index within the class, and
/// the derived seed that makes the trial reproducible in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// What kind of misbehavior to drive.
    pub class: ChaosClass,
    /// Trial index within the class (0-based).
    pub trial: u32,
    /// Seed for this trial's private RNG stream.
    pub seed: u64,
}

impl ChaosSpec {
    /// The trial's private RNG, seeded from [`ChaosSpec::seed`].
    pub fn rng(&self) -> FaultRng {
        FaultRng::seed_from_u64(self.seed)
    }
}

/// Builds the chaos plan: `trials_per_class` trials of every class in
/// [`ChaosClass::all`] order, seeds derived from the campaign seed. The
/// stream space is offset from the fault campaign's (bit 48) so a chaos
/// trial never shares an RNG stream with a fault trial of the same seed.
pub fn chaos_plan(seed: u64, trials_per_class: u32) -> Vec<ChaosSpec> {
    let mut plan = Vec::with_capacity(ChaosClass::all().len() * trials_per_class as usize);
    for &class in ChaosClass::all() {
        for trial in 0..trials_per_class {
            let stream = 1u64 << 48 | class.index() << 32 | u64::from(trial);
            plan.push(ChaosSpec {
                class,
                trial,
                seed: FaultRng::derive(seed, stream),
            });
        }
    }
    plan
}

/// The post-trial invariant verdict for one chaos trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The server survived the trial and every invariant held: no leaked
    /// permits, no open sessions after drain, every journal sealed,
    /// cache uncorrupted, no hung threads.
    Clean,
    /// At least one invariant was violated after the trial.
    Violated,
    /// The trial harness itself panicked (server thread died, driver
    /// crashed) — always a bug.
    Crashed,
}

impl ChaosOutcome {
    /// Stable label used in the rendered report.
    pub fn label(self) -> &'static str {
        match self {
            ChaosOutcome::Clean => "clean",
            ChaosOutcome::Violated => "violated",
            ChaosOutcome::Crashed => "crashed",
        }
    }
}

/// Outcome tallies for one chaos class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassChaos {
    /// Trials with every invariant intact.
    pub clean: u32,
    /// Trials that violated at least one invariant.
    pub violated: u32,
    /// Trials that crashed the harness.
    pub crashed: u32,
}

impl ClassChaos {
    /// Total trials recorded for the class.
    pub fn trials(&self) -> u32 {
        self.clean + self.violated + self.crashed
    }
}

/// Campaign-wide chaos results: one [`ClassChaos`] per class in
/// [`ChaosClass::all`] order, plus violation detail lines and a
/// deterministic text rendering (tallies and messages only — never
/// timings — so equal campaigns render byte-identically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Campaign seed (reproduces the whole report).
    pub seed: u64,
    per_class: Vec<(ChaosClass, ClassChaos)>,
    /// Deterministic violation descriptions: `(class, trial, message)`.
    violations: Vec<(ChaosClass, u32, String)>,
}

impl ChaosReport {
    /// An empty report for the given campaign seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            per_class: ChaosClass::all()
                .iter()
                .map(|&c| (c, ClassChaos::default()))
                .collect(),
            violations: Vec::new(),
        }
    }

    /// Records one trial outcome; `detail` carries the violation or
    /// crash message (must itself be deterministic — invariant names and
    /// counts, not timings or addresses).
    pub fn record(&mut self, class: ChaosClass, trial: u32, outcome: ChaosOutcome, detail: &str) {
        let entry = self
            .per_class
            .iter_mut()
            .find(|(c, _)| *c == class)
            .expect("every class is pre-registered");
        match outcome {
            ChaosOutcome::Clean => entry.1.clean += 1,
            ChaosOutcome::Violated => entry.1.violated += 1,
            ChaosOutcome::Crashed => entry.1.crashed += 1,
        }
        if outcome != ChaosOutcome::Clean {
            self.violations.push((class, trial, detail.to_string()));
        }
    }

    /// Tallies for one class.
    pub fn class(&self, class: ChaosClass) -> ClassChaos {
        self.per_class
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, t)| *t)
            .expect("every class is pre-registered")
    }

    /// Total violated trials across all classes.
    pub fn violated(&self) -> u32 {
        self.per_class.iter().map(|(_, c)| c.violated).sum()
    }

    /// Total crashed trials across all classes.
    pub fn crashed(&self) -> u32 {
        self.per_class.iter().map(|(_, c)| c.crashed).sum()
    }

    /// Total trials recorded.
    pub fn trials(&self) -> u32 {
        self.per_class.iter().map(|(_, c)| c.trials()).sum()
    }

    /// Renders the chaos table plus any violation details.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Chaos campaign (seed {}) ==", self.seed);
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>8} {:>10} {:>8}",
            "chaos class", "trials", "clean", "violated", "crashed"
        );
        for (class, t) in &self.per_class {
            let _ = writeln!(
                out,
                "{:<22} {:>8} {:>8} {:>10} {:>8}",
                class.label(),
                t.trials(),
                t.clean,
                t.violated,
                t.crashed
            );
        }
        for (class, trial, detail) in &self.violations {
            let _ = writeln!(out, "  {} trial {}: {}", class.label(), trial, detail);
        }
        let _ = writeln!(
            out,
            "total: {} trials, {} violated, {} crashed",
            self.trials(),
            self.violated(),
            self.crashed()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_streams_distinct() {
        let a = chaos_plan(42, 3);
        let b = chaos_plan(42, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), ChaosClass::all().len() * 3);
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "per-trial seeds must be distinct");
        // Disjoint from the fault campaign's streams for the same seed.
        let fault_seeds: Vec<u64> = crate::campaign_plan(42, 3).iter().map(|s| s.seed).collect();
        assert!(seeds.iter().all(|s| !fault_seeds.contains(s)));
    }

    #[test]
    fn reports_render_byte_identically_for_equal_campaigns() {
        let mut a = ChaosReport::new(9);
        let mut b = ChaosReport::new(9);
        for r in [&mut a, &mut b] {
            r.record(ChaosClass::TornBody, 0, ChaosOutcome::Clean, "");
            r.record(
                ChaosClass::QueueFlood,
                1,
                ChaosOutcome::Violated,
                "leaked 1 permit",
            );
            r.record(ChaosClass::SlowLoris, 0, ChaosOutcome::Crashed, "panic");
        }
        assert_eq!(a.render(), b.render());
        assert_eq!(a.trials(), 3);
        assert_eq!(a.violated(), 1);
        assert_eq!(a.crashed(), 1);
        assert!(a.render().contains("leaked 1 permit"));
        assert!(a.render().contains("total: 3 trials, 1 violated, 1 crashed"));
    }
}
