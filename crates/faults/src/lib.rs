//! Deterministic fault injection for the SparTen reproduction.
//!
//! This crate is dependency-free and holds everything the fault campaign
//! needs that does *not* depend on the rest of the workspace: a seeded
//! PRNG ([`FaultRng`]), the fault taxonomy and campaign plan
//! ([`FaultClass`], [`FaultSpec`], [`campaign_plan`]), the injection
//! configuration types consumed by the simulators and engine
//! ([`UnitFault`], [`UnitFaultSpec`], [`DropSpec`]), and the outcome
//! bookkeeping that turns per-trial verdicts into a coverage report
//! ([`FaultOutcome`], [`CoverageReport`]).
//!
//! The higher layers (tensor, core, sim, harness) depend on this crate;
//! it depends on nothing, so the fault vocabulary is shared without
//! creating dependency cycles.
//!
//! Everything here is deterministic: the same campaign seed produces the
//! same plan, the same per-trial RNG streams, and therefore (given a
//! deterministic system under test) a byte-identical coverage report.

#![warn(missing_docs)]

pub mod chaos;
pub mod disk;
pub mod outcome;
pub mod plan;
pub mod rng;

pub use chaos::{chaos_plan, ChaosClass, ChaosOutcome, ChaosReport, ChaosSpec, ClassChaos};
pub use disk::{disk_plan, ClassDisk, DiskFaultClass, DiskOutcome, DiskReport, DiskSpec};
pub use outcome::{ClassCoverage, CoverageReport, FaultOutcome};
pub use plan::{campaign_plan, DropSpec, FaultClass, FaultSpec, UnitFault, UnitFaultSpec};
pub use rng::FaultRng;
