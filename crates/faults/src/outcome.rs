//! Per-trial outcome classification and campaign coverage reporting.

use crate::plan::FaultClass;
use std::fmt::Write as _;

/// What happened to one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The stack surfaced a typed error or a failed invariant check.
    Detected,
    /// The fault was provably absorbed: the observable result matches
    /// the fault-free reference (e.g. a straggler that only moves
    /// timing, or a drop index past the last write).
    Masked,
    /// The fault changed the result and nothing noticed — the failure
    /// mode the campaign exists to rule out.
    SilentlyWrong,
    /// The trial aborted with a panic instead of a typed error.
    Crashed,
}

impl FaultOutcome {
    /// Stable label used in the rendered report.
    pub fn label(self) -> &'static str {
        match self {
            FaultOutcome::Detected => "detected",
            FaultOutcome::Masked => "masked",
            FaultOutcome::SilentlyWrong => "silently-wrong",
            FaultOutcome::Crashed => "crashed",
        }
    }
}

/// Outcome tallies for one fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCoverage {
    /// Trials that surfaced a typed error / invariant failure.
    pub detected: u32,
    /// Trials provably absorbed with a reference-matching result.
    pub masked: u32,
    /// Trials that corrupted the result without detection.
    pub silently_wrong: u32,
    /// Trials that panicked instead of returning a typed error.
    pub crashed: u32,
}

impl ClassCoverage {
    /// Total trials recorded for the class.
    pub fn trials(&self) -> u32 {
        self.detected + self.masked + self.silently_wrong + self.crashed
    }
}

/// Campaign-wide coverage: one [`ClassCoverage`] per fault class, in
/// [`FaultClass::all`] order, plus a deterministic text rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Campaign seed (reproduces the whole report).
    pub seed: u64,
    per_class: Vec<(FaultClass, ClassCoverage)>,
}

impl CoverageReport {
    /// An empty report for the given campaign seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            per_class: FaultClass::all()
                .iter()
                .map(|&c| (c, ClassCoverage::default()))
                .collect(),
        }
    }

    /// Records one trial outcome.
    pub fn record(&mut self, class: FaultClass, outcome: FaultOutcome) {
        let entry = self
            .per_class
            .iter_mut()
            .find(|(c, _)| *c == class)
            .expect("every class is pre-registered");
        match outcome {
            FaultOutcome::Detected => entry.1.detected += 1,
            FaultOutcome::Masked => entry.1.masked += 1,
            FaultOutcome::SilentlyWrong => entry.1.silently_wrong += 1,
            FaultOutcome::Crashed => entry.1.crashed += 1,
        }
    }

    /// Coverage for one class.
    pub fn class(&self, class: FaultClass) -> ClassCoverage {
        self.per_class
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, cov)| *cov)
            .expect("every class is pre-registered")
    }

    /// Total silently-wrong trials across all classes.
    pub fn silently_wrong(&self) -> u32 {
        self.per_class.iter().map(|(_, c)| c.silently_wrong).sum()
    }

    /// Total crashed trials across all classes.
    pub fn crashed(&self) -> u32 {
        self.per_class.iter().map(|(_, c)| c.crashed).sum()
    }

    /// Total trials recorded.
    pub fn trials(&self) -> u32 {
        self.per_class.iter().map(|(_, c)| c.trials()).sum()
    }

    /// Renders the coverage table. Deterministic: depends only on the
    /// recorded tallies, so equal campaigns render byte-identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Fault campaign (seed {}) ==", self.seed);
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>8} {:>8} {:>14} {:>8}",
            "fault class", "trials", "detected", "masked", "silently-wrong", "crashed"
        );
        for (class, cov) in &self.per_class {
            let _ = writeln!(
                out,
                "{:<18} {:>8} {:>8} {:>8} {:>14} {:>8}",
                class.label(),
                cov.trials(),
                cov.detected,
                cov.masked,
                cov.silently_wrong,
                cov.crashed
            );
        }
        let _ = writeln!(
            out,
            "total: {} trials, {} silently-wrong, {} crashed",
            self.trials(),
            self.silently_wrong(),
            self.crashed()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut r = CoverageReport::new(1);
        r.record(FaultClass::MaskBitFlip, FaultOutcome::Detected);
        r.record(FaultClass::MaskBitFlip, FaultOutcome::Detected);
        r.record(FaultClass::SlowUnit, FaultOutcome::Masked);
        r.record(FaultClass::DroppedOutput, FaultOutcome::SilentlyWrong);
        r.record(FaultClass::CacheCorruption, FaultOutcome::Crashed);
        assert_eq!(r.class(FaultClass::MaskBitFlip).detected, 2);
        assert_eq!(r.trials(), 5);
        assert_eq!(r.silently_wrong(), 1);
        assert_eq!(r.crashed(), 1);
    }

    #[test]
    fn render_is_deterministic() {
        let mut a = CoverageReport::new(7);
        let mut b = CoverageReport::new(7);
        for r in [&mut a, &mut b] {
            r.record(FaultClass::StuckUnit, FaultOutcome::Detected);
            r.record(FaultClass::ValueTruncation, FaultOutcome::Detected);
        }
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("stuck-unit"));
        assert!(a.render().contains("silently-wrong"));
    }

    #[test]
    fn render_lists_every_class() {
        let r = CoverageReport::new(0);
        let text = r.render();
        for class in FaultClass::all() {
            assert!(text.contains(class.label()), "missing {}", class.label());
        }
    }
}
