//! Disk-fault taxonomy and campaign planning for the storage layer.
//!
//! A third vocabulary alongside [`FaultClass`](crate::FaultClass) (data
//! faults inside the compute stack) and [`ChaosClass`](crate::ChaosClass)
//! (hostile clients over real sockets): disk faults attack the *durable
//! state* underneath the harness — the journal, the result cache, the
//! artifacts — through the `Vfs` seam, the way SQLite's test VFS and
//! FoundationDB's simulator do. The filesystem lies in a handful of
//! well-known ways (writes fail when the disk fills, writes tear short,
//! `fsync` fails, `rename` fails, bits rot at rest) and each way is its
//! own campaign class so the report attributes recovery bugs to the lie
//! that exposed them.
//!
//! Like the other two plans, a disk plan is a flat list of seeded trials:
//! the same `(seed, trials_per_class)` always produces the same plan and
//! the same per-trial RNG streams, and — because the report tallies only
//! invariant outcomes, never timings — a byte-identical report.

use crate::rng::FaultRng;
use std::fmt::Write as _;

/// The kinds of filesystem misbehavior the disk-fault campaign injects
/// underneath the harness's durable-state writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiskFaultClass {
    /// The disk fills mid-run: after a seeded byte budget every write
    /// fails with `ENOSPC`, possibly leaving a short prefix behind.
    Enospc,
    /// Writes tear: a seeded fraction of writes persist only a strict
    /// prefix of the buffer and report an error.
    ShortWrite,
    /// `fsync` fails: a seeded fraction of `sync_data`/`sync_all` calls
    /// report an error, and the unsynced bytes may be lost at power cut.
    FsyncFailure,
    /// `rename` fails: a seeded fraction of renames (the commit step of
    /// every atomic write) report an error and leave the temp file.
    RenameFailure,
    /// Bits rot at rest: a seeded fraction of reads come back with one
    /// bit flipped somewhere in the buffer.
    BitRot,
}

impl DiskFaultClass {
    /// All disk-fault classes, in the fixed campaign order.
    pub fn all() -> &'static [DiskFaultClass] {
        &[
            DiskFaultClass::Enospc,
            DiskFaultClass::ShortWrite,
            DiskFaultClass::FsyncFailure,
            DiskFaultClass::RenameFailure,
            DiskFaultClass::BitRot,
        ]
    }

    /// Stable human-readable label (used in reports).
    pub fn label(self) -> &'static str {
        match self {
            DiskFaultClass::Enospc => "enospc",
            DiskFaultClass::ShortWrite => "short-write",
            DiskFaultClass::FsyncFailure => "fsync-failure",
            DiskFaultClass::RenameFailure => "rename-failure",
            DiskFaultClass::BitRot => "bit-rot",
        }
    }

    fn index(self) -> u64 {
        DiskFaultClass::all()
            .iter()
            .position(|&c| c == self)
            .expect("class listed in all()") as u64
    }
}

/// One planned disk-fault trial: a class, a trial index within the class,
/// and the derived seed that makes the trial reproducible in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskSpec {
    /// Which filesystem lie to inject.
    pub class: DiskFaultClass,
    /// Trial index within the class (0-based).
    pub trial: u32,
    /// Seed for this trial's private RNG stream.
    pub seed: u64,
}

impl DiskSpec {
    /// The trial's private RNG, seeded from [`DiskSpec::seed`].
    pub fn rng(&self) -> FaultRng {
        FaultRng::seed_from_u64(self.seed)
    }
}

/// Builds the disk plan: `trials_per_class` trials of every class in
/// [`DiskFaultClass::all`] order, seeds derived from the campaign seed.
/// The stream space is offset from both the fault campaign's (no offset)
/// and the chaos campaign's (bit 48) so a disk trial never shares an RNG
/// stream with either for the same seed.
pub fn disk_plan(seed: u64, trials_per_class: u32) -> Vec<DiskSpec> {
    let mut plan = Vec::with_capacity(DiskFaultClass::all().len() * trials_per_class as usize);
    for &class in DiskFaultClass::all() {
        for trial in 0..trials_per_class {
            let stream = 2u64 << 48 | class.index() << 32 | u64::from(trial);
            plan.push(DiskSpec {
                class,
                trial,
                seed: FaultRng::derive(seed, stream),
            });
        }
    }
    plan
}

/// The post-trial recovery verdict for one disk-fault trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOutcome {
    /// The faulted run degraded gracefully and the simulated power cut
    /// recovered (fsck + resume) to a byte-identical clean-prefix state.
    Clean,
    /// At least one recovery invariant was violated: a torn artifact was
    /// trusted, a journaled-complete point was lost, or the recovered
    /// tree diverged from the clean run.
    Violated,
    /// The trial harness itself panicked — always a bug.
    Crashed,
}

impl DiskOutcome {
    /// Stable label used in the rendered report.
    pub fn label(self) -> &'static str {
        match self {
            DiskOutcome::Clean => "clean",
            DiskOutcome::Violated => "violated",
            DiskOutcome::Crashed => "crashed",
        }
    }
}

/// Outcome tallies for one disk-fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassDisk {
    /// Trials whose power cut recovered cleanly.
    pub clean: u32,
    /// Trials that violated at least one recovery invariant.
    pub violated: u32,
    /// Trials that crashed the harness.
    pub crashed: u32,
}

impl ClassDisk {
    /// Total trials recorded for the class.
    pub fn trials(&self) -> u32 {
        self.clean + self.violated + self.crashed
    }
}

/// Campaign-wide disk-fault results: one [`ClassDisk`] per class in
/// [`DiskFaultClass::all`] order, plus violation detail lines and a
/// deterministic text rendering (tallies and messages only — never
/// timings — so equal campaigns render byte-identically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskReport {
    /// Campaign seed (reproduces the whole report).
    pub seed: u64,
    per_class: Vec<(DiskFaultClass, ClassDisk)>,
    /// Deterministic violation descriptions: `(class, trial, message)`.
    violations: Vec<(DiskFaultClass, u32, String)>,
}

impl DiskReport {
    /// An empty report for the given campaign seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            per_class: DiskFaultClass::all()
                .iter()
                .map(|&c| (c, ClassDisk::default()))
                .collect(),
            violations: Vec::new(),
        }
    }

    /// Records one trial outcome; `detail` carries the violation or
    /// crash message (must itself be deterministic — invariant names and
    /// counts, not timings, pids, or absolute paths).
    pub fn record(
        &mut self,
        class: DiskFaultClass,
        trial: u32,
        outcome: DiskOutcome,
        detail: &str,
    ) {
        let entry = self
            .per_class
            .iter_mut()
            .find(|(c, _)| *c == class)
            .expect("every class is pre-registered");
        match outcome {
            DiskOutcome::Clean => entry.1.clean += 1,
            DiskOutcome::Violated => entry.1.violated += 1,
            DiskOutcome::Crashed => entry.1.crashed += 1,
        }
        if outcome != DiskOutcome::Clean {
            self.violations.push((class, trial, detail.to_string()));
        }
    }

    /// Tallies for one class.
    pub fn class(&self, class: DiskFaultClass) -> ClassDisk {
        self.per_class
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, t)| *t)
            .expect("every class is pre-registered")
    }

    /// Total violated trials across all classes.
    pub fn violated(&self) -> u32 {
        self.per_class.iter().map(|(_, c)| c.violated).sum()
    }

    /// Total crashed trials across all classes.
    pub fn crashed(&self) -> u32 {
        self.per_class.iter().map(|(_, c)| c.crashed).sum()
    }

    /// Total trials recorded.
    pub fn trials(&self) -> u32 {
        self.per_class.iter().map(|(_, c)| c.trials()).sum()
    }

    /// Renders the disk-fault table plus any violation details.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Disk-fault campaign (seed {}) ==", self.seed);
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>8} {:>10} {:>8}",
            "disk fault", "trials", "clean", "violated", "crashed"
        );
        for (class, t) in &self.per_class {
            let _ = writeln!(
                out,
                "{:<22} {:>8} {:>8} {:>10} {:>8}",
                class.label(),
                t.trials(),
                t.clean,
                t.violated,
                t.crashed
            );
        }
        for (class, trial, detail) in &self.violations {
            let _ = writeln!(out, "  {} trial {}: {}", class.label(), trial, detail);
        }
        let _ = writeln!(
            out,
            "total: {} trials, {} violated, {} crashed",
            self.trials(),
            self.violated(),
            self.crashed()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_streams_distinct() {
        let a = disk_plan(42, 3);
        let b = disk_plan(42, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), DiskFaultClass::all().len() * 3);
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "per-trial seeds must be distinct");
        // Disjoint from both sibling campaigns' streams for the same seed.
        let fault_seeds: Vec<u64> = crate::campaign_plan(42, 3).iter().map(|s| s.seed).collect();
        let chaos_seeds: Vec<u64> = crate::chaos_plan(42, 3).iter().map(|s| s.seed).collect();
        assert!(seeds.iter().all(|s| !fault_seeds.contains(s)));
        assert!(seeds.iter().all(|s| !chaos_seeds.contains(s)));
    }

    #[test]
    fn reports_render_byte_identically_for_equal_campaigns() {
        let mut a = DiskReport::new(9);
        let mut b = DiskReport::new(9);
        for r in [&mut a, &mut b] {
            r.record(DiskFaultClass::Enospc, 0, DiskOutcome::Clean, "");
            r.record(
                DiskFaultClass::BitRot,
                1,
                DiskOutcome::Violated,
                "artifact diverged",
            );
            r.record(DiskFaultClass::ShortWrite, 0, DiskOutcome::Crashed, "panic");
        }
        assert_eq!(a.render(), b.render());
        assert_eq!(a.trials(), 3);
        assert_eq!(a.violated(), 1);
        assert_eq!(a.crashed(), 1);
        assert!(a.render().contains("artifact diverged"));
        assert!(a.render().contains("total: 3 trials, 1 violated, 1 crashed"));
    }
}
