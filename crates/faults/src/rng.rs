//! Seeded PRNG for fault planning and injection.
//!
//! Mirrors the xorshift64* generator used by `sparten-tensor`'s workload
//! generation (same splitmix64 seeding, same output scrambler) so fault
//! streams are reproducible across the whole workspace without this
//! crate depending on the tensor crate.

/// A deterministic xorshift64* generator seeded through splitmix64.
///
/// Identical seeds produce identical streams on every platform. Distinct
/// fault trials derive distinct seeds via [`FaultRng::derive`], which
/// mixes a stream index through the splitmix64 finalizer so nearby
/// trial indices still get statistically independent streams.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

/// Splitmix64 finalizer: scrambles a 64-bit value into a well-mixed one.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultRng {
    /// Creates a generator from a seed via the splitmix64 finalizer.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mixed = splitmix64(seed);
        // xorshift64* requires nonzero state.
        Self {
            state: if mixed == 0 { 0x9e37_79b9_7f4a_7c15 } else { mixed },
        }
    }

    /// Derives a child seed for an independent stream: mixes `stream`
    /// into `seed` so campaigns can give every (class, trial) pair its
    /// own reproducible generator.
    pub fn derive(seed: u64, stream: u64) -> u64 {
        splitmix64(seed ^ splitmix64(stream))
    }

    /// Next raw 64-bit output (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n`. `n` must be nonzero.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range requires a nonzero bound");
        self.next_u64() % n
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultRng::seed_from_u64(42);
        let mut b = FaultRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultRng::seed_from_u64(1);
        let mut b = FaultRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_separates_streams() {
        let s0 = FaultRng::derive(7, 0);
        let s1 = FaultRng::derive(7, 1);
        assert_ne!(s0, s1);
        // Deriving is itself deterministic.
        assert_eq!(s0, FaultRng::derive(7, 0));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = FaultRng::seed_from_u64(0);
        let v = r.next_u64();
        assert_ne!(v, r.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = FaultRng::seed_from_u64(9);
        for _ in 0..256 {
            assert!(r.gen_range(13) < 13);
        }
    }
}
