//! Fault taxonomy, campaign planning, and injection configuration.
//!
//! A campaign is a flat list of [`FaultSpec`]s — one per (class, trial)
//! pair — each carrying its own derived seed so trials can run in any
//! order (or in parallel) and still reproduce exactly.

use crate::rng::FaultRng;

/// The kinds of fault the campaign can inject.
///
/// Data faults (mask bit flips, value corruption/truncation) perturb a
/// `SparseTensor3` after construction; timing faults (slow/stuck units)
/// perturb the cycle simulators; `DroppedOutput` perturbs the engine's
/// output-collector writes; the cache faults perturb serialized harness
/// cache entries on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// Flip one bit in one chunk's `SparseMap`, desynchronizing the
    /// popcount from the packed value count.
    MaskBitFlip,
    /// Overwrite one packed value with a non-canonical one (0.0 or NaN).
    ValueCorruption,
    /// Truncate the packed value store, leaving directory pointers
    /// dangling past the end.
    ValueTruncation,
    /// One compute unit takes a multiple of its true latency (straggler).
    SlowUnit,
    /// One compute unit never completes assigned work.
    StuckUnit,
    /// The output collector silently drops one nonzero write.
    DroppedOutput,
    /// One byte of a serialized cache entry is XOR-corrupted on disk.
    CacheCorruption,
    /// A serialized cache entry is truncated on disk.
    CacheTruncation,
}

impl FaultClass {
    /// All fault classes, in the fixed campaign order.
    pub fn all() -> &'static [FaultClass] {
        &[
            FaultClass::MaskBitFlip,
            FaultClass::ValueCorruption,
            FaultClass::ValueTruncation,
            FaultClass::SlowUnit,
            FaultClass::StuckUnit,
            FaultClass::DroppedOutput,
            FaultClass::CacheCorruption,
            FaultClass::CacheTruncation,
        ]
    }

    /// Stable human-readable label (used in reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::MaskBitFlip => "mask-bit-flip",
            FaultClass::ValueCorruption => "value-corruption",
            FaultClass::ValueTruncation => "value-truncation",
            FaultClass::SlowUnit => "slow-unit",
            FaultClass::StuckUnit => "stuck-unit",
            FaultClass::DroppedOutput => "dropped-output",
            FaultClass::CacheCorruption => "cache-corruption",
            FaultClass::CacheTruncation => "cache-truncation",
        }
    }

    /// Position of this class in [`FaultClass::all`].
    fn index(self) -> u64 {
        FaultClass::all()
            .iter()
            .position(|&c| c == self)
            .expect("class listed in all()") as u64
    }
}

/// One planned fault trial: a class, a trial index within the class,
/// and the derived seed that makes the trial reproducible in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What kind of fault to inject.
    pub class: FaultClass,
    /// Trial index within the class (0-based).
    pub trial: u32,
    /// Seed for this trial's private RNG stream.
    pub seed: u64,
}

impl FaultSpec {
    /// The trial's private RNG, seeded from [`FaultSpec::seed`].
    pub fn rng(&self) -> FaultRng {
        FaultRng::seed_from_u64(self.seed)
    }
}

/// Builds the campaign plan: `trials_per_class` trials of every class in
/// [`FaultClass::all`] order, each with a seed derived from the campaign
/// seed so the plan (and everything downstream of it) is a pure function
/// of `(seed, trials_per_class)`.
pub fn campaign_plan(seed: u64, trials_per_class: u32) -> Vec<FaultSpec> {
    let mut plan = Vec::with_capacity(FaultClass::all().len() * trials_per_class as usize);
    for &class in FaultClass::all() {
        for trial in 0..trials_per_class {
            let stream = class.index() << 32 | u64::from(trial);
            plan.push(FaultSpec {
                class,
                trial,
                seed: FaultRng::derive(seed, stream),
            });
        }
    }
    plan
}

/// How a faulty compute unit misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitFault {
    /// The unit's per-chunk latency is multiplied by this factor
    /// (a straggler). Work results are still correct; only timing moves.
    Slow(u64),
    /// The unit never finishes: any nonzero work assigned to it makes
    /// the simulated layer unrecoverable.
    Stuck,
}

/// Targets one compute unit in one cluster with a [`UnitFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitFaultSpec {
    /// Cluster index (SCNN: PE index; `cluster` is the flat PE id).
    pub cluster: usize,
    /// Unit index within the cluster (ignored by SCNN's PE-level model).
    pub unit: usize,
    /// The misbehaviour to inject.
    pub fault: UnitFault,
}

/// Tells the engine's output collector to silently drop the `n`-th
/// nonzero write of the layer (0-based, counted across the whole layer
/// in write order). If fewer nonzero writes occur, nothing is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropSpec {
    /// Index of the nonzero write to suppress.
    pub nth_nonzero_write: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic() {
        assert_eq!(campaign_plan(1, 4), campaign_plan(1, 4));
        assert_ne!(campaign_plan(1, 4), campaign_plan(2, 4));
    }

    #[test]
    fn plan_covers_every_class() {
        let plan = campaign_plan(3, 2);
        assert_eq!(plan.len(), FaultClass::all().len() * 2);
        for &class in FaultClass::all() {
            assert_eq!(plan.iter().filter(|s| s.class == class).count(), 2);
        }
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let plan = campaign_plan(5, 8);
        let mut seeds: Vec<u64> = plan.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), plan.len(), "derived seeds must not collide");
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = FaultClass::all().iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FaultClass::all().len());
    }
}
