//! Hardware configurations (Table 2 of the paper).
//!
//! The paper evaluates an aggressive "large" configuration for AlexNet and
//! VGGNet (32 MACs/cluster × 32 clusters = 1K MACs) and a scaled-down
//! "small" one (16 × 16) for GoogLeNet, keeping resources matched across the
//! compared architectures. The chunk size is 128; the GB-H permutation
//! network bisection is thinned to 4 values per cycle (1/8 provisioning).

/// Configuration of a single SparTen cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterConfig {
    /// Compute units (multiply-accumulate units) per cluster.
    pub compute_units: usize,
    /// Chunk size n (SparseMap width), 128 in the paper.
    pub chunk_size: usize,
    /// Per-wave bisection budget of the GB-H permutation network.
    pub bisection_limit: usize,
}

impl ClusterConfig {
    /// The paper's cluster: 32 compute units, 128-wide chunks, bisection 4.
    pub fn paper() -> Self {
        ClusterConfig {
            compute_units: 32,
            chunk_size: 128,
            bisection_limit: 4,
        }
    }

    /// Per-cluster buffering in bytes with collocation (GB-S/GB-H), per
    /// §3.3's arithmetic: `[input (128 B + 128 b) + 2 filters (128 B + 128 b
    /// each) + 2 outputs (32 B)] × units × 2 (double buffering)` ≈ 31 KB for
    /// the paper configuration.
    pub fn buffer_bytes_collocated(&self) -> usize {
        let mask_bytes = self.chunk_size / 8;
        let data_bytes = self.chunk_size; // 1-byte values in the paper
        let input = data_bytes + mask_bytes;
        let filters = 2 * (data_bytes + mask_bytes);
        let outputs = 2 * self.compute_units; // one byte per cell per filter
        (input + filters + outputs) * self.compute_units * 2
    }

    /// Per-cluster buffering without collocation (§3.2's 20 KB figure).
    pub fn buffer_bytes_plain(&self) -> usize {
        let mask_bytes = self.chunk_size / 8;
        let data_bytes = self.chunk_size;
        let input = data_bytes + mask_bytes;
        let filter = data_bytes + mask_bytes;
        let output = self.compute_units;
        (input + filter + output) * self.compute_units * 2
    }
}

/// Configuration of the whole accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcceleratorConfig {
    /// Per-cluster configuration.
    pub cluster: ClusterConfig,
    /// Number of clusters.
    pub num_clusters: usize,
}

impl AcceleratorConfig {
    /// Table 2 "large": 32 MACs/cluster × 32 clusters (AlexNet, VGGNet).
    pub fn large() -> Self {
        AcceleratorConfig {
            cluster: ClusterConfig::paper(),
            num_clusters: 32,
        }
    }

    /// Table 2 "small": 16 MACs/cluster × 16 clusters (GoogLeNet).
    pub fn small() -> Self {
        AcceleratorConfig {
            cluster: ClusterConfig {
                compute_units: 16,
                chunk_size: 128,
                bisection_limit: 4,
            },
            num_clusters: 16,
        }
    }

    /// The FPGA prototype: one 32-unit cluster (§4's Cyclone IV build).
    pub fn fpga() -> Self {
        AcceleratorConfig {
            cluster: ClusterConfig::paper(),
            num_clusters: 1,
        }
    }

    /// Total multiply-accumulate units.
    pub fn total_macs(&self) -> usize {
        self.cluster.compute_units * self.num_clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_config_has_1k_macs() {
        assert_eq!(AcceleratorConfig::large().total_macs(), 1024);
    }

    #[test]
    fn small_config_has_256_macs() {
        assert_eq!(AcceleratorConfig::small().total_macs(), 256);
    }

    #[test]
    fn collocated_buffering_matches_paper_31kb() {
        // §3.3: 31 KB total for a 32-unit cluster (≈ 992 B per multiplier).
        let b = ClusterConfig::paper().buffer_bytes_collocated();
        assert_eq!(b, 31 * 1024);
        assert_eq!(b / 32, 992);
    }

    #[test]
    fn plain_buffering_matches_paper_20kb() {
        // §3.2: 20 KB total (640 B per multiplier).
        let b = ClusterConfig::paper().buffer_bytes_plain();
        assert_eq!(b, 20 * 1024);
        assert_eq!(b / 32, 640);
    }

    #[test]
    fn fpga_is_single_cluster() {
        assert_eq!(AcceleratorConfig::fpga().num_clusters, 1);
    }
}
