//! The functional SparTen engine: numerically exact layer execution.
//!
//! This is the paper's §3.2 microarchitecture run as software: clusters own
//! contiguous spatial slices of the output map; within a cluster each
//! compute unit holds its assigned filter chunk(s) and inner-joins them
//! against the broadcast input-window chunks; GB-H partial sums travel
//! through the permutation network; the output collector compacts each
//! produced output group on the fly.
//!
//! The engine doubles as the correctness oracle (its output must equal the
//! dense reference convolution for every mode and stride) and as the source
//! of exact per-unit work traces that the cycle-level simulators in
//! `sparten-sim` cross-check against.

use sparten_arch::fast;
use sparten_arch::PermutationNetwork;
use sparten_faults::DropSpec;
use sparten_nn::generate::Workload;
use sparten_tensor::{SparseVector, Tensor3};

use crate::balance::{BalanceMode, LayerBalance};
use crate::chunking::{filter_to_chunks, linearize_window_padded};
use crate::config::AcceleratorConfig;
use crate::error::SimError;

/// Exact per-cluster work accounting from a functional run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterTrace {
    /// Σ over (group, position, chunk) of the slowest unit's join work —
    /// the cluster's compute time under per-chunk broadcast barriers.
    pub barrier_cycles: u64,
    /// Per-unit total join work (useful MAC cycles).
    pub unit_busy: Vec<u64>,
    /// Partial sums routed through the permutation network (GB-H only).
    pub routed_values: u64,
    /// Total permutation-network waves consumed (GB-H only).
    pub route_waves: u64,
    /// Non-zero output values this cluster wrote.
    pub output_nnz: u64,
}

/// Whole-accelerator work trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkTrace {
    /// One trace per cluster.
    pub clusters: Vec<ClusterTrace>,
}

impl WorkTrace {
    /// Total useful multiply-accumulates across the accelerator.
    pub fn total_macs(&self) -> u64 {
        self.clusters
            .iter()
            .map(|c| c.unit_busy.iter().sum::<u64>())
            .sum()
    }

    /// The slowest cluster's barrier time — the layer's compute makespan.
    pub fn makespan(&self) -> u64 {
        self.clusters
            .iter()
            .map(|c| c.barrier_cycles)
            .max()
            .unwrap_or(0)
    }
}

/// Result of running one layer on the functional engine.
#[derive(Debug, Clone)]
pub struct LayerRun {
    /// Output tensor with channels in *produced* order (post-GB shuffle).
    pub produced: Tensor3,
    /// The balance assignment used.
    pub balance: LayerBalance,
    /// Exact work accounting.
    pub trace: WorkTrace,
}

impl LayerRun {
    /// Reorders the produced channels back to logical filter order —
    /// equivalent to what GB-S's static next-layer unshuffle absorbs.
    pub fn logical_output(&self) -> Tensor3 {
        let p = &self.produced;
        let mut out = Tensor3::zeros(p.channels(), p.height(), p.width());
        for (pos, &logical) in self.balance.produced_channels.iter().enumerate() {
            for y in 0..p.width() {
                for x in 0..p.height() {
                    out.set(logical, x, y, p.get(pos, x, y));
                }
            }
        }
        out
    }

    /// The produced output in SparTen's chunked storage format (one
    /// `(SparseMap, pointer)` directory entry per fiber chunk) — what the
    /// next layer's input fetch actually reads.
    pub fn produced_sparse(&self, chunk_size: usize) -> sparten_tensor::SparseTensor3 {
        sparten_tensor::SparseTensor3::from_dense(&self.produced, chunk_size)
    }

    /// Cross-checks the output collector's bookkeeping: the nonzero
    /// count the trace reported to the CPU must equal the nonzero values
    /// actually stored (re-sparsified at `chunk_size`). A dropped
    /// collector write breaks exactly this identity.
    pub fn verify_output_accounting(&self, chunk_size: usize) -> Result<(), SimError> {
        let traced: u64 = self.trace.clusters.iter().map(|c| c.output_nnz).sum();
        let stored = self.produced_sparse(chunk_size).nnz() as u64;
        if traced != stored {
            return Err(SimError::OutputAccounting { traced, stored });
        }
        Ok(())
    }
}

/// The functional SparTen accelerator.
///
/// # Example
///
/// ```
/// use sparten_core::{AcceleratorConfig, BalanceMode, SparTenEngine};
/// use sparten_nn::{conv2d, ConvShape};
/// use sparten_nn::generate::workload;
///
/// let shape = ConvShape::new(8, 6, 6, 3, 4, 1, 1);
/// let w = workload(&shape, 0.5, 0.4, 1);
/// let engine = SparTenEngine::new(AcceleratorConfig::small());
/// let run = engine.run_layer(&w, BalanceMode::GbS, false);
/// let reference = conv2d(&w.input, &w.filters, &shape);
/// let got = run.logical_output();
/// for (a, b) in got.as_slice().iter().zip(reference.as_slice()) {
///     assert!((a - b).abs() < 1e-3);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SparTenEngine {
    config: AcceleratorConfig,
}

impl SparTenEngine {
    /// Creates an engine with the given hardware configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        SparTenEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Runs one convolution layer functionally.
    ///
    /// Produces the output tensor (channels in produced order — apply
    /// [`LayerRun::logical_output`] or unshuffle the next layer's weights),
    /// the balance assignment, and the exact work trace. `apply_relu`
    /// applies ReLU before output collection, as the hardware does.
    pub fn run_layer(&self, workload: &Workload, mode: BalanceMode, apply_relu: bool) -> LayerRun {
        let units = self.config.cluster.compute_units;
        let chunk_size = self.config.cluster.chunk_size;
        let balance = LayerBalance::new(&workload.filters, units, chunk_size, mode);
        self.run_layer_with_balance(workload, balance, apply_relu)
    }

    /// Runs one layer and cross-checks the output collector's accounting
    /// ([`LayerRun::verify_output_accounting`]), so a model defect in the
    /// store path surfaces as a typed error rather than silently wrong
    /// output.
    pub fn try_run_layer(
        &self,
        workload: &Workload,
        mode: BalanceMode,
        apply_relu: bool,
    ) -> Result<LayerRun, SimError> {
        let run = self.run_layer(workload, mode, apply_relu);
        run.verify_output_accounting(self.config.cluster.chunk_size)?;
        Ok(run)
    }

    /// Fault hook: runs one layer with the output collector silently
    /// dropping the write selected by `drop` (the campaign's
    /// dropped-output fault model). Detection is the caller's job via
    /// [`LayerRun::verify_output_accounting`].
    pub fn run_layer_faulted(
        &self,
        workload: &Workload,
        mode: BalanceMode,
        apply_relu: bool,
        drop: &DropSpec,
    ) -> LayerRun {
        let units = self.config.cluster.compute_units;
        let chunk_size = self.config.cluster.chunk_size;
        let balance = LayerBalance::new(&workload.filters, units, chunk_size, mode);
        self.run_layer_inner(workload, balance, apply_relu, Some(drop))
    }

    /// Runs one layer with an explicitly constructed balance assignment —
    /// e.g. [`LayerBalance::with_collocation`] for k-way collocation.
    pub fn run_layer_with_balance(
        &self,
        workload: &Workload,
        balance: LayerBalance,
        apply_relu: bool,
    ) -> LayerRun {
        self.run_layer_inner(workload, balance, apply_relu, None)
    }

    fn run_layer_inner(
        &self,
        workload: &Workload,
        balance: LayerBalance,
        apply_relu: bool,
        drop: Option<&DropSpec>,
    ) -> LayerRun {
        let shape = &workload.shape;
        let units = self.config.cluster.compute_units;
        let chunk_size = self.config.cluster.chunk_size;
        let filter_chunks: Vec<SparseVector> = workload
            .filters
            .iter()
            .map(|f| filter_to_chunks(f, chunk_size))
            .collect();
        let num_chunks = filter_chunks[0].num_chunks();

        let (oh, ow) = (shape.out_height(), shape.out_width());
        let positions = oh * ow;
        let num_clusters = self.config.num_clusters;
        // Network endpoints: one per collocation slot (2·units for the
        // paper's pairing; k·units under deeper collocation).
        let max_slots = balance
            .groups
            .iter()
            .flat_map(|g| g.per_cu.iter().map(Vec::len))
            .max()
            .unwrap_or(1)
            .max(2);
        let network =
            PermutationNetwork::new(max_slots * units, self.config.cluster.bisection_limit);

        // Pre-compute per-(group, chunk) routing and its cost once; every
        // output position reuses the same schedule.
        type ChunkRouting = (Vec<(usize, usize)>, sparten_arch::RouteStats);
        let routing: Vec<Vec<ChunkRouting>> = balance
            .groups
            .iter()
            .map(|g| {
                (0..g.per_chunk_cu.len())
                    .map(|c| {
                        let mapping = g.chunk_routing(c);
                        let stats = network.route(&mapping);
                        (mapping, stats)
                    })
                    .collect()
            })
            .collect();

        let mut produced = Tensor3::zeros(shape.num_filters, oh, ow);
        let mut clusters = Vec::with_capacity(num_clusters);
        // Nonzero collector writes so far, across the whole layer — the
        // index space the dropped-output fault selects from.
        let mut nonzero_writes = 0u64;

        for cluster in 0..num_clusters {
            let lo = positions * cluster / num_clusters;
            let hi = positions * (cluster + 1) / num_clusters;
            let mut trace = ClusterTrace {
                unit_busy: vec![0; units],
                ..ClusterTrace::default()
            };
            for p in lo..hi {
                let (ox, oy) = (p % oh, p / oh);
                let window = linearize_window_padded(
                    &workload.input,
                    ox,
                    oy,
                    shape.kernel,
                    shape.stride,
                    shape.pad,
                    chunk_size,
                );
                let window = SparseVector::from_dense(&window, chunk_size);
                for (gi, group) in balance.groups.iter().enumerate() {
                    let m = group.num_filters();
                    let mut acc = vec![0.0f32; m];
                    #[allow(clippy::needless_range_loop)] // c indexes three parallel structures
                    for c in 0..num_chunks {
                        let in_chunk = &window.chunks()[c];
                        if group.per_chunk_cu.is_empty() {
                            // Static assignment: each unit accumulates its
                            // own filters locally.
                            let mut chunk_max = 0u64;
                            for (u, slots) in group.per_cu.iter().enumerate() {
                                let mut w = 0u64;
                                for &f in slots {
                                    let fc = &filter_chunks[f].chunks()[c];
                                    let (dot, macs) = fast::join_eval(in_chunk, fc);
                                    acc[group.owner_slot(f)] += dot;
                                    w += macs as u64;
                                }
                                trace.unit_busy[u] += w;
                                chunk_max = chunk_max.max(w);
                            }
                            trace.barrier_cycles += chunk_max;
                        } else {
                            // GB-H: per-chunk assignment; partials travel
                            // through the permutation network.
                            let (mapping, stats) = &routing[gi][c];
                            let mut by_src = vec![0.0f32; max_slots * units];
                            let mut chunk_max = 0u64;
                            for (u, slots) in group.per_chunk_cu[c].iter().enumerate() {
                                let mut w = 0u64;
                                for (s, &f) in slots.iter().enumerate() {
                                    let fc = &filter_chunks[f].chunks()[c];
                                    let (dot, macs) = fast::join_eval(in_chunk, fc);
                                    by_src[s * units + u] = dot;
                                    w += macs as u64;
                                }
                                trace.unit_busy[u] += w;
                                chunk_max = chunk_max.max(w);
                            }
                            trace.barrier_cycles += chunk_max;
                            let routed = network.apply(&by_src, mapping);
                            for (dst, v) in routed.into_iter().enumerate() {
                                if let (true, Some(v)) = (dst < m, v) {
                                    acc[dst] += v;
                                }
                            }
                            trace.routed_values += mapping.len() as u64;
                            trace.route_waves += stats.waves as u64;
                        }
                    }
                    if apply_relu {
                        for v in &mut acc {
                            if *v < 0.0 {
                                *v = 0.0;
                            }
                        }
                    }
                    // Output collector: compact on the fly, then store
                    // (word-parallel fast path; the structural
                    // OutputCompactor is its oracle).
                    let compacted = fast::compact_values(&acc);
                    trace.output_nnz += compacted.nnz() as u64;
                    let dense = compacted.to_dense();
                    let base = balance
                        .groups
                        .iter()
                        .take(gi)
                        .map(|g| g.num_filters())
                        .sum::<usize>();
                    for (j, &v) in dense.iter().enumerate() {
                        if v != 0.0 {
                            let dropped =
                                drop.is_some_and(|d| d.nth_nonzero_write == nonzero_writes);
                            nonzero_writes += 1;
                            if dropped {
                                continue;
                            }
                        }
                        produced.set(base + j, ox, oy, v);
                    }
                }
            }
            clusters.push(trace);
        }

        LayerRun {
            produced,
            balance,
            trace: WorkTrace { clusters },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::workload;
    use sparten_nn::{conv2d, ConvShape};

    fn small_config(units: usize, clusters: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            cluster: crate::config::ClusterConfig {
                compute_units: units,
                chunk_size: 16,
                bisection_limit: 4,
            },
            num_clusters: clusters,
        }
    }

    fn assert_matches_reference(
        shape: ConvShape,
        mode: BalanceMode,
        config: AcceleratorConfig,
        seed: u64,
    ) {
        let w = workload(&shape, 0.5, 0.4, seed);
        let engine = SparTenEngine::new(config);
        let run = engine.run_layer(&w, mode, false);
        let reference = conv2d(&w.input, &w.filters, &shape);
        let got = run.logical_output();
        for (i, (a, b)) in got.as_slice().iter().zip(reference.as_slice()).enumerate() {
            assert!(
                (a - b).abs() < 1e-3,
                "cell {i}: engine {a} vs reference {b}"
            );
        }
    }

    #[test]
    fn no_gb_matches_reference() {
        let shape = ConvShape::new(8, 6, 6, 3, 10, 1, 1);
        assert_matches_reference(shape, BalanceMode::None, small_config(4, 3), 1);
    }

    #[test]
    fn gbs_matches_reference() {
        let shape = ConvShape::new(8, 6, 6, 3, 10, 1, 1);
        assert_matches_reference(shape, BalanceMode::GbS, small_config(4, 3), 2);
    }

    #[test]
    fn gbh_matches_reference() {
        let shape = ConvShape::new(8, 6, 6, 3, 10, 1, 1);
        assert_matches_reference(shape, BalanceMode::GbH, small_config(4, 3), 3);
    }

    #[test]
    fn gbs_nocolloc_matches_reference() {
        let shape = ConvShape::new(8, 6, 6, 3, 10, 1, 1);
        assert_matches_reference(shape, BalanceMode::GbSNoColloc, small_config(4, 3), 9);
    }

    #[test]
    fn non_unit_stride_matches_reference() {
        // The capability SCNN lacks (§2.1.1): stride 2 and stride 4.
        for stride in [2, 4] {
            let shape = ConvShape::new(6, 9, 9, 3, 7, stride, 1);
            assert_matches_reference(shape, BalanceMode::GbH, small_config(4, 2), 4);
        }
    }

    #[test]
    fn one_by_one_filters_match_reference() {
        let shape = ConvShape::new(24, 5, 5, 1, 9, 1, 0);
        assert_matches_reference(shape, BalanceMode::GbS, small_config(4, 2), 5);
    }

    #[test]
    fn relu_is_applied_before_collection() {
        let shape = ConvShape::new(4, 4, 4, 3, 4, 1, 1);
        let w = workload(&shape, 0.8, 0.8, 6);
        let engine = SparTenEngine::new(small_config(4, 2));
        let run = engine.run_layer(&w, BalanceMode::None, true);
        assert!(run.produced.as_slice().iter().all(|&v| v >= 0.0));
        let mut reference = conv2d(&w.input, &w.filters, &shape);
        reference.relu();
        let got = run.logical_output();
        for (a, b) in got.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn trace_accounts_every_mac() {
        let shape = ConvShape::new(8, 5, 5, 3, 8, 1, 1);
        let w = workload(&shape, 0.5, 0.4, 7);
        let engine = SparTenEngine::new(small_config(4, 2));
        let run = engine.run_layer(&w, BalanceMode::None, false);
        // Total MACs must equal the true both-non-zero pair count.
        let mut expect = 0u64;
        for oy in 0..shape.out_width() {
            for ox in 0..shape.out_height() {
                let win = w.input.window_vector(ox, oy, 3, 3, 1, 1);
                for f in &w.filters {
                    let lin = f.linearize();
                    expect += win
                        .iter()
                        .zip(&lin)
                        .filter(|(a, b)| **a != 0.0 && **b != 0.0)
                        .count() as u64;
                }
            }
        }
        assert_eq!(run.trace.total_macs(), expect);
    }

    #[test]
    fn barrier_cycles_at_least_max_unit_busy() {
        let shape = ConvShape::new(16, 6, 6, 3, 12, 1, 1);
        let w = workload(&shape, 0.4, 0.35, 8);
        let engine = SparTenEngine::new(small_config(4, 2));
        for mode in [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH] {
            let run = engine.run_layer(&w, mode, false);
            for c in &run.trace.clusters {
                let max_busy = c.unit_busy.iter().copied().max().unwrap_or(0);
                assert!(c.barrier_cycles >= max_busy);
            }
        }
    }

    #[test]
    fn gb_reduces_barrier_cycles() {
        // With high filter-density spread, GB-S and GB-H should cut the
        // barrier time versus no balancing.
        let shape = ConvShape::new(32, 6, 6, 3, 16, 1, 1);
        let w = workload(&shape, 0.5, 0.35, 9);
        let engine = SparTenEngine::new(small_config(8, 1));
        let t = |mode| engine.run_layer(&w, mode, false).trace.makespan();
        let none = t(BalanceMode::None);
        let gbs = t(BalanceMode::GbS);
        let gbh = t(BalanceMode::GbH);
        assert!(gbs < none, "GB-S {gbs} !< none {none}");
        assert!(gbh <= gbs, "GB-H {gbh} !<= GB-S {gbs}");
    }

    #[test]
    fn k_way_collocation_matches_reference() {
        use crate::balance::LayerBalance;
        let shape = ConvShape::new(8, 6, 6, 3, 16, 1, 1);
        let w = workload(&shape, 0.5, 0.4, 12);
        let cfg = small_config(4, 2);
        let engine = SparTenEngine::new(cfg);
        let reference = conv2d(&w.input, &w.filters, &shape);
        for (k, per_chunk) in [(1usize, false), (4, false), (4, true)] {
            let balance = LayerBalance::with_collocation(&w.filters, 4, 16, k, per_chunk);
            let run = engine.run_layer_with_balance(&w, balance, false);
            let got = run.logical_output();
            for (a, b) in got.as_slice().iter().zip(reference.as_slice()) {
                assert!(
                    (a - b).abs() < 1e-3,
                    "k={k} per_chunk={per_chunk}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn produced_sparse_roundtrips_and_counts() {
        let shape = ConvShape::new(8, 5, 5, 3, 8, 1, 1);
        let w = workload(&shape, 0.6, 0.5, 11);
        let engine = SparTenEngine::new(small_config(4, 2));
        let run = engine.run_layer(&w, BalanceMode::GbS, true);
        let sparse = run.produced_sparse(16);
        assert_eq!(sparse.to_dense(), run.produced);
        // The engine's per-cluster output counts must sum to the stored nnz.
        let traced: u64 = run.trace.clusters.iter().map(|c| c.output_nnz).sum();
        assert_eq!(sparse.nnz() as u64, traced);
    }

    #[test]
    fn try_run_layer_passes_accounting_when_clean() {
        let shape = ConvShape::new(8, 5, 5, 3, 8, 1, 1);
        let w = workload(&shape, 0.5, 0.4, 13);
        let engine = SparTenEngine::new(small_config(4, 2));
        let run = engine.try_run_layer(&w, BalanceMode::GbS, true).unwrap();
        assert!(run.verify_output_accounting(16).is_ok());
    }

    #[test]
    fn dropped_write_fails_output_accounting() {
        use crate::error::SimError;
        use sparten_faults::DropSpec;
        let shape = ConvShape::new(8, 5, 5, 3, 8, 1, 1);
        let w = workload(&shape, 0.6, 0.5, 14);
        let engine = SparTenEngine::new(small_config(4, 2));
        let clean = engine.run_layer(&w, BalanceMode::GbS, true);
        let total: u64 = clean.trace.clusters.iter().map(|c| c.output_nnz).sum();
        assert!(total > 0);

        let run = engine.run_layer_faulted(
            &w,
            BalanceMode::GbS,
            true,
            &DropSpec { nth_nonzero_write: total / 2 },
        );
        let err = run.verify_output_accounting(16).unwrap_err();
        assert!(matches!(
            err,
            SimError::OutputAccounting { traced, stored } if stored + 1 == traced
        ));
    }

    #[test]
    fn drop_past_last_write_is_a_noop() {
        use sparten_faults::DropSpec;
        let shape = ConvShape::new(8, 5, 5, 3, 8, 1, 1);
        let w = workload(&shape, 0.6, 0.5, 14);
        let engine = SparTenEngine::new(small_config(4, 2));
        let clean = engine.run_layer(&w, BalanceMode::GbS, true);
        let total: u64 = clean.trace.clusters.iter().map(|c| c.output_nnz).sum();
        let run = engine.run_layer_faulted(
            &w,
            BalanceMode::GbS,
            true,
            &DropSpec { nth_nonzero_write: total },
        );
        assert!(run.verify_output_accounting(16).is_ok());
        assert_eq!(run.produced, clean.produced);
    }

    #[test]
    fn gbh_routes_values() {
        let shape = ConvShape::new(16, 4, 4, 3, 8, 1, 1);
        let w = workload(&shape, 0.5, 0.4, 10);
        let engine = SparTenEngine::new(small_config(4, 1));
        let run = engine.run_layer(&w, BalanceMode::GbH, false);
        let routed: u64 = run.trace.clusters.iter().map(|c| c.routed_values).sum();
        assert!(routed > 0);
        let plain = engine.run_layer(&w, BalanceMode::GbS, false);
        assert_eq!(
            plain
                .trace
                .clusters
                .iter()
                .map(|c| c.routed_values)
                .sum::<u64>(),
            0
        );
    }
}
