//! Multi-layer execution: chaining layers with automatic unshuffling.
//!
//! Greedy balancing shuffles each layer's output channels; §3.3's scheme is
//! to absorb that shuffle *statically* into the next layer's weights so
//! nothing moves at run time. [`SparseNetwork`] packages the bookkeeping:
//! it carries the produced channel order from each convolution into the
//! next stage (through channel-local pooling untouched), unshuffles each
//! conv stage's weights once, and returns the final output in logical
//! order — so a whole CNN runs on the engine with GB enabled everywhere
//! and bit-identical results to the dense reference.

use sparten_nn::generate::Workload;
use sparten_nn::{conv2d, max_pool, ConvShape, Filter};
use sparten_tensor::Tensor3;

use crate::balance::{unshuffle_next_layer, BalanceMode};
use crate::engine::SparTenEngine;

/// One stage of a sparse network.
#[derive(Debug, Clone)]
pub enum Stage {
    /// A convolution on the accelerator.
    Conv {
        /// The layer's filters (logical channel order).
        filters: Vec<Filter>,
        /// The layer shape (its input dims must match the incoming tensor).
        shape: ConvShape,
        /// Balance mode for this layer.
        mode: BalanceMode,
        /// Whether ReLU is applied before output collection.
        relu: bool,
    },
    /// Channel-local max pooling (runs on the CPU side).
    MaxPool {
        /// Pool window edge.
        k: usize,
        /// Pool stride.
        stride: usize,
    },
}

/// Aggregate statistics of a multi-layer run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Useful MACs across all conv stages.
    pub total_macs: u64,
    /// Sum of the conv stages' compute makespans.
    pub total_cycles: u64,
    /// Conv stages executed.
    pub conv_stages: usize,
}

/// A chain of stages executed on one engine.
#[derive(Debug, Clone)]
pub struct SparseNetwork {
    stages: Vec<Stage>,
}

impl SparseNetwork {
    /// Builds a network from stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        SparseNetwork { stages }
    }

    /// The stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Runs the network on the engine, carrying produced channel order
    /// between stages and returning the final output in *logical* order.
    ///
    /// # Panics
    ///
    /// Panics if stage shapes do not chain with the input.
    pub fn run(&self, engine: &SparTenEngine, input: &Tensor3) -> (Tensor3, PipelineStats) {
        let mut act = input.clone();
        // produced order of the current activation: position p holds
        // logical channel carried[p].
        let mut carried: Vec<usize> = (0..input.channels()).collect();
        let mut stats = PipelineStats::default();
        for stage in &self.stages {
            match stage {
                Stage::Conv {
                    filters,
                    shape,
                    mode,
                    relu,
                } => {
                    assert_eq!(act.channels(), shape.in_channels, "stage channels");
                    // Absorb the carried shuffle into this layer's weights.
                    let mut weights = filters.clone();
                    unshuffle_next_layer(&mut weights, &carried);
                    let w = Workload {
                        input: act,
                        filters: weights,
                        shape: *shape,
                    };
                    let run = engine.run_layer(&w, *mode, *relu);
                    stats.total_macs += run.trace.total_macs();
                    stats.total_cycles += run.trace.makespan();
                    stats.conv_stages += 1;
                    carried = run.balance.produced_channels.clone();
                    act = run.produced;
                }
                Stage::MaxPool { k, stride } => {
                    // Channel-local: the carried order passes through.
                    act = max_pool(&act, *k, *stride);
                }
            }
        }
        // Reorder the final activation to logical channel order.
        let mut out = Tensor3::zeros(act.channels(), act.height(), act.width());
        for (pos, &logical) in carried.iter().enumerate() {
            for y in 0..act.width() {
                for x in 0..act.height() {
                    out.set(logical, x, y, act.get(pos, x, y));
                }
            }
        }
        (out, stats)
    }

    /// Dense reference forward pass (logical order throughout).
    ///
    /// # Panics
    ///
    /// Panics if stage shapes do not chain with the input.
    pub fn reference(&self, input: &Tensor3) -> Tensor3 {
        let mut act = input.clone();
        for stage in &self.stages {
            match stage {
                Stage::Conv {
                    filters,
                    shape,
                    relu,
                    ..
                } => {
                    act = conv2d(&act, filters, shape);
                    if *relu {
                        act.relu();
                    }
                }
                Stage::MaxPool { k, stride } => {
                    act = max_pool(&act, *k, *stride);
                }
            }
        }
        act
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AcceleratorConfig, ClusterConfig};
    use sparten_nn::generate::{random_filters, random_tensor};

    fn engine() -> SparTenEngine {
        SparTenEngine::new(AcceleratorConfig {
            cluster: ClusterConfig {
                compute_units: 4,
                chunk_size: 64,
                bisection_limit: 4,
            },
            num_clusters: 2,
        })
    }

    fn three_stage_network(modes: [BalanceMode; 2]) -> (SparseNetwork, Tensor3) {
        let c1 = ConvShape::new(8, 10, 10, 3, 12, 1, 1);
        let c2 = ConvShape::new(12, 5, 5, 3, 6, 1, 1);
        let net = SparseNetwork::new(vec![
            Stage::Conv {
                filters: random_filters(&c1, 0.5, 0.4, 1),
                shape: c1,
                mode: modes[0],
                relu: true,
            },
            Stage::MaxPool { k: 2, stride: 2 },
            Stage::Conv {
                filters: random_filters(&c2, 0.4, 0.4, 2),
                shape: c2,
                mode: modes[1],
                relu: true,
            },
        ]);
        let input = random_tensor(8, 10, 10, 0.6, 3);
        (net, input)
    }

    #[test]
    fn chained_gb_matches_reference() {
        for modes in [
            [BalanceMode::None, BalanceMode::None],
            [BalanceMode::GbS, BalanceMode::GbS],
            [BalanceMode::GbH, BalanceMode::GbS],
            [BalanceMode::GbS, BalanceMode::GbH],
        ] {
            let (net, input) = three_stage_network(modes);
            let (got, stats) = net.run(&engine(), &input);
            let reference = net.reference(&input);
            assert_eq!(stats.conv_stages, 2);
            assert!(stats.total_macs > 0);
            for (a, b) in got.as_slice().iter().zip(reference.as_slice()) {
                assert!((a - b).abs() < 1e-2, "{modes:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn balance_modes_do_not_change_results_or_macs() {
        let (plain, input) = three_stage_network([BalanceMode::None, BalanceMode::None]);
        let (balanced, _) = three_stage_network([BalanceMode::GbH, BalanceMode::GbH]);
        let (out_a, stats_a) = plain.run(&engine(), &input);
        let (out_b, stats_b) = balanced.run(&engine(), &input);
        assert_eq!(stats_a.total_macs, stats_b.total_macs);
        for (a, b) in out_a.as_slice().iter().zip(out_b.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
        // GB must not be slower on this spread.
        assert!(stats_b.total_cycles <= stats_a.total_cycles);
    }

    #[test]
    #[should_panic(expected = "stage channels")]
    fn mismatched_chain_panics() {
        let c1 = ConvShape::new(8, 6, 6, 3, 12, 1, 1);
        let c2 = ConvShape::new(99, 6, 6, 3, 6, 1, 1); // wrong in_channels
        let net = SparseNetwork::new(vec![
            Stage::Conv {
                filters: random_filters(&c1, 0.5, 0.4, 1),
                shape: c1,
                mode: BalanceMode::None,
                relu: false,
            },
            Stage::Conv {
                filters: random_filters(&c2, 0.5, 0.4, 2),
                shape: c2,
                mode: BalanceMode::None,
                relu: false,
            },
        ]);
        let input = random_tensor(8, 6, 6, 0.6, 3);
        net.run(&engine(), &input);
    }
}
