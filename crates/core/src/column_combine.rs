//! Column combining (Kung et al.) — the §6 comparison to greedy balancing.
//!
//! CC packs several sparse filters into one dense "combined column" for a
//! systolic array by jigsaw-fitting filters so that few filters have
//! non-zero values at the same positions; where they conflict, all but the
//! largest-magnitude weight are pruned. The paper's contrast: "the shuffling
//! criteria of SparTen's GB and CC are completely different (group by
//! density versus jigsaw-fit to avoid conflicts)", and CC *loses accuracy*
//! (§6 calls its 0.75 %-point drop a 12 % increase in inaccuracy) whereas GB
//! is lossless. This module implements greedy CC packing so both the
//! utilization gain and the conflict-pruning loss are measurable.

use sparten_nn::Filter;

/// One combined column: the member filters and the merged weight layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedColumn {
    /// Indices of the filters packed into this column.
    pub members: Vec<usize>,
    /// Which member owns each weight position (`None` = position unused).
    pub owner: Vec<Option<usize>>,
}

impl CombinedColumn {
    /// Fraction of positions occupied — the systolic utilization CC buys.
    pub fn utilization(&self) -> f64 {
        let used = self.owner.iter().filter(|o| o.is_some()).count();
        used as f64 / self.owner.len().max(1) as f64
    }
}

/// Result of column combining a layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CombineReport {
    /// The packed columns.
    pub columns: Vec<CombinedColumn>,
    /// Non-zero weights pruned because they conflicted with a larger
    /// weight in the same combined position — CC's accuracy cost.
    pub conflict_pruned: usize,
    /// Non-zero weights before combining.
    pub nnz_before: usize,
}

impl CombineReport {
    /// Fraction of non-zero weights lost to conflicts.
    pub fn loss_fraction(&self) -> f64 {
        if self.nnz_before == 0 {
            0.0
        } else {
            self.conflict_pruned as f64 / self.nnz_before as f64
        }
    }

    /// Mean utilization across columns.
    pub fn mean_utilization(&self) -> f64 {
        if self.columns.is_empty() {
            return 0.0;
        }
        self.columns
            .iter()
            .map(CombinedColumn::utilization)
            .sum::<f64>()
            / self.columns.len() as f64
    }
}

/// Greedily packs `filters` into at most `group_limit`-way combined
/// columns: filters are considered densest-first; each joins the existing
/// column where it adds the fewest conflicts (ties to the emptiest), or
/// opens a new column when all are full. Conflicting weights keep only the
/// largest magnitude.
///
/// # Panics
///
/// Panics if `filters` is empty or `group_limit == 0`.
pub fn combine_columns(filters: &[Filter], group_limit: usize) -> CombineReport {
    assert!(!filters.is_empty(), "need at least one filter");
    assert!(group_limit > 0, "group limit must be positive");
    let weights_per_filter = filters[0].weights().len();
    let nnz_before: usize = filters.iter().map(Filter::nnz).sum();

    // Densest filters first: they are hardest to place.
    let mut order: Vec<usize> = (0..filters.len()).collect();
    order.sort_by(|&a, &b| {
        filters[b]
            .density()
            .partial_cmp(&filters[a].density())
            .expect("finite")
            .then(a.cmp(&b))
    });

    let mut columns: Vec<CombinedColumn> = Vec::new();
    // Per column, the winning |weight| at each owned position.
    let mut magnitudes: Vec<Vec<f32>> = Vec::new();
    let mut conflict_pruned = 0usize;

    for &f in &order {
        let w = filters[f].weights().as_slice();
        // Cost of adding filter f to column c = weights of f that would
        // lose a conflict + weights of current owners that f would evict.
        let mut best: Option<(usize, usize)> = None; // (cost, column)
        for (c, col) in columns.iter().enumerate() {
            if col.members.len() >= group_limit {
                continue;
            }
            let mut cost = 0usize;
            for (p, &v) in w.iter().enumerate() {
                if v != 0.0 && col.owner[p].is_some() {
                    cost += 1;
                }
            }
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, c));
            }
        }
        let c = match best {
            Some((_, c)) => c,
            None => {
                columns.push(CombinedColumn {
                    members: Vec::new(),
                    owner: vec![None; weights_per_filter],
                });
                magnitudes.push(vec![0.0; weights_per_filter]);
                columns.len() - 1
            }
        };
        let member = columns[c].members.len();
        columns[c].members.push(f);
        for (p, &v) in w.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            match columns[c].owner[p] {
                None => {
                    columns[c].owner[p] = Some(member);
                    magnitudes[c][p] = v.abs();
                }
                Some(_) if v.abs() > magnitudes[c][p] => {
                    // The newcomer wins; the incumbent is pruned.
                    columns[c].owner[p] = Some(member);
                    magnitudes[c][p] = v.abs();
                    conflict_pruned += 1;
                }
                Some(_) => conflict_pruned += 1,
            }
        }
    }
    CombineReport {
        columns,
        conflict_pruned,
        nnz_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::random_filters;
    use sparten_nn::ConvShape;

    fn filters(n: usize, density: f64, seed: u64) -> Vec<Filter> {
        let shape = ConvShape::new(32, 6, 6, 3, n, 1, 1);
        random_filters(&shape, density, 0.3, seed)
    }

    #[test]
    fn disjoint_filters_combine_losslessly() {
        // Hand-built filters with disjoint supports: no conflicts.
        use sparten_nn::Filter;
        use sparten_tensor::Tensor3;
        let mut a = Tensor3::zeros(4, 1, 1);
        a.set(0, 0, 0, 1.0);
        a.set(1, 0, 0, 2.0);
        let mut b = Tensor3::zeros(4, 1, 1);
        b.set(2, 0, 0, 3.0);
        b.set(3, 0, 0, 4.0);
        let report = combine_columns(&[Filter::new(a), Filter::new(b)], 2);
        assert_eq!(report.columns.len(), 1);
        assert_eq!(report.conflict_pruned, 0);
        assert_eq!(report.columns[0].utilization(), 1.0);
    }

    #[test]
    fn combining_raises_utilization() {
        let fs = filters(32, 0.25, 1);
        let report = combine_columns(&fs, 4);
        let single_density = 0.25;
        assert!(
            report.mean_utilization() > 1.8 * single_density,
            "utilization {} vs single {}",
            report.mean_utilization(),
            single_density
        );
        assert!(report.columns.len() < fs.len());
    }

    #[test]
    fn dense_filters_conflict_heavily() {
        let fs = filters(8, 0.9, 2);
        let report = combine_columns(&fs, 4);
        assert!(
            report.loss_fraction() > 0.3,
            "loss {}",
            report.loss_fraction()
        );
    }

    #[test]
    fn conflicts_keep_the_largest_magnitude() {
        use sparten_nn::Filter;
        use sparten_tensor::Tensor3;
        let mut a = Tensor3::zeros(2, 1, 1);
        a.set(0, 0, 0, 1.0);
        let mut b = Tensor3::zeros(2, 1, 1);
        b.set(0, 0, 0, -5.0);
        let report = combine_columns(&[Filter::new(a), Filter::new(b)], 2);
        assert_eq!(report.conflict_pruned, 1);
        let col = &report.columns[0];
        // b is denser? Equal density — order by id, a first; b evicts a.
        let owner = col.owner[0].expect("owned");
        let owner_filter = col.members[owner];
        assert_eq!(owner_filter, 1, "the larger |weight| must win");
    }

    #[test]
    fn group_limit_caps_members() {
        let fs = filters(32, 0.3, 3);
        let report = combine_columns(&fs, 3);
        for col in &report.columns {
            assert!(col.members.len() <= 3);
        }
        let total: usize = report.columns.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn gb_is_lossless_where_cc_is_not() {
        // The §6 contrast made concrete: GB permutes filters (loses
        // nothing); CC at the same grouping prunes conflicting weights.
        use crate::balance::{BalanceMode, LayerBalance};
        let fs = filters(32, 0.35, 4);
        let balance = LayerBalance::new(&fs, 8, 128, BalanceMode::GbS);
        // GB: every filter id appears exactly once — no weights touched.
        let mut ids = balance.produced_channels.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..32).collect::<Vec<_>>());
        // CC: conflicts force pruning.
        let report = combine_columns(&fs, 4);
        assert!(report.conflict_pruned > 0);
    }
}
