#![warn(missing_docs)]

//! The SparTen accelerator core: the paper's primary contribution.
//!
//! This crate implements SparTen's architecture (§3 of the paper) as an
//! executable, numerically exact model:
//!
//! * [`config`] — hardware configurations (Table 2's large/small setups,
//!   chunk size, permutation-network bisection);
//! * [`balance`] — greedy balancing: GB-S (whole-filter density sort with
//!   static next-layer unshuffling) and GB-H (per-chunk sort with dynamic
//!   unshuffling through the permutation network), both with dense/sparse
//!   filter collocation (§3.3, Figure 6);
//! * [`chunking`] — SparTen's chunk-aligned linearization (channel fibers
//!   padded to the 128-wide chunk, §3.1);
//! * [`engine`] — the functional cluster engine: compute units running the
//!   inner-join sequencer, the output collector, and GB-H partial-sum
//!   routing, producing exact layer outputs plus per-unit work traces;
//! * [`blas`] — the BLAS-like `C ← A·x + y` interface the accelerator
//!   exposes on the CPU-memory bus (§3.2), with incremental vector
//!   construction.
//!
//! The engine is the correctness oracle: integration tests check it against
//! `sparten-nn`'s dense reference convolution for every balance mode and
//! stride, and the cycle-level simulators in `sparten-sim` cross-check their
//! fast work model against the engine's traces.

pub mod balance;
pub mod blas;
pub mod chunking;
pub mod column_combine;
pub mod config;
pub mod controller;
pub mod engine;
pub mod error;
pub mod memory;
pub mod multilayer;

pub use balance::{BalanceMode, GroupAssignment, LayerBalance};
pub use blas::{SparseMatrix, VectorBuilder};
pub use chunking::{linearize_filter_padded, linearize_window_padded, padded_fiber_len};
pub use column_combine::{combine_columns, CombineReport, CombinedColumn};
pub use config::{AcceleratorConfig, ClusterConfig};
pub use controller::{command_stream, run_via_commands, Command, ControllerStats};
pub use engine::{LayerRun, SparTenEngine, WorkTrace};
pub use error::SimError;
pub use memory::{MemoryReport, OutputMemory};
pub use multilayer::{PipelineStats, SparseNetwork, Stage};
