//! The CPU-side controller: the accelerator's command stream (§3.2).
//!
//! "At the start of a CNN layer, the CPU instructs each compute unit of a
//! cluster to fetch and hold a chunk of a filter ... The CPU then issues a
//! fetch of an input map chunk ... which is broadcast to the cluster's
//! compute units ... The CPU then issues the rest of the input chunks ...
//! The cluster returns the count of the non-zero output values to the CPU
//! to increment the output map value array pointer."
//!
//! This module reifies that interface: a [`Command`] stream generated from
//! a layer's balance assignment, and an interpreter that executes it
//! against per-unit state, producing outputs identical to the engine's.
//! It pins down the control protocol the prose describes — including the
//! output-pointer bookkeeping against the per-cluster memory regions.

use sparten_arch::fast;
use sparten_nn::generate::Workload;
use sparten_tensor::{SparseVector, Tensor3};

use crate::balance::{BalanceMode, LayerBalance};
use crate::chunking::{filter_to_chunks, linearize_window_padded};
use crate::config::AcceleratorConfig;
use crate::error::SimError;

/// One command the CPU issues to a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Load filter `filter` as unit `unit`'s collocation slot `slot`
    /// (the unit then fetches its chunks as they are needed).
    LoadFilter {
        /// Target compute unit within the cluster.
        unit: usize,
        /// Collocation slot on that unit.
        slot: usize,
        /// Global filter id.
        filter: usize,
    },
    /// Broadcast chunk `chunk` of the window at output `(ox, oy)` to every
    /// unit; each unit joins it against its held filter chunks.
    Broadcast {
        /// Output-cell x coordinate.
        ox: usize,
        /// Output-cell y coordinate.
        oy: usize,
        /// Chunk index within the window.
        chunk: usize,
    },
    /// Collect the group's accumulated output cells for `(ox, oy)`:
    /// apply ReLU if configured, compact, and write to the region.
    Collect {
        /// Output-cell x coordinate.
        ox: usize,
        /// Output-cell y coordinate.
        oy: usize,
    },
    /// Group boundary: drop held filters (the next `LoadFilter`s follow).
    DrainGroup,
}

/// Generates the full command stream for one cluster's position slice.
pub fn command_stream(
    balance: &LayerBalance,
    positions: &[(usize, usize)],
    chunks_per_window: usize,
) -> Vec<Command> {
    let mut out = Vec::new();
    for group in &balance.groups {
        for (u, slots) in group.per_cu.iter().enumerate() {
            for (s, &f) in slots.iter().enumerate() {
                out.push(Command::LoadFilter {
                    unit: u,
                    slot: s,
                    filter: f,
                });
            }
        }
        for &(ox, oy) in positions {
            for c in 0..chunks_per_window {
                out.push(Command::Broadcast { ox, oy, chunk: c });
            }
            out.push(Command::Collect { ox, oy });
        }
        out.push(Command::DrainGroup);
    }
    out
}

/// Statistics the interpreter returns to the CPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Commands executed.
    pub commands: usize,
    /// Input-chunk broadcasts issued.
    pub broadcasts: usize,
    /// Filter (re)loads issued.
    pub filter_loads: usize,
    /// Non-zero output values reported back (the pointer increments).
    pub output_values: usize,
}

/// Executes a command stream against compute-unit state, filling `output`
/// (produced channel order) for the given positions.
///
/// # Panics
///
/// Panics if the stream is malformed (collect before loads, unknown
/// filters, etc.) — the controller must issue a well-formed protocol.
/// Use [`try_execute`] to get the violation as a typed error instead.
pub fn execute(
    workload: &Workload,
    config: &AcceleratorConfig,
    balance: &LayerBalance,
    commands: &[Command],
    apply_relu: bool,
    output: &mut Tensor3,
) -> ControllerStats {
    try_execute(workload, config, balance, commands, apply_relu, output)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`execute`]: a malformed command stream returns
/// [`SimError::Protocol`] instead of aborting, so injected protocol
/// faults surface as values.
pub fn try_execute(
    workload: &Workload,
    config: &AcceleratorConfig,
    balance: &LayerBalance,
    commands: &[Command],
    apply_relu: bool,
    output: &mut Tensor3,
) -> Result<ControllerStats, SimError> {
    let shape = &workload.shape;
    let units = config.cluster.compute_units;
    let chunk_size = config.cluster.chunk_size;
    let filter_chunks: Vec<SparseVector> = workload
        .filters
        .iter()
        .map(|f| filter_to_chunks(f, chunk_size))
        .collect();

    // Per-unit held filters (slot → global id) and accumulators.
    let mut held: Vec<Vec<usize>> = vec![Vec::new(); units];
    let mut acc: Vec<Vec<f32>> = vec![Vec::new(); units];
    let mut group_index = 0usize;
    let mut stats = ControllerStats::default();
    // Cached window per (ox, oy) while broadcasting.
    let mut window_cache: Option<((usize, usize), SparseVector)> = None;

    for cmd in commands {
        stats.commands += 1;
        match *cmd {
            Command::LoadFilter { unit, slot, filter } => {
                if unit >= units {
                    return Err(SimError::Protocol {
                        detail: format!("unit out of range: unit {unit} of {units}"),
                    });
                }
                if held[unit].len() != slot {
                    return Err(SimError::Protocol {
                        detail: format!(
                            "slots must load in order: unit {unit} expected slot {}, got {slot}",
                            held[unit].len()
                        ),
                    });
                }
                if filter >= workload.filters.len() {
                    return Err(SimError::Protocol {
                        detail: format!(
                            "unknown filter {filter} (layer has {})",
                            workload.filters.len()
                        ),
                    });
                }
                held[unit].push(filter);
                acc[unit].push(0.0);
                stats.filter_loads += 1;
            }
            Command::Broadcast { ox, oy, chunk } => {
                stats.broadcasts += 1;
                let window = match &window_cache {
                    Some(((cx, cy), w)) if (*cx, *cy) == (ox, oy) => w,
                    _ => {
                        let dense = linearize_window_padded(
                            &workload.input,
                            ox,
                            oy,
                            shape.kernel,
                            shape.stride,
                            shape.pad,
                            chunk_size,
                        );
                        window_cache =
                            Some(((ox, oy), SparseVector::from_dense(&dense, chunk_size)));
                        &window_cache.as_ref().expect("just set").1
                    }
                };
                let Some(in_chunk) = window.chunks().get(chunk) else {
                    return Err(SimError::Protocol {
                        detail: format!(
                            "broadcast chunk {chunk} out of range ({} window chunks)",
                            window.num_chunks()
                        ),
                    });
                };
                for (u, filters) in held.iter().enumerate() {
                    for (s, &f) in filters.iter().enumerate() {
                        let (dot, _macs) = fast::join_eval(in_chunk, &filter_chunks[f].chunks()[chunk]);
                        acc[u][s] += dot;
                    }
                }
            }
            Command::Collect { ox, oy } => {
                let Some(group) = balance.groups.get(group_index) else {
                    return Err(SimError::Protocol {
                        detail: format!(
                            "collect after the last group ({} groups)",
                            balance.groups.len()
                        ),
                    });
                };
                let m = group.num_filters();
                // Gather accumulators in owner-slot (produced) order.
                let mut cells = vec![0.0f32; m];
                for (u, filters) in held.iter().enumerate() {
                    for (s, &f) in filters.iter().enumerate() {
                        cells[group.owner_slot(f)] = acc[u][s];
                    }
                }
                if apply_relu {
                    for v in &mut cells {
                        *v = v.max(0.0);
                    }
                }
                let compacted = fast::compact_values(&cells);
                stats.output_values += compacted.nnz();
                let base: usize = balance
                    .groups
                    .iter()
                    .take(group_index)
                    .map(|g| g.num_filters())
                    .sum();
                for (j, &v) in compacted.to_dense().iter().enumerate() {
                    output.set(base + j, ox, oy, v);
                }
                // Reset accumulators for the next position.
                for a in &mut acc {
                    a.iter_mut().for_each(|v| *v = 0.0);
                }
            }
            Command::DrainGroup => {
                held.iter_mut().for_each(Vec::clear);
                acc.iter_mut().for_each(Vec::clear);
                group_index += 1;
            }
        }
    }
    Ok(stats)
}

/// Convenience: runs one layer entirely through the command-stream path
/// (single logical cluster covering all positions), returning the produced
/// tensor and controller statistics.
pub fn run_via_commands(
    workload: &Workload,
    config: &AcceleratorConfig,
    mode: BalanceMode,
    apply_relu: bool,
) -> (Tensor3, LayerBalance, ControllerStats) {
    let shape = &workload.shape;
    let units = config.cluster.compute_units;
    let balance = LayerBalance::new(&workload.filters, units, config.cluster.chunk_size, mode);
    let chunks = crate::chunking::chunks_per_window(
        shape.in_channels,
        shape.kernel,
        config.cluster.chunk_size,
    );
    let positions: Vec<(usize, usize)> = (0..shape.out_height() * shape.out_width())
        .map(|p| (p % shape.out_height(), p / shape.out_height()))
        .collect();
    let commands = command_stream(&balance, &positions, chunks);
    let mut output = Tensor3::zeros(shape.num_filters, shape.out_height(), shape.out_width());
    let stats = execute(
        workload,
        config,
        &balance,
        &commands,
        apply_relu,
        &mut output,
    );
    (output, balance, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::engine::SparTenEngine;
    use sparten_nn::generate::workload;
    use sparten_nn::ConvShape;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig {
            cluster: ClusterConfig {
                compute_units: 4,
                chunk_size: 64,
                bisection_limit: 4,
            },
            num_clusters: 1,
        }
    }

    #[test]
    fn command_path_matches_engine_output() {
        let shape = ConvShape::new(24, 6, 6, 3, 10, 1, 1);
        let w = workload(&shape, 0.5, 0.4, 61);
        for mode in [BalanceMode::None, BalanceMode::GbS] {
            let (produced, _, _) = run_via_commands(&w, &config(), mode, true);
            let engine = SparTenEngine::new(config());
            let reference = engine.run_layer(&w, mode, true);
            for (a, b) in produced
                .as_slice()
                .iter()
                .zip(reference.produced.as_slice())
            {
                assert!((a - b).abs() < 1e-3, "{mode:?}: command {a} vs engine {b}");
            }
        }
    }

    #[test]
    fn stream_shape_matches_protocol() {
        let shape = ConvShape::new(16, 4, 4, 1, 8, 1, 0);
        let w = workload(&shape, 0.5, 0.5, 62);
        let balance = LayerBalance::new(&w.filters, 4, 64, BalanceMode::None);
        let positions = vec![(0, 0), (1, 0)];
        let stream = command_stream(&balance, &positions, 1);
        // 2 groups × (4 loads + 2 positions × (1 broadcast + 1 collect) + drain).
        assert_eq!(stream.len(), 2 * (4 + 2 * 2 + 1));
        assert!(matches!(stream[0], Command::LoadFilter { .. }));
        assert!(matches!(stream.last(), Some(Command::DrainGroup)));
    }

    #[test]
    fn stats_count_the_protocol_traffic() {
        let shape = ConvShape::new(16, 4, 4, 1, 8, 1, 0);
        let w = workload(&shape, 0.6, 0.5, 63);
        let (_, balance, stats) = run_via_commands(&w, &config(), BalanceMode::GbS, true);
        // One collocated group of 8 filters on 4 units.
        assert_eq!(balance.groups.len(), 1);
        assert_eq!(stats.filter_loads, 8);
        assert_eq!(stats.broadcasts, 16); // 16 positions × 1 chunk
        assert!(stats.output_values > 0);
    }

    #[test]
    fn output_pointer_increments_match_region_usage() {
        use sparten_tensor::ClusterRegion;
        let shape = ConvShape::new(16, 5, 5, 3, 8, 1, 1);
        let w = workload(&shape, 0.5, 0.5, 64);
        let (produced, _, stats) = run_via_commands(&w, &config(), BalanceMode::GbS, true);
        // Feeding the reported counts into a region reproduces its fill.
        let mut region = ClusterRegion::new(stats.output_values, 0.10, 0.9);
        region.append(stats.output_values);
        assert_eq!(region.used(), produced.nnz());
    }

    #[test]
    fn try_execute_reports_protocol_errors() {
        use crate::error::SimError;
        let shape = ConvShape::new(8, 3, 3, 1, 4, 1, 0);
        let w = workload(&shape, 0.5, 0.5, 66);
        let balance = LayerBalance::new(&w.filters, 4, 64, BalanceMode::None);
        let mut out = Tensor3::zeros(4, 3, 3);
        for bad in [
            Command::LoadFilter { unit: 9, slot: 0, filter: 0 },
            Command::LoadFilter { unit: 0, slot: 1, filter: 0 },
            Command::LoadFilter { unit: 0, slot: 0, filter: 99 },
            Command::Broadcast { ox: 0, oy: 0, chunk: 7 },
        ] {
            let err = try_execute(&w, &config(), &balance, &[bad], false, &mut out).unwrap_err();
            assert!(matches!(err, SimError::Protocol { .. }));
        }
        // A collect past the last group is also a protocol violation.
        let stream = vec![Command::DrainGroup; balance.groups.len() + 1];
        let mut stream = stream;
        stream.push(Command::Collect { ox: 0, oy: 0 });
        let err = try_execute(&w, &config(), &balance, &stream, false, &mut out).unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }));
    }

    #[test]
    fn try_execute_matches_execute_on_clean_streams() {
        let shape = ConvShape::new(16, 4, 4, 1, 8, 1, 0);
        let w = workload(&shape, 0.5, 0.5, 67);
        let balance = LayerBalance::new(&w.filters, 4, 64, BalanceMode::GbS);
        let positions = vec![(0, 0), (1, 0)];
        let commands = command_stream(&balance, &positions, 1);
        let mut a = Tensor3::zeros(8, 4, 4);
        let mut b = Tensor3::zeros(8, 4, 4);
        let sa = execute(&w, &config(), &balance, &commands, true, &mut a);
        let sb = try_execute(&w, &config(), &balance, &commands, true, &mut b).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "slots must load in order")]
    fn out_of_order_slot_load_panics() {
        let shape = ConvShape::new(8, 3, 3, 1, 4, 1, 0);
        let w = workload(&shape, 0.5, 0.5, 65);
        let balance = LayerBalance::new(&w.filters, 4, 64, BalanceMode::None);
        let bad = vec![Command::LoadFilter {
            unit: 0,
            slot: 1,
            filter: 0,
        }];
        let mut out = Tensor3::zeros(4, 3, 3);
        execute(&w, &config(), &balance, &bad, false, &mut out);
    }
}
