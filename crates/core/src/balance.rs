//! Greedy balancing (§3.3, Figure 6).
//!
//! Filters inevitably differ in density; because every filter in a cluster
//! multiplies the same broadcast input chunk, the dense-filter units lag the
//! sparse-filter units at every implicit broadcast barrier. SparTen fixes
//! this *offline*, keeping full filter reuse:
//!
//! * **GB-S** sorts a layer's filters by whole-filter density so the filters
//!   working side by side are similar, and *collocates* two filters per
//!   compute unit, pairing the densest with the sparsest. The resulting
//!   output-channel shuffle is undone statically by rearranging the next
//!   layer's weights ([`unshuffle_next_layer`]).
//! * **GB-H** additionally re-sorts *per chunk*, pairing the per-chunk
//!   densest with the per-chunk sparsest within each cluster's group of
//!   2×units filters. The per-chunk shuffle cannot be fixed statically, so
//!   partial sums are routed through the cluster's permutation network
//!   ([`GroupAssignment::chunk_routing`]).

use sparten_nn::Filter;
use sparten_tensor::SparseVector;

use crate::chunking::filter_to_chunks;

/// Which greedy-balancing variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BalanceMode {
    /// No balancing: filters in original order, one per compute unit.
    None,
    /// Software-only: whole-filter density sort + whole-filter collocation.
    GbS,
    /// Hybrid: GB-S assignment plus per-chunk sorting and dynamic
    /// unshuffling through the permutation network.
    GbH,
    /// Ablation: GB-S's density sort *without* collocation (one filter per
    /// unit). §5.1 notes this "results in worse performance in most other
    /// benchmarks" — this variant lets that claim be measured.
    GbSNoColloc,
}

/// The filters a cluster works on concurrently: up to `2 × units` filters
/// under collocation, `units` without.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAssignment {
    /// Global filter ids in *produced order*: the output collector emits
    /// this group's j-th output channel from `produced_order[j]`.
    pub produced_order: Vec<usize>,
    /// `per_cu[u]` = global filter ids (1 or 2) statically held by unit `u`.
    pub per_cu: Vec<Vec<usize>>,
    /// GB-H only: `per_chunk_cu[c][u]` = the filters whose chunk `c` unit
    /// `u` computes. Empty for other modes.
    pub per_chunk_cu: Vec<Vec<Vec<usize>>>,
}

impl GroupAssignment {
    /// Number of filters in the group.
    pub fn num_filters(&self) -> usize {
        self.produced_order.len()
    }

    /// Units that hold at least one filter.
    pub fn busy_units(&self) -> usize {
        self.per_cu.iter().filter(|v| !v.is_empty()).count()
    }

    /// Slot position (index into `produced_order`) that owns filter `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not in this group.
    pub fn owner_slot(&self, f: usize) -> usize {
        self.produced_order
            .iter()
            .position(|&g| g == f)
            .expect("filter not in group")
    }

    /// GB-H routing for chunk `c`: `(source_slot, destination_slot)` pairs
    /// mapping where each partial sum is computed to where its accumulator
    /// lives. Source slots follow the same `s·units + u` layout as produced
    /// order. Identity pairs are included (the network still carries them).
    ///
    /// Returns an empty mapping for non-GB-H groups.
    pub fn chunk_routing(&self, c: usize) -> Vec<(usize, usize)> {
        let Some(chunk) = self.per_chunk_cu.get(c) else {
            return Vec::new();
        };
        let units = self.per_cu.len();
        let mut mapping = Vec::new();
        for (u, filters) in chunk.iter().enumerate() {
            for (s, &f) in filters.iter().enumerate() {
                let src = s * units + u;
                let dst = self.owner_slot(f);
                mapping.push((src, dst));
            }
        }
        mapping
    }
}

/// A full layer's balanced assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerBalance {
    /// The balancing mode that produced this assignment.
    pub mode: BalanceMode,
    /// Groups processed back to back by each cluster.
    pub groups: Vec<GroupAssignment>,
    /// `produced_channels[p]` = logical filter id emitted at produced
    /// output-channel position `p` (concatenation of the groups' produced
    /// orders).
    pub produced_channels: Vec<usize>,
}

impl LayerBalance {
    /// Builds the assignment of `filters` onto clusters of `units` compute
    /// units with the given mode and chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0` or `filters` is empty.
    pub fn new(filters: &[Filter], units: usize, chunk_size: usize, mode: BalanceMode) -> Self {
        assert!(units > 0, "need at least one compute unit");
        assert!(!filters.is_empty(), "need at least one filter");
        let groups = match mode {
            BalanceMode::None => plain_groups(filters.len(), units),
            BalanceMode::GbS => gb_groups(filters, units, chunk_size, false),
            BalanceMode::GbH => gb_groups(filters, units, chunk_size, true),
            BalanceMode::GbSNoColloc => sorted_plain_groups(filters, units),
        };
        let produced_channels = groups
            .iter()
            .flat_map(|g| g.produced_order.iter().copied())
            .collect();
        LayerBalance {
            mode,
            groups,
            produced_channels,
        }
    }

    /// Greedy balancing with `k`-way collocation (the paper uses `k = 2`).
    /// `per_chunk` selects GB-H-style per-chunk sorting; the reported mode
    /// is the nearest standard one.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`, `k == 0`, or `filters` is empty.
    pub fn with_collocation(
        filters: &[Filter],
        units: usize,
        chunk_size: usize,
        k: usize,
        per_chunk: bool,
    ) -> Self {
        assert!(units > 0, "need at least one compute unit");
        assert!(k > 0, "collocation depth must be positive");
        assert!(!filters.is_empty(), "need at least one filter");
        let groups = gb_groups_k(filters, units, chunk_size, per_chunk, k);
        let produced_channels = groups
            .iter()
            .flat_map(|g| g.produced_order.iter().copied())
            .collect();
        LayerBalance {
            mode: if per_chunk {
                BalanceMode::GbH
            } else {
                BalanceMode::GbS
            },
            groups,
            produced_channels,
        }
    }

    /// The inverse map: `position_of[logical_filter]` = produced position.
    pub fn position_of_channel(&self) -> Vec<usize> {
        let mut inv = vec![0usize; self.produced_channels.len()];
        for (p, &f) in self.produced_channels.iter().enumerate() {
            inv[f] = p;
        }
        inv
    }

    /// Whether the produced order equals the logical order.
    pub fn is_identity(&self) -> bool {
        self.produced_channels
            .iter()
            .enumerate()
            .all(|(p, &f)| p == f)
    }
}

fn plain_groups(num_filters: usize, units: usize) -> Vec<GroupAssignment> {
    (0..num_filters)
        .collect::<Vec<_>>()
        .chunks(units)
        .map(|ids| GroupAssignment {
            produced_order: ids.to_vec(),
            per_cu: (0..units)
                .map(|u| ids.get(u).map(|&f| vec![f]).unwrap_or_default())
                .collect(),
            per_chunk_cu: Vec::new(),
        })
        .collect()
}

/// GB-S's density sort without collocation: sorted order, one filter per
/// unit, groups of `units`.
fn sorted_plain_groups(filters: &[Filter], units: usize) -> Vec<GroupAssignment> {
    let whole: Vec<f64> = filters.iter().map(Filter::density).collect();
    let mut ids: Vec<usize> = (0..filters.len()).collect();
    sort_by_density(&mut ids, |i| whole[i]);
    ids.chunks(units)
        .map(|group_ids| GroupAssignment {
            produced_order: group_ids.to_vec(),
            per_cu: (0..units)
                .map(|u| group_ids.get(u).map(|&f| vec![f]).unwrap_or_default())
                .collect(),
            per_chunk_cu: Vec::new(),
        })
        .collect()
}

/// Sorts filter ids by density, descending; ties broken by id for
/// determinism.
fn sort_by_density(ids: &mut [usize], density: impl Fn(usize) -> f64) {
    ids.sort_by(|&a, &b| {
        density(b)
            .partial_cmp(&density(a))
            .expect("densities are finite")
            .then(a.cmp(&b))
    });
}

/// K-way collocation: deals the density-sorted filters onto `units` slots
/// in serpentine order so each unit's k filters sum to a near-equal total.
/// `k = 2` is the paper's pairing; `k = 1` disables collocation.
fn collocate_k(sorted: &[usize], units: usize, k: usize) -> Vec<Vec<usize>> {
    let mut per_cu: Vec<Vec<usize>> = vec![Vec::new(); units];
    // Tuples are formed *before* unit assignment, so small filter counts
    // leave units idle — the §5.1 pathology on GoogLeNet's 5x5_reduce.
    let busy = sorted.len().div_ceil(k).min(units);
    if busy == 0 {
        return per_cu;
    }
    for (rank, &f) in sorted.iter().enumerate().take(units * k) {
        let pass = rank / busy;
        let pos = rank % busy;
        let u = if pass.is_multiple_of(2) {
            pos
        } else {
            busy - 1 - pos
        };
        per_cu[u].push(f);
    }
    per_cu
}

/// Produced order for a collocated group: slot-0 filters of all units, then
/// slot-1 filters, and so on (matching the output collector's scan).
fn produced_from_per_cu(per_cu: &[Vec<usize>]) -> Vec<usize> {
    let max_slots = per_cu.iter().map(Vec::len).max().unwrap_or(0);
    let mut order = Vec::new();
    for s in 0..max_slots {
        for slots in per_cu {
            if let Some(&f) = slots.get(s) {
                order.push(f);
            }
        }
    }
    order
}

fn gb_groups(
    filters: &[Filter],
    units: usize,
    chunk_size: usize,
    per_chunk: bool,
) -> Vec<GroupAssignment> {
    gb_groups_k(filters, units, chunk_size, per_chunk, 2)
}

/// Greedy balancing generalized to `k` collocated filters per unit — the
/// paper's scheme is `k = 2`; deeper collocation buys balance with more
/// filter/output buffering (an extension the paper's framework suggests but
/// does not explore).
fn gb_groups_k(
    filters: &[Filter],
    units: usize,
    chunk_size: usize,
    per_chunk: bool,
    k: usize,
) -> Vec<GroupAssignment> {
    // Whole-filter densities and (for GB-H) per-chunk densities.
    let whole: Vec<f64> = filters.iter().map(Filter::density).collect();
    let sparse: Vec<SparseVector> = if per_chunk {
        filters
            .iter()
            .map(|f| filter_to_chunks(f, chunk_size))
            .collect()
    } else {
        Vec::new()
    };

    let mut ids: Vec<usize> = (0..filters.len()).collect();
    sort_by_density(&mut ids, |i| whole[i]);

    ids.chunks(k * units)
        .map(|group_ids| {
            let mut sorted = group_ids.to_vec();
            sort_by_density(&mut sorted, |i| whole[i]);
            let per_cu = collocate_k(&sorted, units, k);
            let produced_order = produced_from_per_cu(&per_cu);
            let per_chunk_cu = if per_chunk {
                let num_chunks = sparse[group_ids[0]].num_chunks();
                (0..num_chunks)
                    .map(|c| {
                        let mut by_chunk = group_ids.to_vec();
                        sort_by_density(&mut by_chunk, |i| sparse[i].chunks()[c].density());
                        collocate_k(&by_chunk, units, k)
                    })
                    .collect()
            } else {
                Vec::new()
            };
            GroupAssignment {
                produced_order,
                per_cu,
                per_chunk_cu,
            }
        })
        .collect()
}

/// Statically unshuffles the *next* layer's weights so it consumes a
/// produced-order tensor directly (§3.3): new channel `p` of every next
/// filter takes the weights of old channel `produced_channels[p]`.
///
/// # Panics
///
/// Panics if any next filter's channel count differs from
/// `produced_channels.len()`.
pub fn unshuffle_next_layer(next_filters: &mut [Filter], produced_channels: &[usize]) {
    for f in next_filters {
        assert_eq!(
            f.channels(),
            produced_channels.len(),
            "channel count must match the previous layer's filter count"
        );
        let k = f.kernel();
        let old = f.weights().clone();
        let w = f.weights_mut();
        for (p, &logical) in produced_channels.iter().enumerate() {
            for fy in 0..k {
                for fx in 0..k {
                    w.set(p, fx, fy, old.get(logical, fx, fy));
                }
            }
        }
    }
}

/// Per-pair mean chunk densities after GB-H pairing for one chunk index —
/// the blue curve of Figure 14. Returns one density per collocated pair.
pub fn paired_chunk_densities(
    filters: &[Filter],
    chunk_size: usize,
    chunk_index: usize,
) -> Vec<f64> {
    let sparse: Vec<SparseVector> = filters
        .iter()
        .map(|f| filter_to_chunks(f, chunk_size))
        .collect();
    let mut ids: Vec<usize> = (0..filters.len()).collect();
    sort_by_density(&mut ids, |i| sparse[i].chunks()[chunk_index].density());
    let m = ids.len();
    (0..m / 2)
        .map(|u| {
            let a = sparse[ids[u]].chunks()[chunk_index].density();
            let b = sparse[ids[m - 1 - u]].chunks()[chunk_index].density();
            (a + b) / 2.0
        })
        .collect()
}

/// Utilization of a set of per-unit, per-barrier work counts: useful cycles
/// over `barrier-max × units` cycles — the shaded fraction of Figure 6.
pub fn utilization(per_barrier_unit_work: &[Vec<usize>]) -> f64 {
    let mut useful = 0usize;
    let mut wall = 0usize;
    let mut units = 0usize;
    for barrier in per_barrier_unit_work {
        useful += barrier.iter().sum::<usize>();
        wall += barrier.iter().copied().max().unwrap_or(0);
        units = units.max(barrier.len());
    }
    if wall == 0 || units == 0 {
        1.0
    } else {
        useful as f64 / (wall * units) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::random_filters;
    use sparten_nn::ConvShape;

    fn filters(n: usize, density: f64, spread: f64, seed: u64) -> Vec<Filter> {
        let shape = ConvShape::new(64, 8, 8, 3, n, 1, 1);
        random_filters(&shape, density, spread, seed)
    }

    #[test]
    fn plain_mode_is_identity() {
        let fs = filters(70, 0.4, 0.5, 1);
        let b = LayerBalance::new(&fs, 32, 128, BalanceMode::None);
        assert!(b.is_identity());
        assert_eq!(b.groups.len(), 3); // 32 + 32 + 6
        assert_eq!(b.groups[2].busy_units(), 6);
    }

    #[test]
    fn gbs_produced_channels_is_permutation() {
        let fs = filters(64, 0.4, 0.5, 2);
        let b = LayerBalance::new(&fs, 32, 128, BalanceMode::GbS);
        let mut seen = [false; 64];
        for &f in &b.produced_channels {
            assert!(!seen[f], "duplicate channel {f}");
            seen[f] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gbs_pairs_dense_with_sparse() {
        let fs = filters(64, 0.35, 0.6, 3);
        let b = LayerBalance::new(&fs, 32, 128, BalanceMode::GbS);
        let g = &b.groups[0];
        // Every unit holds two filters whose mean density is near the group mean.
        let dens: Vec<f64> = fs.iter().map(Filter::density).collect();
        let group_mean: f64 =
            g.produced_order.iter().map(|&f| dens[f]).sum::<f64>() / g.num_filters() as f64;
        for slots in &g.per_cu {
            assert_eq!(slots.len(), 2);
            let pair_mean = (dens[slots[0]] + dens[slots[1]]) / 2.0;
            assert!(
                (pair_mean - group_mean).abs() < 0.08,
                "pair {pair_mean} vs group {group_mean}"
            );
        }
    }

    #[test]
    fn gbs_collocation_halves_units_for_small_layers() {
        // GoogLeNet 5x5red pathology: 16 filters on 16 units → 8 busy.
        let fs = filters(16, 0.35, 0.3, 4);
        let b = LayerBalance::new(&fs, 16, 128, BalanceMode::GbS);
        assert_eq!(b.groups.len(), 1);
        assert_eq!(b.groups[0].busy_units(), 8);
        let plain = LayerBalance::new(&fs, 16, 128, BalanceMode::None);
        assert_eq!(plain.groups[0].busy_units(), 16);
    }

    #[test]
    fn gbs_nocolloc_sorts_without_pairing() {
        let fs = filters(70, 0.35, 0.6, 12);
        let b = LayerBalance::new(&fs, 32, 128, BalanceMode::GbSNoColloc);
        assert_eq!(b.groups.len(), 3); // 32 + 32 + 6, one filter per unit
        for g in &b.groups {
            for slots in &g.per_cu {
                assert!(slots.len() <= 1, "no collocation allowed");
            }
        }
        // Produced order must be density-sorted, descending.
        let dens: Vec<f64> = fs.iter().map(Filter::density).collect();
        let order: Vec<f64> = b.produced_channels.iter().map(|&f| dens[f]).collect();
        assert!(order.windows(2).all(|w| w[0] >= w[1]));
        // And it is a permutation.
        let mut seen = [false; 70];
        for &f in &b.produced_channels {
            assert!(!seen[f]);
            seen[f] = true;
        }
    }

    #[test]
    fn gbh_has_per_chunk_assignments() {
        let fs = filters(64, 0.4, 0.5, 5);
        let b = LayerBalance::new(&fs, 32, 128, BalanceMode::GbH);
        let g = &b.groups[0];
        // 64-channel 3x3 filter → 9 chunks of 128 (64 padded to 128).
        assert_eq!(g.per_chunk_cu.len(), 9);
        for chunk in &g.per_chunk_cu {
            let total: usize = chunk.iter().map(Vec::len).sum();
            assert_eq!(total, 64);
        }
    }

    #[test]
    fn gbh_routing_is_a_bijection_onto_owner_slots() {
        let fs = filters(64, 0.4, 0.5, 6);
        let b = LayerBalance::new(&fs, 32, 128, BalanceMode::GbH);
        let g = &b.groups[0];
        for c in 0..g.per_chunk_cu.len() {
            let mapping = g.chunk_routing(c);
            assert_eq!(mapping.len(), 64);
            let mut dsts: Vec<usize> = mapping.iter().map(|&(_, d)| d).collect();
            dsts.sort_unstable();
            assert_eq!(dsts, (0..64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn k_way_collocation_balances_and_permutes() {
        let fs = filters(64, 0.35, 0.6, 21);
        for k in [1usize, 2, 4] {
            let b = LayerBalance::with_collocation(&fs, 8, 128, k, false);
            // Permutation property.
            let mut seen = [false; 64];
            for &f in &b.produced_channels {
                assert!(!seen[f], "k={k}: duplicate {f}");
                seen[f] = true;
            }
            assert!(seen.iter().all(|&x| x), "k={k}: missing channels");
            // Slot counts.
            for g in &b.groups {
                for slots in &g.per_cu {
                    assert!(slots.len() <= k, "k={k}: too many slots");
                }
            }
        }
    }

    #[test]
    fn deeper_collocation_tightens_per_unit_totals() {
        let fs = filters(64, 0.35, 0.7, 22);
        let dens: Vec<f64> = fs.iter().map(Filter::density).collect();
        let spread_for = |k: usize| {
            let b = LayerBalance::with_collocation(&fs, 8, 128, k, false);
            let g = &b.groups[0];
            let totals: Vec<f64> = g
                .per_cu
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| s.iter().map(|&f| dens[f]).sum::<f64>() / s.len() as f64)
                .collect();
            let max = totals.iter().cloned().fold(f64::MIN, f64::max);
            let min = totals.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(
            spread_for(4) < spread_for(1),
            "k=4 must balance better than k=1"
        );
    }

    #[test]
    fn k_way_chunk_routing_is_bijective() {
        let fs = filters(32, 0.4, 0.5, 23);
        let b = LayerBalance::with_collocation(&fs, 8, 128, 4, true);
        let g = &b.groups[0];
        for c in 0..g.per_chunk_cu.len() {
            let mapping = g.chunk_routing(c);
            let mut dsts: Vec<usize> = mapping.iter().map(|&(_, d)| d).collect();
            dsts.sort_unstable();
            assert_eq!(dsts, (0..g.num_filters()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn unshuffle_restores_logical_weights() {
        let fs = filters(8, 0.5, 0.4, 7);
        let b = LayerBalance::new(&fs, 4, 128, BalanceMode::GbS);
        // Next layer: 8-channel filters.
        let next_shape = ConvShape::new(8, 4, 4, 3, 2, 1, 1);
        let original = random_filters(&next_shape, 0.8, 0.0, 8);
        let mut unshuffled = original.clone();
        unshuffle_next_layer(&mut unshuffled, &b.produced_channels);
        // Weight of produced channel p must equal original weight of the
        // logical channel emitted there.
        for (orig, unsh) in original.iter().zip(&unshuffled) {
            for (p, &logical) in b.produced_channels.iter().enumerate() {
                for fy in 0..3 {
                    for fx in 0..3 {
                        assert_eq!(
                            unsh.weights().get(p, fx, fy),
                            orig.weights().get(logical, fx, fy)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paired_densities_have_less_spread() {
        let fs = filters(128, 0.3, 0.7, 9);
        let singles: Vec<f64> = fs
            .iter()
            .map(|f| filter_to_chunks(f, 128).chunks()[0].density())
            .collect();
        let pairs = paired_chunk_densities(&fs, 128, 0);
        let spread = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(
            spread(&pairs) < spread(&singles) * 0.6,
            "pairs {} vs singles {}",
            spread(&pairs),
            spread(&singles)
        );
    }

    #[test]
    fn utilization_of_balanced_work_is_one() {
        assert_eq!(utilization(&[vec![3, 3, 3], vec![2, 2, 2]]), 1.0);
    }

    #[test]
    fn utilization_of_imbalanced_work_drops() {
        let u = utilization(&[vec![4, 1, 1]]);
        assert!((u - 0.5).abs() < 1e-12);
    }
}
