//! Output-map memory management (§3.1, second half).
//!
//! Each cluster writes its output values into its own contiguous memory
//! region so value writes never serialize across clusters. Regions are
//! provisioned for the average case plus padding (~10 %), with a
//! watermark-triggered background fallback allocation. This module wires
//! the engine's per-cluster output counts through the
//! [`sparten_tensor::RegionAllocator`] and reports what the layer actually
//! needed — fallbacks, emergency stalls, and fragmentation slack.

use sparten_nn::ConvShape;
use sparten_tensor::RegionAllocator;

use crate::config::AcceleratorConfig;
use crate::engine::LayerRun;

/// What happened while writing one layer's outputs to memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Output values written across all clusters.
    pub values_written: usize,
    /// Background fallback allocations serviced (watermark crossings).
    pub fallbacks_serviced: usize,
    /// Emergency extents taken synchronously (a provisioning miss — the
    /// cluster would have stalled).
    pub emergency_extents: usize,
    /// Unused capacity left across regions (internal fragmentation).
    pub slack: usize,
}

/// Per-cluster output regions for one layer.
#[derive(Debug, Clone)]
pub struct OutputMemory {
    allocator: RegionAllocator,
    fallback_extent: usize,
}

impl OutputMemory {
    /// Provisions regions for a layer: each cluster expects its share of
    /// `num_outputs × expected_density` values, padded by `padding`
    /// (the paper suggests ~10 %), with fallback allocation triggered at
    /// `watermark` fill.
    ///
    /// # Panics
    ///
    /// Panics if `expected_density` is not in `[0, 1]` (padding/watermark
    /// validity is checked by the allocator).
    pub fn for_layer(
        config: &AcceleratorConfig,
        shape: &ConvShape,
        expected_density: f64,
        padding: f64,
        watermark: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&expected_density),
            "density must be in [0, 1]"
        );
        let per_cluster = (shape.num_outputs() as f64 * expected_density
            / config.num_clusters as f64)
            .ceil() as usize;
        OutputMemory {
            allocator: RegionAllocator::new(config.num_clusters, per_cluster, padding, watermark),
            fallback_extent: (per_cluster / 4).max(1),
        }
    }

    /// The underlying allocator.
    pub fn allocator(&self) -> &RegionAllocator {
        &self.allocator
    }

    /// Writes one functional run's outputs through the regions, servicing
    /// watermark fallbacks as the CPU would, and reports the outcome.
    ///
    /// # Panics
    ///
    /// Panics if the run has a different cluster count.
    pub fn commit_run(&mut self, run: &LayerRun) -> MemoryReport {
        assert_eq!(
            run.trace.clusters.len(),
            self.allocator.num_regions(),
            "cluster count mismatch"
        );
        let mut report = MemoryReport::default();
        for (c, trace) in run.trace.clusters.iter().enumerate() {
            let region = self.allocator.region_mut(c);
            let extents_before = region.num_fallback_extents();
            let mut serviced_here = 0usize;
            // Stream the cluster's output in collector-sized bursts (one
            // group of cells at a time) so the watermark logic engages the
            // way it would online.
            let mut remaining = trace.output_nnz as usize;
            while remaining > 0 {
                let burst = remaining.min(32);
                region.append(burst);
                remaining -= burst;
                report.values_written += burst;
                if region.fallback_pending() {
                    region.grant_fallback(self.fallback_extent);
                    serviced_here += 1;
                }
            }
            // Any extent we did not grant ourselves was an emergency
            // (synchronous) allocation — a provisioning miss.
            let extents_added = region.num_fallback_extents() - extents_before;
            report.fallbacks_serviced += serviced_here;
            report.emergency_extents += extents_added - serviced_here;
        }
        report.slack = self.allocator.total_slack();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::BalanceMode;
    use crate::config::ClusterConfig;
    use crate::engine::SparTenEngine;
    use sparten_nn::generate::workload;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig {
            cluster: ClusterConfig {
                compute_units: 4,
                chunk_size: 64,
                bisection_limit: 4,
            },
            num_clusters: 2,
        }
    }

    fn run_layer(seed: u64) -> (ConvShape, LayerRun) {
        let shape = ConvShape::new(16, 8, 8, 3, 12, 1, 1);
        let w = workload(&shape, 0.5, 0.4, seed);
        let engine = SparTenEngine::new(config());
        (shape, engine.run_layer(&w, BalanceMode::GbS, true))
    }

    #[test]
    fn well_provisioned_regions_take_no_emergency_extents() {
        let (shape, run) = run_layer(1);
        let actual: u64 = run.trace.clusters.iter().map(|c| c.output_nnz).sum();
        let density = actual as f64 / shape.num_outputs() as f64;
        // Provision at the true density + 10 % padding.
        let mut mem = OutputMemory::for_layer(&config(), &shape, density, 0.10, 0.9);
        let report = mem.commit_run(&run);
        assert_eq!(report.values_written as u64, actual);
        assert_eq!(report.emergency_extents, 0, "{report:?}");
    }

    #[test]
    fn underprovisioning_triggers_fallbacks() {
        let (shape, run) = run_layer(2);
        // Provision for a quarter of the real output.
        let actual: u64 = run.trace.clusters.iter().map(|c| c.output_nnz).sum();
        let density = actual as f64 / shape.num_outputs() as f64 / 4.0;
        let mut mem = OutputMemory::for_layer(&config(), &shape, density, 0.10, 0.9);
        let report = mem.commit_run(&run);
        assert!(report.fallbacks_serviced > 0, "{report:?}");
        assert_eq!(report.values_written as u64, actual);
    }

    #[test]
    fn slack_reflects_overprovisioning() {
        let (shape, run) = run_layer(3);
        let mut mem = OutputMemory::for_layer(&config(), &shape, 1.0, 0.10, 0.95);
        let report = mem.commit_run(&run);
        assert!(report.slack > 0);
        assert_eq!(report.emergency_extents, 0);
    }
}
