//! The accelerator's BLAS-like interface (§3.2).
//!
//! "The accelerator exposes BLAS-like interfaces for matrix-vector
//! (`C ← Ax + y`) and matrix-matrix multiplications (`C ← A × B`) with some
//! simplifications. The interface allows for incremental construction of
//! vectors to handle non-contiguous layout of tensors." [`VectorBuilder`]
//! is that incremental construction; [`SparseMatrix`] wraps the filter rows
//! and executes via the same inner-join chunks the clusters use.

use sparten_tensor::SparseVector;

/// Incrementally assembles a logical vector from non-contiguous tensor
/// segments, then finalizes it into the chunked sparse representation.
///
/// # Example
///
/// ```
/// use sparten_core::VectorBuilder;
///
/// let mut b = VectorBuilder::new(4);
/// b.append(&[1.0, 0.0]);
/// b.append_zeros(3);
/// b.append(&[2.0]);
/// let v = b.finish();
/// assert_eq!(v.logical_len(), 6);
/// assert_eq!(v.nnz(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VectorBuilder {
    data: Vec<f32>,
    chunk_size: usize,
}

impl VectorBuilder {
    /// Starts a builder producing chunks of `chunk_size` positions.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        VectorBuilder {
            data: Vec::new(),
            chunk_size,
        }
    }

    /// Appends a dense segment.
    pub fn append(&mut self, segment: &[f32]) -> &mut Self {
        self.data.extend_from_slice(segment);
        self
    }

    /// Appends `count` zeros (a gap in the linearized layout).
    pub fn append_zeros(&mut self, count: usize) -> &mut Self {
        self.data.extend(std::iter::repeat_n(0.0, count));
        self
    }

    /// Pads to the next chunk boundary (tap alignment, §3.1).
    pub fn align_to_chunk(&mut self) -> &mut Self {
        let rem = self.data.len() % self.chunk_size;
        if rem != 0 {
            self.append_zeros(self.chunk_size - rem);
        }
        self
    }

    /// Current logical length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Finalizes into the chunked sparse representation.
    ///
    /// # Panics
    ///
    /// Panics if nothing was appended.
    pub fn finish(&self) -> SparseVector {
        assert!(!self.data.is_empty(), "cannot finish an empty vector");
        SparseVector::from_dense(&self.data, self.chunk_size)
    }
}

/// A sparse matrix as rows of chunked sparse vectors — the form in which a
/// cluster sees "all the filters".
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    rows: Vec<SparseVector>,
    num_cols: usize,
    chunk_size: usize,
}

impl SparseMatrix {
    /// Builds a matrix from dense rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, rows are ragged, or `chunk_size == 0`.
    pub fn from_rows(rows: &[Vec<f32>], chunk_size: usize) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let num_cols = rows[0].len();
        let rows: Vec<SparseVector> = rows
            .iter()
            .map(|r| {
                assert_eq!(r.len(), num_cols, "ragged rows are not allowed");
                SparseVector::from_dense(r, chunk_size)
            })
            .collect();
        SparseMatrix {
            rows,
            num_cols,
            chunk_size,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (logical row length).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// The rows as sparse vectors.
    pub fn rows(&self) -> &[SparseVector] {
        &self.rows
    }

    /// `C ← A·x + y`: sparse matrix-vector multiply-accumulate via per-row
    /// inner joins. `y` may be `None` for a plain product.
    ///
    /// # Panics
    ///
    /// Panics if `x` has a different logical length or chunk size, or `y`
    /// (when given) has a different length than the row count.
    pub fn spmv(&self, x: &SparseVector, y: Option<&[f32]>) -> Vec<f32> {
        assert_eq!(x.logical_len(), self.num_cols, "dimension mismatch");
        assert_eq!(x.chunk_size(), self.chunk_size, "chunk size mismatch");
        if let Some(y) = y {
            assert_eq!(y.len(), self.rows.len(), "y length mismatch");
        }
        self.rows
            .iter()
            .enumerate()
            .map(|(i, row)| row.dot(x) + y.map_or(0.0, |y| y[i]))
            .collect()
    }

    /// `C ← A × B`: sparse matrix-matrix product where `B` is given as
    /// columns. Returns `C` as dense row-major `num_rows × B.len()`.
    ///
    /// # Panics
    ///
    /// Panics as for [`SparseMatrix::spmv`] per column.
    pub fn spmm(&self, b_cols: &[SparseVector]) -> Vec<Vec<f32>> {
        let per_col: Vec<Vec<f32>> = b_cols.iter().map(|col| self.spmv(col, None)).collect();
        (0..self.num_rows())
            .map(|r| per_col.iter().map(|col| col[r]).collect())
            .collect()
    }

    /// Total inner-join MAC work of `A·x` — what the accelerator would
    /// execute (both operands non-zero).
    pub fn spmv_work(&self, x: &SparseVector) -> usize {
        self.rows.iter().map(|r| r.join_work(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_segments() {
        let mut b = VectorBuilder::new(4);
        b.append(&[1.0, 2.0]).append_zeros(2).append(&[3.0]);
        let v = b.finish();
        assert_eq!(v.to_dense(), vec![1.0, 2.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn builder_chunk_alignment() {
        let mut b = VectorBuilder::new(4);
        b.append(&[1.0]).align_to_chunk().append(&[2.0]);
        let v = b.finish();
        assert_eq!(v.logical_len(), 5);
        assert_eq!(v.chunks()[1].value_at(0), 2.0);
    }

    #[test]
    fn spmv_matches_dense_algebra() {
        let rows = vec![
            vec![1.0, 0.0, 2.0, 0.0],
            vec![0.0, 3.0, 0.0, 4.0],
            vec![0.0, 0.0, 0.0, 0.0],
        ];
        let m = SparseMatrix::from_rows(&rows, 2);
        let x = SparseVector::from_dense(&[5.0, 0.0, 6.0, 7.0], 2);
        let y = [10.0, 20.0, 30.0];
        let c = m.spmv(&x, Some(&y));
        assert_eq!(c, vec![5.0 + 12.0 + 10.0, 28.0 + 20.0, 30.0]);
    }

    #[test]
    fn spmv_without_y() {
        let m = SparseMatrix::from_rows(&[vec![2.0, 0.0]], 2);
        let x = SparseVector::from_dense(&[3.0, 9.0], 2);
        assert_eq!(m.spmv(&x, None), vec![6.0]);
    }

    #[test]
    fn spmm_matches_column_spmv() {
        let m = SparseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]], 2);
        let cols = vec![
            SparseVector::from_dense(&[1.0, 1.0], 2),
            SparseVector::from_dense(&[0.0, 3.0], 2),
        ];
        let c = m.spmm(&cols);
        assert_eq!(c, vec![vec![1.0, 0.0], vec![2.0, 6.0]]);
    }

    #[test]
    fn spmv_work_counts_matches_only() {
        let m = SparseMatrix::from_rows(&[vec![1.0, 1.0, 0.0, 0.0]], 4);
        let x = SparseVector::from_dense(&[0.0, 1.0, 1.0, 0.0], 4);
        assert_eq!(m.spmv_work(&x), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn spmv_dimension_mismatch_panics() {
        let m = SparseMatrix::from_rows(&[vec![1.0, 1.0]], 2);
        let x = SparseVector::from_dense(&[1.0], 2);
        m.spmv(&x, None);
    }
}
