//! SparTen's chunk-aligned linearization.
//!
//! §3.1: data is stored Z-first and "we pad the SparseMaps with 0's when the
//! channel count is a non-multiple of 128 (chunk size)". Because the filter
//! never slides along Z, each spatial tap's channel fiber is padded to a
//! whole number of chunks, so chunk boundaries never straddle taps and the
//! input-map fiber chunks can be reused across filters and output positions.
//! The extreme case is the 3-channel input image: "bit masks with three 1's
//! padded by 125 0's".

use sparten_nn::Filter;
use sparten_tensor::{SparseVector, Tensor3};

/// Padded fiber length: channels rounded up to a multiple of `chunk_size`.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn padded_fiber_len(channels: usize, chunk_size: usize) -> usize {
    assert!(chunk_size > 0, "chunk size must be positive");
    channels.div_ceil(chunk_size) * chunk_size
}

/// Linearizes the `k × k` input window at output `(ox, oy)` with each tap's
/// channel fiber padded to a whole number of chunks. Taps outside the padded
/// input contribute all-zero fibers.
pub fn linearize_window_padded(
    input: &Tensor3,
    ox: usize,
    oy: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    chunk_size: usize,
) -> Vec<f32> {
    let d = input.channels();
    let pd = padded_fiber_len(d, chunk_size);
    let mut out = Vec::with_capacity(pd * kernel * kernel);
    for fy in 0..kernel {
        for fx in 0..kernel {
            let ix = (ox * stride + fx) as isize - pad as isize;
            let iy = (oy * stride + fy) as isize - pad as isize;
            if ix >= 0 && iy >= 0 && (ix as usize) < input.height() && (iy as usize) < input.width()
            {
                out.extend_from_slice(input.fiber(ix as usize, iy as usize));
            } else {
                out.extend(std::iter::repeat_n(0.0, d));
            }
            out.extend(std::iter::repeat_n(0.0, pd - d));
        }
    }
    out
}

/// Linearizes a filter with the same per-tap chunk padding, so that the
/// inner join of a window and a filter aligns chunk-for-chunk.
pub fn linearize_filter_padded(filter: &Filter, chunk_size: usize) -> Vec<f32> {
    let d = filter.channels();
    let k = filter.kernel();
    let pd = padded_fiber_len(d, chunk_size);
    let mut out = Vec::with_capacity(pd * k * k);
    for fy in 0..k {
        for fx in 0..k {
            out.extend_from_slice(filter.weights().fiber(fx, fy));
            out.extend(std::iter::repeat_n(0.0, pd - d));
        }
    }
    out
}

/// The padded linearized filter as a chunked sparse vector.
pub fn filter_to_chunks(filter: &Filter, chunk_size: usize) -> SparseVector {
    SparseVector::from_dense(&linearize_filter_padded(filter, chunk_size), chunk_size)
}

/// Number of chunks in one window / filter: `k² · ⌈d / chunk⌉`.
pub fn chunks_per_window(channels: usize, kernel: usize, chunk_size: usize) -> usize {
    kernel * kernel * channels.div_ceil(chunk_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::random_tensor;

    #[test]
    fn padding_rounds_up() {
        assert_eq!(padded_fiber_len(3, 128), 128);
        assert_eq!(padded_fiber_len(128, 128), 128);
        assert_eq!(padded_fiber_len(192, 128), 256);
        assert_eq!(padded_fiber_len(512, 128), 512);
    }

    #[test]
    fn three_channel_image_padding() {
        // The paper's special case: 3 ones padded by 125 zeros per tap.
        let input = random_tensor(3, 4, 4, 1.0, 1);
        let w = linearize_window_padded(&input, 0, 0, 1, 1, 0, 128);
        assert_eq!(w.len(), 128);
        assert_eq!(w.iter().filter(|&&v| v != 0.0).count(), 3);
    }

    #[test]
    fn window_and_filter_chunks_align() {
        use sparten_nn::generate::random_filters;
        use sparten_nn::ConvShape;
        let shape = ConvShape::new(5, 6, 6, 3, 1, 1, 1);
        let input = random_tensor(5, 6, 6, 0.6, 2);
        let filters = random_filters(&shape, 0.5, 0.0, 3);
        let chunk = 4; // small chunk so padding bites (5 → 8 per tap)
        let w = linearize_window_padded(&input, 2, 2, 3, 1, 1, chunk);
        let f = linearize_filter_padded(&filters[0], chunk);
        assert_eq!(w.len(), f.len());
        assert_eq!(w.len(), 9 * 8);
        // The padded dot equals the unpadded convolution tap sum.
        let padded_dot: f32 = w.iter().zip(&f).map(|(a, b)| a * b).sum();
        let window = input.window_vector(2, 2, 3, 3, 1, 1);
        let lin = filters[0].linearize();
        let plain_dot: f32 = window.iter().zip(&lin).map(|(a, b)| a * b).sum();
        assert!((padded_dot - plain_dot).abs() < 1e-4);
    }

    #[test]
    fn out_of_bounds_taps_are_zero_fibers() {
        let input = random_tensor(2, 2, 2, 1.0, 4);
        // 3x3 window with pad 1 at output (0,0): 5 taps out of bounds.
        let w = linearize_window_padded(&input, 0, 0, 3, 1, 1, 2);
        let per_tap = 2;
        let zero_taps = w
            .chunks(per_tap)
            .filter(|t| t.iter().all(|&v| v == 0.0))
            .count();
        assert!(zero_taps >= 5);
    }

    #[test]
    fn chunks_per_window_formula() {
        assert_eq!(chunks_per_window(512, 3, 128), 36);
        assert_eq!(chunks_per_window(3, 11, 128), 121);
        assert_eq!(chunks_per_window(192, 1, 128), 2);
    }

    #[test]
    fn filter_to_chunks_matches_linearization() {
        use sparten_nn::generate::random_filters;
        use sparten_nn::ConvShape;
        let shape = ConvShape::new(6, 4, 4, 2, 1, 1, 0);
        let f = &random_filters(&shape, 0.5, 0.0, 5)[0];
        let sv = filter_to_chunks(f, 4);
        assert_eq!(sv.to_dense(), linearize_filter_padded(f, 4));
        assert_eq!(sv.num_chunks(), chunks_per_window(6, 2, 4));
    }
}
