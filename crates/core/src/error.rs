//! Typed errors for the accelerator model: the `SimError` plumbed from
//! the functional engine and controller up through the cycle simulators.
//!
//! Before fault injection existed, every violated invariant was an
//! `assert!`/`panic!` that killed the point. `SimError` makes those
//! conditions values: injected faults (and genuine model bugs) surface
//! as `Err` results the harness can classify, retry, or quarantine.

use sparten_tensor::TensorError;
use std::fmt;

/// An error surfaced by the accelerator model instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A sparse tensor violated its structural invariants.
    Tensor(TensorError),
    /// The CPU-side command stream violated the control protocol.
    Protocol {
        /// What was malformed.
        detail: String,
    },
    /// A compute unit with assigned work never completes.
    StuckUnit {
        /// Cluster holding the stuck unit.
        cluster: usize,
        /// Unit index within the cluster.
        unit: usize,
    },
    /// The output collector's traced nonzero count disagrees with the
    /// values actually stored (e.g. a dropped collector write).
    OutputAccounting {
        /// Nonzero writes counted by the work trace.
        traced: u64,
        /// Nonzero values present in the stored output.
        stored: u64,
    },
    /// A cross-check invariant failed (telemetry reconciliation, cycle
    /// accounting identities, ...).
    Invariant {
        /// Which check failed.
        context: String,
        /// What it reported.
        detail: String,
    },
}

impl SimError {
    /// Builds an [`SimError::Invariant`] from any displayable detail.
    pub fn invariant(context: impl Into<String>, detail: impl fmt::Display) -> Self {
        SimError::Invariant {
            context: context.into(),
            detail: detail.to_string(),
        }
    }
}

impl From<TensorError> for SimError {
    fn from(e: TensorError) -> Self {
        SimError::Tensor(e)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Tensor(e) => write!(f, "tensor invariant violated: {e}"),
            SimError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            SimError::StuckUnit { cluster, unit } => write!(
                f,
                "compute unit {unit} in cluster {cluster} is stuck with assigned work"
            ),
            SimError::OutputAccounting { traced, stored } => write!(
                f,
                "output accounting mismatch: trace counted {traced} nonzero writes, \
                 store holds {stored}"
            ),
            SimError::Invariant { context, detail } => write!(f, "{context}: {detail}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_errors_convert() {
        let e: SimError = TensorError::StrayMaskBits { len: 4 }.into();
        assert!(matches!(e, SimError::Tensor(_)));
        assert!(e.to_string().contains("tensor invariant"));
    }

    #[test]
    fn protocol_display_keeps_detail() {
        let e = SimError::Protocol {
            detail: "slots must load in order".into(),
        };
        assert!(e.to_string().contains("slots must load in order"));
    }

    #[test]
    fn invariant_helper_formats() {
        let e = SimError::invariant("telemetry reconcile", "counter drift on work.nonzero");
        assert_eq!(
            e.to_string(),
            "telemetry reconcile: counter drift on work.nonzero"
        );
    }
}
