#![warn(missing_docs)]

//! First-order analytical throughput/energy model for the SparTen
//! reproduction, plus the million-point design-space-exploration (DSE)
//! machinery built on it.
//!
//! The cycle-accurate simulators in `sparten-sim` cost on the order of a
//! millisecond per layer; answering design questions like "best chunk size
//! × cluster count × greedy-balance policy across a density grid" needs
//! millions of evaluations. Following Sparseloop's argument, this crate
//! provides a closed-form model that is ~10²–10³× cheaper per point and is
//! kept honest by a differential oracle ([`oracle`]) that compares it
//! against all four cycle-accurate simulators on every golden point.
//!
//! * [`predict`] — cycles, stall breakdown, traffic, and op counts for any
//!   [`Scheme`], as a [`SimResult`] interchangeable with the simulators'
//!   (the Figure 10 accounting identity holds by construction);
//! * [`evaluate`] — [`predict`] plus the 45 nm energy model;
//! * [`dse`] — deterministic sweep grids, batched evaluation with
//!   mergeable partial aggregates, and Pareto-frontier extraction;
//! * [`oracle`] — golden-point comparison rows and the byte-stable error
//!   report enforced by `tests/oracle_tests.rs`.

pub mod dse;
pub mod oracle;
pub mod params;
pub mod stats;

mod accel;
mod scnnm;

use sparten_energy::{EnergyModel, EnergyReport};
use sparten_sim::{Scheme, SimConfig, SimResult};

pub use params::{Geometry, LayerParams};

/// Predicts one layer's [`SimResult`] on one scheme in closed form.
///
/// The result mirrors what the corresponding cycle-accurate simulator
/// would return — same breakdown identity, same traffic formulas, same op
/// counts — but costs microseconds instead of milliseconds.
pub fn predict(params: &LayerParams, config: &SimConfig, scheme: Scheme) -> SimResult {
    match scheme {
        Scheme::Scnn | Scheme::ScnnOneSided | Scheme::ScnnDense => {
            scnnm::predict_scnn(params, config, scheme)
        }
        _ => accel::predict_accel(params, config, scheme),
    }
}

/// A predicted layer result with its energy report.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The predicted cycles/breakdown/traffic/ops.
    pub result: SimResult,
    /// Figure 13-style energy split for the prediction.
    pub energy: EnergyReport,
}

impl Evaluation {
    /// Total execution cycles (compute unless memory-bound).
    pub fn cycles(&self) -> u64 {
        self.result.cycles()
    }

    /// Total energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }
}

/// [`predict`] plus the 45 nm per-op energy model, with the per-MAC buffer
/// capacity the scheme implies (`buffer_bytes_per_mac`, Table 2-style).
pub fn evaluate(
    params: &LayerParams,
    config: &SimConfig,
    scheme: Scheme,
    buffer_bytes_per_mac: usize,
) -> Evaluation {
    let result = predict(params, config, scheme);
    let energy = EnergyModel::nm45().layer_energy(&result, buffer_bytes_per_mac);
    Evaluation { result, energy }
}

/// The per-MAC buffer capacity each scheme's datapath implies, given the
/// cluster configuration: 8 B for Dense (operand registers only), the
/// plain 20 KB-class buffer for uncollocated schemes, the collocated
/// 31 KB-class buffer for GB-S/GB-H.
pub fn scheme_buffer_bytes_per_mac(
    scheme: Scheme,
    cluster: &sparten_core::ClusterConfig,
) -> usize {
    match scheme {
        Scheme::Dense | Scheme::ScnnDense => 8,
        Scheme::SpartenGbS | Scheme::SpartenGbH => {
            cluster.buffer_bytes_collocated() / cluster.compute_units
        }
        _ => cluster.buffer_bytes_plain() / cluster.compute_units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::ConvShape;

    #[test]
    fn predict_covers_every_scheme() {
        let p = LayerParams::new(ConvShape::new(64, 8, 8, 3, 16, 1, 1), 0.4, 0.3);
        let cfg = SimConfig::small();
        for scheme in Scheme::all() {
            let r = predict(&p, &cfg, scheme);
            assert!(r.accounting_holds(), "{scheme:?}");
            assert_eq!(r.scheme, scheme.label());
        }
    }

    #[test]
    fn evaluate_produces_positive_energy() {
        let p = LayerParams::new(ConvShape::new(64, 8, 8, 3, 16, 1, 1), 0.4, 0.3);
        let cfg = SimConfig::small();
        let buf = scheme_buffer_bytes_per_mac(Scheme::SpartenGbH, &cfg.accel.cluster);
        let ev = evaluate(&p, &cfg, Scheme::SpartenGbH, buf);
        assert!(ev.energy_pj() > 0.0);
        assert!(ev.cycles() > 0);
    }
}
