//! Design-space exploration over the analytical model.
//!
//! A sweep is a deterministic cross product of axes — chunk size × compute
//! units × cluster count × per-cluster buffer capacity × scheme × layer ×
//! input density × filter density — enumerated in a fixed order and split
//! into fixed-size batches. Each batch is one executor *point*: it
//! evaluates its configurations and returns a small, mergeable partial
//! aggregate keyed by the architecture/scheme tuple (densities and layers
//! aggregate away), serialized as a byte-stable record so the harness's
//! content-addressed cache and crash-only journal apply unchanged.
//!
//! Rendering merges all batch records, computes the two objectives —
//! effective throughput (useful MACs per cycle, averaged over the density
//! grid) and energy per useful MAC — and extracts the Pareto frontier.

use std::collections::BTreeMap;

use sparten_core::{AcceleratorConfig, ClusterConfig};
use sparten_nn::ConvShape;
use sparten_sim::{Scheme, SimConfig};

use crate::params::LayerParams;

/// Version tag baked into fingerprints and records: bump when the model's
/// closed forms change, so stale cached sweeps are recomputed.
pub const MODEL_VERSION: &str = "sparten-model/v1";

/// Configurations evaluated per executor point.
pub const BATCH_SIZE: usize = 512;

/// One swept layer shape.
#[derive(Debug, Clone)]
pub struct DseLayer {
    /// Short stable name (part of the aggregate key space and reports).
    pub name: &'static str,
    /// The convolution shape.
    pub shape: ConvShape,
}

/// The sweep axes. The cross product in declaration order (chunk, units,
/// clusters, buffer, scheme, layer, input density, filter density — last
/// axis fastest) defines configuration indices.
#[derive(Debug, Clone)]
pub struct DseAxes {
    /// SparseMap chunk sizes.
    pub chunk_sizes: Vec<usize>,
    /// Compute units per cluster.
    pub compute_units: Vec<usize>,
    /// Cluster counts.
    pub cluster_counts: Vec<usize>,
    /// Per-cluster buffer capacities (KiB) for the energy model.
    pub buffer_kib: Vec<usize>,
    /// Schemes (SparTen-family only; SCNN has no chunk/unit axes).
    pub schemes: Vec<Scheme>,
    /// Layer shapes.
    pub layers: Vec<DseLayer>,
    /// Input densities.
    pub input_densities: Vec<f64>,
    /// Filter densities.
    pub filter_densities: Vec<f64>,
}

impl DseAxes {
    /// The `--quick` grid: 16 200 configurations (3 chunk × 3 units × 3
    /// clusters × 2 buffers × 4 schemes × 3 layers × 5 × 5 densities).
    pub fn quick() -> Self {
        DseAxes {
            chunk_sizes: vec![64, 128, 256],
            compute_units: vec![8, 16, 32],
            cluster_counts: vec![4, 16, 32],
            buffer_kib: vec![20, 31],
            schemes: vec![
                Scheme::OneSided,
                Scheme::SpartenNoGb,
                Scheme::SpartenGbS,
                Scheme::SpartenGbH,
            ],
            layers: vec![
                DseLayer {
                    name: "conv3_64",
                    shape: ConvShape::new(64, 14, 14, 3, 64, 1, 1),
                },
                DseLayer {
                    name: "conv3_256",
                    shape: ConvShape::new(256, 7, 7, 3, 128, 1, 1),
                },
                DseLayer {
                    name: "conv1_192",
                    shape: ConvShape::new(192, 14, 14, 1, 64, 1, 0),
                },
            ],
            input_densities: vec![0.1, 0.25, 0.4, 0.55, 0.7],
            filter_densities: vec![0.15, 0.3, 0.45, 0.6, 0.75],
        }
    }

    /// The full grid: 1 080 000 configurations (6 × 5 × 5 × 4 × 5 arch ×
    /// 5 layers × 8 × 9 densities).
    pub fn full() -> Self {
        DseAxes {
            chunk_sizes: vec![16, 32, 64, 128, 256, 512],
            compute_units: vec![4, 8, 16, 32, 64],
            cluster_counts: vec![1, 4, 8, 16, 32],
            buffer_kib: vec![8, 16, 31, 64],
            schemes: vec![
                Scheme::Dense,
                Scheme::OneSided,
                Scheme::SpartenNoGb,
                Scheme::SpartenGbS,
                Scheme::SpartenGbH,
            ],
            layers: vec![
                DseLayer {
                    name: "conv3_64",
                    shape: ConvShape::new(64, 14, 14, 3, 64, 1, 1),
                },
                DseLayer {
                    name: "conv3_256",
                    shape: ConvShape::new(256, 7, 7, 3, 128, 1, 1),
                },
                DseLayer {
                    name: "conv1_192",
                    shape: ConvShape::new(192, 14, 14, 1, 64, 1, 0),
                },
                DseLayer {
                    name: "conv5_48",
                    shape: ConvShape::new(48, 28, 28, 5, 64, 1, 2),
                },
                DseLayer {
                    name: "conv3s2_64",
                    shape: ConvShape::new(64, 28, 28, 3, 64, 2, 1),
                },
            ],
            input_densities: vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9],
            filter_densities: vec![0.1, 0.2, 0.3, 0.35, 0.4, 0.5, 0.7, 0.9, 1.0],
        }
    }

    /// Total configurations in the cross product.
    pub fn num_configs(&self) -> usize {
        self.chunk_sizes.len()
            * self.compute_units.len()
            * self.cluster_counts.len()
            * self.buffer_kib.len()
            * self.schemes.len()
            * self.layers.len()
            * self.input_densities.len()
            * self.filter_densities.len()
    }

    /// A complete, byte-stable description of the sweep — the cache/journal
    /// fingerprint.
    pub fn fingerprint(&self) -> String {
        let layers: Vec<String> = self
            .layers
            .iter()
            .map(|l| {
                let s = &l.shape;
                format!(
                    "{}:{}x{}x{}k{}n{}s{}p{}",
                    l.name,
                    s.in_channels,
                    s.in_height,
                    s.in_width,
                    s.kernel,
                    s.num_filters,
                    s.stride,
                    s.pad
                )
            })
            .collect();
        let schemes: Vec<&str> = self.schemes.iter().map(|s| s.label()).collect();
        format!(
            "{MODEL_VERSION} dse(chunks={:?} units={:?} clusters={:?} kib={:?} \
             schemes=[{}] layers=[{}] rho_i={:?} rho_f={:?} batch={BATCH_SIZE})",
            self.chunk_sizes,
            self.compute_units,
            self.cluster_counts,
            self.buffer_kib,
            schemes.join(","),
            layers.join(","),
            self.input_densities,
            self.filter_densities,
        )
    }
}

/// One concrete configuration (decoded from a flat index).
struct DseConfig<'a> {
    chunk: usize,
    units: usize,
    clusters: usize,
    kib: usize,
    scheme: Scheme,
    layer: &'a DseLayer,
    rho_i: f64,
    rho_f: f64,
}

/// A sweep ready for batched evaluation.
#[derive(Debug, Clone)]
pub struct DseGrid {
    /// The axes.
    pub axes: DseAxes,
}

impl DseGrid {
    /// Wraps axes into a grid.
    pub fn new(axes: DseAxes) -> Self {
        DseGrid { axes }
    }

    /// Number of executor points (batches).
    pub fn num_batches(&self) -> usize {
        self.axes.num_configs().div_ceil(BATCH_SIZE)
    }

    fn decode(&self, mut idx: usize) -> DseConfig<'_> {
        let a = &self.axes;
        let take = |idx: &mut usize, len: usize| {
            let v = *idx % len;
            *idx /= len;
            v
        };
        // Fastest axis last in declaration order: decode in reverse.
        let i_rf = take(&mut idx, a.filter_densities.len());
        let i_ri = take(&mut idx, a.input_densities.len());
        let i_layer = take(&mut idx, a.layers.len());
        let i_scheme = take(&mut idx, a.schemes.len());
        let i_kib = take(&mut idx, a.buffer_kib.len());
        let i_clusters = take(&mut idx, a.cluster_counts.len());
        let i_units = take(&mut idx, a.compute_units.len());
        let i_chunk = idx;
        DseConfig {
            chunk: a.chunk_sizes[i_chunk],
            units: a.compute_units[i_units],
            clusters: a.cluster_counts[i_clusters],
            kib: a.buffer_kib[i_kib],
            scheme: a.schemes[i_scheme],
            layer: &a.layers[i_layer],
            rho_i: a.input_densities[i_ri],
            rho_f: a.filter_densities[i_rf],
        }
    }

    /// Evaluates one batch and serializes its partial aggregates as a
    /// byte-stable record (the executor point payload).
    pub fn batch_record(&self, batch: usize) -> String {
        let total = self.axes.num_configs();
        let lo = batch * BATCH_SIZE;
        let hi = ((batch + 1) * BATCH_SIZE).min(total);
        // Few distinct arch keys per batch (densities are the fast axes):
        // an ordered map keeps the record deterministic.
        let mut aggs: BTreeMap<String, Aggregate> = BTreeMap::new();
        for idx in lo..hi {
            let c = self.decode(idx);
            let cfg = SimConfig {
                accel: AcceleratorConfig {
                    cluster: ClusterConfig {
                        compute_units: c.units,
                        chunk_size: c.chunk,
                        bisection_limit: 4,
                    },
                    num_clusters: c.clusters,
                },
                ..SimConfig::large()
            };
            let params = LayerParams::new(c.layer.shape, c.rho_i, c.rho_f);
            let bytes_per_mac = c.kib * 1024 / c.units;
            let ev = crate::evaluate(&params, &cfg, c.scheme, bytes_per_mac);
            let key = format!(
                "chunk={},units={},clusters={},kib={},scheme={}",
                c.chunk,
                c.units,
                c.clusters,
                c.kib,
                c.scheme.label()
            );
            let agg = aggs.entry(key).or_default();
            agg.n += 1;
            agg.cycles += ev.cycles() as f64;
            agg.macs += ev.result.breakdown.nonzero as f64;
            agg.energy_pj += ev.energy_pj();
            if ev.result.is_memory_bound() {
                agg.mem_bound += 1;
            }
        }
        let mut out = format!("dse-batch {MODEL_VERSION} batch={batch} lo={lo} hi={hi}\n");
        for (key, a) in &aggs {
            out.push_str(&format!(
                "{key} n={} cycles={} macs={} energy={} membound={}\n",
                a.n, a.cycles, a.macs, a.energy_pj, a.mem_bound
            ));
        }
        out
    }
}

/// Mergeable partial aggregate for one architecture/scheme key.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Aggregate {
    /// Configurations aggregated.
    pub n: u64,
    /// Σ total cycles.
    pub cycles: f64,
    /// Σ useful (non-zero) MACs.
    pub macs: f64,
    /// Σ energy (pJ).
    pub energy_pj: f64,
    /// Configurations whose memory system was the bottleneck.
    pub mem_bound: u64,
}

/// Parses one batch record back into its aggregates.
pub fn parse_record(record: &str) -> Result<Vec<(String, Aggregate)>, String> {
    let mut lines = record.lines();
    let header = lines.next().ok_or("empty dse record")?;
    if !header.starts_with("dse-batch ") {
        return Err(format!("bad dse record header: {header:?}"));
    }
    if !header.contains(MODEL_VERSION) {
        return Err(format!("dse record from a different model version: {header:?}"));
    }
    let mut out = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (key, rest) = line.rsplitn(6, ' ').collect::<Vec<_>>().split_last().map(
            |(k, fields)| {
                let mut f = fields.to_vec();
                f.reverse();
                (k.to_string(), f)
            },
        ).ok_or_else(|| format!("bad dse record line: {line:?}"))?;
        let mut agg = Aggregate::default();
        for field in rest {
            let (name, value) = field
                .split_once('=')
                .ok_or_else(|| format!("bad dse field: {field:?}"))?;
            match name {
                "n" => agg.n = value.parse().map_err(|e| format!("n: {e}"))?,
                "cycles" => agg.cycles = value.parse().map_err(|e| format!("cycles: {e}"))?,
                "macs" => agg.macs = value.parse().map_err(|e| format!("macs: {e}"))?,
                "energy" => agg.energy_pj = value.parse().map_err(|e| format!("energy: {e}"))?,
                "membound" => {
                    agg.mem_bound = value.parse().map_err(|e| format!("membound: {e}"))?
                }
                other => return Err(format!("unknown dse field {other:?}")),
            }
        }
        out.push((key, agg));
    }
    Ok(out)
}

/// Merges all batch records into per-key totals.
pub fn merge_records(records: &[String]) -> Result<BTreeMap<String, Aggregate>, String> {
    let mut merged: BTreeMap<String, Aggregate> = BTreeMap::new();
    for record in records {
        for (key, a) in parse_record(record)? {
            let m = merged.entry(key).or_default();
            m.n += a.n;
            m.cycles += a.cycles;
            m.macs += a.macs;
            m.energy_pj += a.energy_pj;
            m.mem_bound += a.mem_bound;
        }
    }
    Ok(merged)
}

/// One aggregated design point with its two objectives.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Architecture/scheme key.
    pub key: String,
    /// Useful MACs per cycle, averaged over the density grid and layers.
    pub throughput: f64,
    /// Energy per useful MAC (pJ).
    pub energy_per_mac_pj: f64,
    /// Configurations aggregated into the point.
    pub n: u64,
    /// How many were memory-bound.
    pub mem_bound: u64,
}

/// Converts merged aggregates into objective points (deterministic order:
/// descending throughput, then ascending energy, then key).
pub fn objective_points(merged: &BTreeMap<String, Aggregate>) -> Vec<DsePoint> {
    let mut points: Vec<DsePoint> = merged
        .iter()
        .filter(|(_, a)| a.cycles > 0.0 && a.macs > 0.0)
        .map(|(key, a)| DsePoint {
            key: key.clone(),
            throughput: a.macs / a.cycles,
            energy_per_mac_pj: a.energy_pj / a.macs,
            n: a.n,
            mem_bound: a.mem_bound,
        })
        .collect();
    points.sort_by(|x, y| {
        y.throughput
            .partial_cmp(&x.throughput)
            .unwrap()
            .then(x.energy_per_mac_pj.partial_cmp(&y.energy_per_mac_pj).unwrap())
            .then(x.key.cmp(&y.key))
    });
    points
}

/// Extracts the Pareto frontier: maximize throughput, minimize energy per
/// MAC. Input must be in [`objective_points`] order.
pub fn pareto_frontier(points: &[DsePoint]) -> Vec<DsePoint> {
    let mut frontier: Vec<DsePoint> = Vec::new();
    let mut best_energy = f64::INFINITY;
    for p in points {
        if p.energy_per_mac_pj < best_energy {
            best_energy = p.energy_per_mac_pj;
            frontier.push(p.clone());
        }
    }
    frontier
}

/// Renders the frontier as a small JSON artifact (hand-rolled: the
/// workspace is dependency-free and `sparten-bench`'s writer would be a
/// circular dependency from here).
pub fn frontier_json(frontier: &[DsePoint], total_configs: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"schema\": \"{MODEL_VERSION}/frontier\",\n"));
    s.push_str(&format!("  \"total_configs\": {total_configs},\n"));
    s.push_str("  \"frontier\": [\n");
    for (i, p) in frontier.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"key\": \"{}\", \"throughput_macs_per_cycle\": {}, \
             \"energy_per_mac_pj\": {}, \"configs\": {}, \"mem_bound\": {}}}{}\n",
            p.key,
            p.throughput,
            p.energy_per_mac_pj,
            p.n,
            p.mem_bound,
            if i + 1 < frontier.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_is_at_least_ten_thousand_configs() {
        assert!(DseAxes::quick().num_configs() >= 10_000);
    }

    #[test]
    fn full_grid_is_about_a_million_configs() {
        assert!(DseAxes::full().num_configs() >= 1_000_000);
    }

    #[test]
    fn batch_records_roundtrip_and_are_deterministic() {
        let grid = DseGrid::new(DseAxes::quick());
        let r1 = grid.batch_record(0);
        let r2 = grid.batch_record(0);
        assert_eq!(r1, r2);
        let parsed = parse_record(&r1).unwrap();
        assert!(!parsed.is_empty());
        let total: u64 = parsed.iter().map(|(_, a)| a.n).sum();
        assert_eq!(total, BATCH_SIZE as u64);
    }

    #[test]
    fn merge_covers_every_config_exactly_once() {
        let grid = DseGrid::new(DseAxes::quick());
        let records: Vec<String> = (0..grid.num_batches())
            .map(|b| grid.batch_record(b))
            .collect();
        let merged = merge_records(&records).unwrap();
        let total: u64 = merged.values().map(|a| a.n).sum();
        assert_eq!(total, grid.axes.num_configs() as u64);
    }

    #[test]
    fn frontier_is_nonempty_and_monotone() {
        let grid = DseGrid::new(DseAxes::quick());
        let records: Vec<String> = (0..grid.num_batches())
            .map(|b| grid.batch_record(b))
            .collect();
        let merged = merge_records(&records).unwrap();
        let points = objective_points(&merged);
        let frontier = pareto_frontier(&points);
        assert!(!frontier.is_empty());
        for w in frontier.windows(2) {
            assert!(w[0].throughput >= w[1].throughput);
            assert!(w[0].energy_per_mac_pj > w[1].energy_per_mac_pj);
        }
    }
}
