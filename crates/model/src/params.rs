//! Layer parameters and convolution geometry for the analytical model.
//!
//! The model consumes a [`LayerParams`]: the convolution shape plus three
//! density statistics. Two construction paths exist on purpose:
//!
//! * [`LayerParams::from_spec`] derives the statistics from a
//!   [`LayerSpec`]'s nominal densities and the workload generator's
//!   per-filter density spread — the pure closed-form path used by
//!   design-space exploration, where no tensors are ever materialized;
//! * [`LayerParams::from_measurement`] takes exact measured counts from
//!   [`sparten_sim::MaskModel::measure`] — the path the differential oracle
//!   uses, so that validation isolates the model's *structural* error from
//!   density-measurement error.
//!
//! The geometry helpers compute the padding *coverage factor* exactly: the
//! fraction of (output position, kernel tap) pairs whose input read lands in
//! bounds. Out-of-bounds taps contribute zero work in every simulator, so
//! every work expectation below scales by coverage. Coverage separates by
//! axis (`cov(ox, oy) = cov_x(ox) · cov_y(oy)`), which lets us compute both
//! the global mean and exact per-cluster means (clusters own contiguous
//! output-position slices, so border rows concentrate in specific clusters)
//! with prefix sums in `O(oh + ow + clusters)`.

use sparten_nn::networks::LayerSpec;
use sparten_nn::ConvShape;
use sparten_sim::LayerMeasurement;

/// The per-filter density spread the workload generator applies by default
/// (`sparten_nn::generate::workload` draws each filter's density uniformly
/// from `[lo, hi]` with `hi = min(d·(1+spread), 1)`).
pub const DEFAULT_FILTER_SPREAD: f64 = 0.5;

/// Densities and shape of one convolution layer, as the model sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerParams {
    /// The convolution shape.
    pub shape: ConvShape,
    /// Fraction of non-zero input cells.
    pub input_density: f64,
    /// Mean fraction of non-zero weights across filters.
    pub filter_density: f64,
    /// Standard deviation of the per-filter densities (drives the
    /// greedy-balance imbalance terms).
    pub filter_density_std: f64,
}

impl LayerParams {
    /// Closed-form construction from shape and densities, assuming the
    /// default generator spread for the per-filter variation.
    pub fn new(shape: ConvShape, input_density: f64, filter_density: f64) -> Self {
        LayerParams {
            shape,
            input_density,
            filter_density,
            filter_density_std: spread_std(filter_density, DEFAULT_FILTER_SPREAD),
        }
    }

    /// From a Table 3 layer spec (nominal densities, default spread).
    pub fn from_spec(spec: &LayerSpec) -> Self {
        LayerParams::new(spec.shape, spec.input_density, spec.filter_density)
    }

    /// From exact measured mask statistics (the differential-oracle path).
    pub fn from_measurement(shape: ConvShape, m: &LayerMeasurement) -> Self {
        LayerParams {
            shape,
            input_density: m.input_density,
            filter_density: m.filter_density,
            filter_density_std: m.filter_density_std,
        }
    }

    /// Dense MAC count *excluding* out-of-bounds taps — the denominator the
    /// simulators' `total_sparse_macs` is drawn from.
    pub fn covered_dense_macs(&self, geo: &Geometry) -> f64 {
        self.shape.dense_macs() as f64 * geo.cov_mean
    }
}

/// Standard deviation of the generator's uniform per-filter density draw.
pub fn spread_std(density: f64, spread: f64) -> f64 {
    let hi = (density * (1.0 + spread)).min(1.0);
    let lo = (2.0 * density - hi).max(0.02).min(hi);
    (hi - lo) / 12f64.sqrt()
}

/// Exact padding-coverage geometry of one layer.
#[derive(Debug, Clone)]
pub struct Geometry {
    /// Output height / width.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
    /// Output positions (`oh · ow`).
    pub positions: usize,
    /// Per-`ox` fraction of the `k` x-taps that read in bounds.
    pub cov_x: Vec<f64>,
    /// Per-`oy` fraction of the `k` y-taps that read in bounds.
    pub cov_y: Vec<f64>,
    /// Mean coverage over all positions: `mean(cov_x) · mean(cov_y)`.
    pub cov_mean: f64,
}

impl Geometry {
    /// Computes the exact coverage geometry of `shape`.
    pub fn new(shape: &ConvShape) -> Self {
        let oh = shape.out_height();
        let ow = shape.out_width();
        let cov_x = axis_coverage(oh, shape.in_height, shape.kernel, shape.stride, shape.pad);
        let cov_y = axis_coverage(ow, shape.in_width, shape.kernel, shape.stride, shape.pad);
        let mx = cov_x.iter().sum::<f64>() / oh as f64;
        let my = cov_y.iter().sum::<f64>() / ow as f64;
        Geometry {
            oh,
            ow,
            positions: oh * ow,
            cov_x,
            cov_y,
            cov_mean: mx * my,
        }
    }

    /// Exact mean coverage of each cluster's contiguous position slice.
    ///
    /// The simulators assign positions `p = ox + oh·oy` in scan order:
    /// cluster `c` owns `[n·c/P, n·(c+1)/P)`. Border rows (low/high `oy`)
    /// therefore land in the first/last clusters, which matters for the
    /// makespan: it is a max over clusters, not an average.
    pub fn cluster_coverage(&self, num_clusters: usize) -> Vec<f64> {
        let n = self.positions;
        // Prefix sums of cov_x so a partial row is O(1).
        let mut px = Vec::with_capacity(self.oh + 1);
        px.push(0.0);
        for &c in &self.cov_x {
            px.push(px.last().unwrap() + c);
        }
        let mut out = Vec::with_capacity(num_clusters);
        for c in 0..num_clusters {
            let lo = n * c / num_clusters;
            let hi = n * (c + 1) / num_clusters;
            if hi == lo {
                out.push(self.cov_mean);
                continue;
            }
            let mut sum = 0.0;
            let mut p = lo;
            while p < hi {
                let y = p / self.oh;
                let row_end = ((y + 1) * self.oh).min(hi);
                let a = p - y * self.oh;
                let b = row_end - y * self.oh;
                sum += self.cov_y[y] * (px[b] - px[a]);
                p = row_end;
            }
            out.push(sum / (hi - lo) as f64);
        }
        out
    }

    /// Sizes of each cluster's position slice.
    pub fn cluster_sizes(&self, num_clusters: usize) -> Vec<usize> {
        let n = self.positions;
        (0..num_clusters)
            .map(|c| n * (c + 1) / num_clusters - n * c / num_clusters)
            .collect()
    }
}

/// Per-output-coordinate tap coverage along one axis: for output index `o`,
/// the fraction of taps `t ∈ [0, k)` with `0 ≤ o·stride + t − pad < len_in`.
fn axis_coverage(len_out: usize, len_in: usize, k: usize, stride: usize, pad: usize) -> Vec<f64> {
    (0..len_out)
        .map(|o| {
            let base = (o * stride) as i64 - pad as i64;
            let lo = (-base).max(0);
            let hi = (len_in as i64 - base).min(k as i64);
            ((hi - lo).max(0)) as f64 / k as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_padding_means_full_coverage() {
        let shape = ConvShape::new(16, 8, 8, 3, 4, 1, 0);
        let geo = Geometry::new(&shape);
        assert!((geo.cov_mean - 1.0).abs() < 1e-12);
        for c in geo.cluster_coverage(4) {
            assert!((c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn padded_coverage_matches_brute_force() {
        let shape = ConvShape::new(8, 7, 9, 3, 4, 2, 1);
        let geo = Geometry::new(&shape);
        let k = shape.kernel as i64;
        let mut in_bounds = 0usize;
        let mut total = 0usize;
        for oy in 0..shape.out_width() {
            for ox in 0..shape.out_height() {
                for ty in 0..k {
                    for tx in 0..k {
                        let ix = (ox * shape.stride) as i64 + tx - shape.pad as i64;
                        let iy = (oy * shape.stride) as i64 + ty - shape.pad as i64;
                        total += 1;
                        if ix >= 0
                            && iy >= 0
                            && (ix as usize) < shape.in_height
                            && (iy as usize) < shape.in_width
                        {
                            in_bounds += 1;
                        }
                    }
                }
            }
        }
        let brute = in_bounds as f64 / total as f64;
        assert!((geo.cov_mean - brute).abs() < 1e-12);
    }

    #[test]
    fn cluster_coverage_averages_to_global_mean() {
        let shape = ConvShape::new(8, 13, 11, 5, 4, 1, 2);
        let geo = Geometry::new(&shape);
        for p in [1, 3, 7, 32] {
            let sizes = geo.cluster_sizes(p);
            let covs = geo.cluster_coverage(p);
            let weighted: f64 = sizes
                .iter()
                .zip(&covs)
                .map(|(&s, &c)| s as f64 * c)
                .sum::<f64>()
                / geo.positions as f64;
            assert!(
                (weighted - geo.cov_mean).abs() < 1e-9,
                "p={p}: {weighted} vs {}",
                geo.cov_mean
            );
        }
    }

    #[test]
    fn spread_std_is_zero_free_and_bounded() {
        assert!(spread_std(0.5, 0.0) >= 0.0);
        assert!(spread_std(0.3, 0.5) > 0.0);
        assert!(spread_std(1.0, 0.5) < 0.1);
    }
}
