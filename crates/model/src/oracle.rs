//! Differential oracle: the analytical model vs the cycle-accurate
//! simulators.
//!
//! Every golden point of the evaluation (the per-layer figures: AlexNet
//! and VGGNet on the large ASIC config, GoogLeNet on the small one, and
//! the three FPGA figures) is simulated and predicted side by side; the
//! oracle row records both cycle counts and the relative error. The error
//! bounds below are *enforced* by `tests/oracle_tests.rs` — loosening them
//! is an API change that must be justified in DESIGN.md §5j.
//!
//! The model consumes *measured* densities ([`LayerParams::from_measurement`])
//! so the comparison isolates structural model error from the sampling
//! noise of the synthetic workload generator.

use sparten_nn::networks::{alexnet, googlenet, vggnet, LayerSpec};
use sparten_sim::{simulate_layer, MaskModel, Scheme, SimConfig};

use crate::params::LayerParams;
use crate::predict;

/// The seed every golden artifact in the repo is generated with.
pub const GOLDEN_SEED: u64 = 2019;

/// Documented relative-error bound on total cycles for the Dense scheme
/// (the closed form is exact up to integer rounding).
pub const DENSE_ERROR_BOUND: f64 = 0.0005;

/// Documented relative-error bound for One-sided (linear expectation; the
/// only approximation is density/position independence). Observed maximum
/// on the golden catalog: 2.7%.
pub const ONESIDED_ERROR_BOUND: f64 = 0.04;

/// Documented relative-error bound for the two-sided SparTen schemes
/// (order-statistic barrier approximation). Observed maximum on the
/// golden catalog: 8.3% (GB-H on GoogLeNet reduce layers).
pub const SPARTEN_ERROR_BOUND: f64 = 0.12;

/// Documented relative-error bound for the SCNN variants (the barrier max
/// is computed from exact tile-count distributions; the only
/// approximations are iid cells and filter/input independence). Observed
/// maximum on the golden catalog: 2.0%.
pub const SCNN_ERROR_BOUND: f64 = 0.05;

/// The enforced bound for one scheme.
pub fn error_bound(scheme: Scheme) -> f64 {
    match scheme {
        Scheme::Dense => DENSE_ERROR_BOUND,
        Scheme::OneSided => ONESIDED_ERROR_BOUND,
        Scheme::SpartenNoGb | Scheme::SpartenGbS | Scheme::SpartenGbH => SPARTEN_ERROR_BOUND,
        Scheme::Scnn | Scheme::ScnnOneSided | Scheme::ScnnDense => SCNN_ERROR_BOUND,
    }
}

/// One golden comparison point: a network layer under one configuration.
pub struct GoldenPoint {
    /// Network name as in Table 3.
    pub network: &'static str,
    /// Short configuration tag (`"large"`, `"small"`, `"fpga"`).
    pub config_tag: &'static str,
    /// The layer spec.
    pub spec: LayerSpec,
    /// The simulator configuration.
    pub config: SimConfig,
    /// Schemes the corresponding figure evaluates.
    pub schemes: Vec<Scheme>,
}

/// The schemes the FPGA figures (15–17) evaluate.
fn fpga_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Dense,
        Scheme::OneSided,
        Scheme::SpartenNoGb,
        Scheme::SpartenGbH,
    ]
}

/// Every golden point of the per-layer figures (7–12 and 15–17).
pub fn golden_points() -> Vec<GoldenPoint> {
    let mut out = Vec::new();
    for (net, cfg, tag) in [
        (alexnet(), SimConfig::large(), "large"),
        (googlenet(), SimConfig::small(), "small"),
        (vggnet(), SimConfig::large(), "large"),
    ] {
        for spec in &net.layers {
            out.push(GoldenPoint {
                network: net.name,
                config_tag: tag,
                spec: spec.clone(),
                config: cfg,
                schemes: Scheme::all().to_vec(),
            });
        }
    }
    for net in [alexnet(), googlenet(), vggnet()] {
        for spec in &net.layers {
            out.push(GoldenPoint {
                network: net.name,
                config_tag: "fpga",
                spec: spec.clone(),
                config: SimConfig::fpga(),
                schemes: fpga_schemes(),
            });
        }
    }
    out
}

/// One oracle comparison row.
#[derive(Debug, Clone)]
pub struct OracleRow {
    /// Network name.
    pub network: &'static str,
    /// Configuration tag.
    pub config_tag: &'static str,
    /// Layer name.
    pub layer: &'static str,
    /// Scheme label.
    pub scheme: &'static str,
    /// The scheme (for bound lookup).
    pub scheme_id: Scheme,
    /// Analytical total cycles.
    pub predicted: u64,
    /// Cycle-accurate total cycles.
    pub simulated: u64,
}

impl OracleRow {
    /// Relative error of the prediction: `|pred − sim| / sim`.
    pub fn rel_err(&self) -> f64 {
        (self.predicted as f64 - self.simulated as f64).abs() / (self.simulated as f64).max(1.0)
    }

    /// Whether the row is within its scheme's documented bound.
    pub fn within_bound(&self) -> bool {
        self.rel_err() <= error_bound(self.scheme_id)
    }
}

/// Compares the model against the simulators on one layer, reusing one
/// workload/mask build across all schemes.
pub fn compare_layer(
    network: &'static str,
    config_tag: &'static str,
    spec: &LayerSpec,
    config: &SimConfig,
    schemes: &[Scheme],
    seed: u64,
) -> Vec<OracleRow> {
    let workload = spec.workload(seed);
    let mask = MaskModel::new(&workload, config.accel.cluster.chunk_size);
    let params = LayerParams::from_measurement(spec.shape, &mask.measure());
    schemes
        .iter()
        .map(|&scheme| {
            let sim = simulate_layer(&workload, &mask, config, scheme);
            let pred = predict(&params, config, scheme);
            OracleRow {
                network,
                config_tag,
                layer: spec.name,
                scheme: scheme.label(),
                scheme_id: scheme,
                predicted: pred.cycles(),
                simulated: sim.cycles(),
            }
        })
        .collect()
}

/// Renders the byte-stable oracle error report for a set of rows.
///
/// The report depends only on `(rows, seed)`; both the model and the
/// simulators are deterministic, so regenerating the same points with the
/// same seed must reproduce it byte for byte (enforced by the tests).
pub fn error_report(rows: &[OracleRow], seed: u64) -> String {
    let mut s = String::new();
    s.push_str(&format!("oracle error report (seed={seed})\n"));
    s.push_str("network config layer scheme predicted simulated rel_err ok\n");
    let mut max_err: f64 = 0.0;
    let mut worst = String::from("-");
    for r in rows {
        let e = r.rel_err();
        if e > max_err {
            max_err = e;
            worst = format!("{}/{}/{}/{}", r.network, r.config_tag, r.layer, r.scheme);
        }
        s.push_str(&format!(
            "{} {} {} {} {} {} {:.4} {}\n",
            r.network,
            r.config_tag,
            r.layer,
            r.scheme,
            r.predicted,
            r.simulated,
            e,
            if r.within_bound() { "ok" } else { "VIOLATION" }
        ));
    }
    s.push_str(&format!("rows={} max_rel_err={max_err:.4} worst={worst}\n", rows.len()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_catalog_covers_all_three_networks_twice() {
        let points = golden_points();
        // 5 + 12 + 13 layers, ASIC + FPGA passes.
        assert_eq!(points.len(), 2 * (5 + 12 + 13));
        assert!(points.iter().any(|p| p.config_tag == "fpga"));
    }

    #[test]
    fn report_is_deterministic() {
        let p = &golden_points()[6]; // a small GoogLeNet layer
        let rows = compare_layer(
            p.network,
            p.config_tag,
            &p.spec,
            &p.config,
            &[Scheme::Dense],
            GOLDEN_SEED,
        );
        let a = error_report(&rows, GOLDEN_SEED);
        let rows2 = compare_layer(
            p.network,
            p.config_tag,
            &p.spec,
            &p.config,
            &[Scheme::Dense],
            GOLDEN_SEED,
        );
        let b = error_report(&rows2, GOLDEN_SEED);
        assert_eq!(a, b);
    }
}
