//! Order statistics and discrete-expectation helpers.
//!
//! The analytical model replaces each simulator's max-over-units barrier
//! with the expected maximum of the per-unit work distribution. For `n`
//! roughly-normal summands the classic Blom approximation gives
//! `E[max] ≈ μ + σ · Φ⁻¹((n − 0.375)/(n + 0.25))`; the standard normal
//! quantile function Φ⁻¹ is evaluated with Acklam's rational approximation
//! (relative error < 1.2e-9 over the open unit interval), which keeps the
//! crate dependency-free.

/// Standard normal quantile function Φ⁻¹ (Acklam's approximation).
///
/// Returns 0 for p outside the open interval (callers only evaluate it at
/// Blom plotting positions, which are interior for `n ≥ 1`).
pub fn inv_norm_cdf(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
        return 0.0;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Blom's coefficient: `E[max of n iid standard normals] ≈ Φ⁻¹((n − 0.375)
/// / (n + 0.25))`. Zero for `n ≤ 1` (the max of one sample is its mean).
pub fn expected_max_coeff(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    inv_norm_cdf((n as f64 - 0.375) / (n as f64 + 0.25))
}

/// Expected maximum of `n` summand distributions with mean `mu` and
/// standard deviation `sigma`, clamped to the feasible range `[mu, cap]`.
///
/// In the deep-sparse regime the normal approximation collapses (the work
/// distribution is a near-Bernoulli spike at zero), so the result is also
/// floored at `P(max ≥ 1) ≈ 1 − (1 − p_hit)^trials` — the exact first
/// moment when at most one unit ever sees work.
pub fn expected_max(mu: f64, sigma: f64, n: usize, cap: f64, p_hit: f64, trials: f64) -> f64 {
    let normal = mu + sigma * expected_max_coeff(n);
    let sparse_floor = if p_hit > 0.0 && p_hit < 1.0 {
        1.0 - (1.0 - p_hit).powf(trials)
    } else if p_hit >= 1.0 && trials > 0.0 {
        1.0
    } else {
        0.0
    };
    normal.max(sparse_floor).clamp(mu.max(0.0), cap.max(mu))
}

/// First-order `E[⌈X/e⌉]` for `X ~ Binomial(n, p)`: the mean divided by `e`
/// plus the expected round-up of `(e − X mod e) mod e ≈ (e−1)/2` whenever
/// `X > 0`. Exact when `p = 1` (X is deterministic).
pub fn expected_ceil_div(n: f64, p: f64, e: f64) -> f64 {
    if n <= 0.0 || p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return (n / e).ceil();
    }
    let p_any = 1.0 - (1.0 - p).powf(n);
    n * p / e + p_any * (e - 1.0) / (2.0 * e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_known_values() {
        // Φ⁻¹(0.5) = 0, Φ⁻¹(0.975) ≈ 1.95996, symmetric tails.
        assert!(inv_norm_cdf(0.5).abs() < 1e-9);
        assert!((inv_norm_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inv_norm_cdf(0.025) + 1.959_964).abs() < 1e-4);
        assert!((inv_norm_cdf(0.9999) - 3.719_016).abs() < 1e-3);
    }

    #[test]
    fn blom_coefficient_grows_with_n() {
        assert_eq!(expected_max_coeff(1), 0.0);
        let c2 = expected_max_coeff(2);
        let c32 = expected_max_coeff(32);
        let c1024 = expected_max_coeff(1024);
        assert!(c2 > 0.0 && c32 > c2 && c1024 > c32);
        // E[max of 2 normals] = 1/√π ≈ 0.5642; Blom is within a few percent.
        assert!((c2 - 0.564).abs() < 0.03);
    }

    #[test]
    fn expected_max_respects_bounds() {
        let m = expected_max(10.0, 3.0, 8, 12.0, 0.5, 100.0);
        assert!((10.0..=12.0).contains(&m));
        // Sparse floor dominates when the mean is tiny.
        let s = expected_max(0.01, 0.1, 32, 64.0, 0.001, 2000.0);
        assert!(s > 0.5);
    }

    #[test]
    fn ceil_div_is_exact_for_deterministic_x() {
        assert_eq!(expected_ceil_div(36.0, 1.0, 4.0), 9.0);
        assert_eq!(expected_ceil_div(37.0, 1.0, 4.0), 10.0);
        assert_eq!(expected_ceil_div(0.0, 1.0, 4.0), 0.0);
    }

    #[test]
    fn ceil_div_first_order_is_close_to_monte_carlo_mean() {
        // Binomial(100, 0.3), e = 4: E[⌈X/4⌉] ≈ 30/4 + 3/8 = 7.875.
        let v = expected_ceil_div(100.0, 0.3, 4.0);
        assert!((v - 7.875).abs() < 1e-9);
    }
}
