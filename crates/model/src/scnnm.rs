//! Closed-form throughput model for SCNN's Cartesian-product dataflow.
//!
//! Mirrors `sparten_sim::scnn` step for step: the input plane splits over a
//! `√PEs × √PEs` grid into ≤tile×tile sub-tiles (computed *exactly*, since
//! the tile geometry is deterministic), and every (filter-group, channel)
//! step costs `⌈F/e⌉ · max-over-PEs(Σ ⌈I_t/e⌉)` — the filter batch count
//! is *shared* by every PE, so only the input side enters the max.
//!
//! Because a sub-tile holds at most `tile²` cells, each PE's per-channel
//! input batch count `T_pe = Σ ⌈Bin(cells_t, ρ_i)/e⌉` has a tiny discrete
//! support. The model builds that distribution exactly (binomial pmf per
//! tile, convolved), then evaluates `E[max over PEs]` exactly from the
//! per-PE CDFs — no normal approximation anywhere in the barrier. The
//! sanity variants map to effective densities of 1.0 on the dense side(s),
//! which collapses every distribution to a point mass.

use sparten_sim::{Breakdown, OpCounts, Scheme, SimConfig, SimResult, Traffic};

use crate::params::{Geometry, LayerParams};

/// Closed-form prediction for the SCNN schemes.
pub fn predict_scnn(params: &LayerParams, config: &SimConfig, scheme: Scheme) -> SimResult {
    let shape = &params.shape;
    let geo = Geometry::new(shape);
    let scnn = &config.scnn;
    let grid = (scnn.num_pes as f64).sqrt() as usize;
    assert_eq!(grid * grid, scnn.num_pes, "PE count must be a square");
    let slots_per_cycle = (scnn.mult_edge * scnn.mult_edge) as u64;
    let (d, k, nf) = (shape.in_channels, shape.kernel, shape.num_filters);

    // Effective densities per variant: the dense side(s) count every cell.
    let (rho_i_eff, rho_f_eff) = match scheme {
        Scheme::Scnn => (params.input_density, params.filter_density),
        Scheme::ScnnOneSided => (params.input_density, 1.0),
        Scheme::ScnnDense => (1.0, 1.0),
        _ => panic!("predict_scnn called with a non-SCNN scheme"),
    };

    // Exact tile geometry: per-PE sub-tile cell counts.
    let mut pe_tiles: Vec<Vec<usize>> = vec![Vec::new(); scnn.num_pes];
    for (pi, (_, rl)) in segments(shape.in_height, grid).into_iter().enumerate() {
        for (pj, (_, cl)) in segments(shape.in_width, grid).into_iter().enumerate() {
            let owner = pi * grid + pj;
            for sl in piece_lengths(rl, scnn.tile) {
                for sw in piece_lengths(cl, scnn.tile) {
                    pe_tiles[owner].push(sl * sw);
                }
            }
        }
    }

    // Exact per-PE distribution of the per-channel input batch count
    // `T_pe = Σ_tiles ⌈Bin(cells, ρ_i)/e⌉` (convolution of per-tile pmfs),
    // its mean, and the exact expected max over PEs.
    let edge = scnn.mult_edge;
    let pe_dists: Vec<Vec<f64>> = pe_tiles
        .iter()
        .map(|tiles| {
            let mut dist = vec![1.0f64];
            for &cells in tiles {
                dist = convolve(&dist, &ceil_div_pmf(cells, rho_i_eff, edge));
            }
            dist
        })
        .collect();
    let mu_i: Vec<f64> = pe_dists.iter().map(|d| pmf_mean(d)).collect();
    let mu_i_sum: f64 = mu_i.iter().sum();
    let max_i = expected_max_pmf(&pe_dists);
    let plane_cells = (shape.in_height * shape.in_width) as f64;

    // Filter-group kinds: full groups of `output_group` filters plus a
    // remainder. A step's weight count is the group's nnz over all k² taps.
    let og = scnn.output_group;
    let mut kinds: Vec<(f64, usize)> = Vec::new(); // (count, filters)
    if nf / og > 0 {
        kinds.push(((nf / og) as f64, og));
    }
    if nf % og > 0 {
        kinds.push((1.0, nf % og));
    }

    let mut makespan_f = 0.0f64;
    let mut pe_sum_f = 0.0f64; // Σ over PEs and steps of pe cycles
    let mut products_f = 0.0f64;
    for &(count, gf) in &kinds {
        let n_g = gf * k * k;
        // Filter batches are shared by every PE in a step and independent
        // of the input side, so expectations multiply. `E[⌈f_nnz/e⌉]` is
        // computed exactly too — the linearized closed form under-counts
        // the ceiling when the group's expected nnz is below one batch
        // (1×1 kernels at low filter density).
        let hf = pmf_mean(&ceil_div_pmf(n_g, rho_f_eff, edge));
        let steps = count * d as f64;
        makespan_f += steps * hf * max_i;
        pe_sum_f += steps * hf * mu_i_sum;
        products_f += steps * n_g as f64 * rho_f_eff * plane_cells * rho_i_eff;
    }

    // True useful MACs are stride/coverage-aware and use the *real*
    // densities; the Cartesian surplus becomes the "zero" component.
    let e_two = shape.dense_macs() as f64 * geo.cov_mean * params.input_density
        * params.filter_density;

    let traffic = scnn_traffic(params, config, scheme);
    let memory_cycles = (traffic.total_bytes() / config.memory.bytes_per_cycle).ceil() as u64;

    // Integerize with the simulator's identity by construction.
    let products = products_f.round().max(0.0) as u64;
    let nonzero = (e_two.round().max(0.0) as u64).min(products);
    let zero = products - nonzero;
    let pe_sum = (pe_sum_f.round() as u64).max(products.div_ceil(slots_per_cycle));
    let busy = pe_sum * slots_per_cycle;
    let compute_cycles = (makespan_f.round() as u64).max(pe_sum.div_ceil(scnn.num_pes as u64));
    let breakdown = Breakdown {
        nonzero,
        zero,
        intra: busy - products,
        inter: compute_cycles * scnn.num_pes as u64 * slots_per_cycle - busy,
    };

    SimResult {
        scheme: scheme.label(),
        compute_cycles,
        memory_cycles,
        total_units: scnn.num_pes as u64 * slots_per_cycle,
        breakdown,
        traffic,
        ops: OpCounts {
            macs_nonzero: nonzero,
            macs_zero: zero,
            buffer_accesses: 3 * products,
            compact_ops: shape.num_outputs() as u64,
            crossbar_ops: products,
            ..OpCounts::default()
        },
    }
}

/// Exact binomial pmf for small `n` (sub-tile cell counts, ≤ tile²).
fn binom_pmf(n: usize, p: f64) -> Vec<f64> {
    if p <= 0.0 {
        let mut v = vec![0.0; n + 1];
        v[0] = 1.0;
        return v;
    }
    if p >= 1.0 {
        let mut v = vec![0.0; n + 1];
        v[n] = 1.0;
        return v;
    }
    // Mode-centered recurrence: immune to `(1−p)^n` underflow, so the
    // same pmf serves tile cells (≤ tile²) and whole filter groups.
    let mut v = vec![0.0; n + 1];
    let ratio = p / (1.0 - p);
    let mode = ((((n + 1) as f64) * p) as usize).min(n);
    v[mode] = 1.0;
    for i in mode..n {
        v[i + 1] = v[i] * ratio * (n - i) as f64 / (i + 1) as f64;
    }
    for i in (0..mode).rev() {
        v[i] = v[i + 1] * (i + 1) as f64 / (ratio * (n - i) as f64);
    }
    let total: f64 = v.iter().sum();
    for x in &mut v {
        *x /= total;
    }
    v
}

/// pmf of `⌈Bin(n, p)/e⌉`.
fn ceil_div_pmf(n: usize, p: f64, e: usize) -> Vec<f64> {
    let bin = binom_pmf(n, p);
    let mut out = vec![0.0; n.div_ceil(e) + 1];
    for (i, &q) in bin.iter().enumerate() {
        out[i.div_ceil(e)] += q;
    }
    out
}

/// pmf of the sum of two independent non-negative integer variables.
fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

fn pmf_mean(pmf: &[f64]) -> f64 {
    pmf.iter().enumerate().map(|(t, &q)| t as f64 * q).sum()
}

/// Exact `E[max_k X_k]` for independent non-negative integer variables:
/// `Σ_{t≥1} (1 − Π_k P(X_k < t))`.
fn expected_max_pmf(dists: &[Vec<f64>]) -> f64 {
    let support = dists.iter().map(Vec::len).max().unwrap_or(1);
    // cdf_k(t) = P(X_k ≤ t); running product over PEs per threshold.
    let mut prod_le = vec![1.0f64; support]; // Π_k P(X_k ≤ t)
    for d in dists {
        let mut acc = 0.0;
        for (t, p) in prod_le.iter_mut().enumerate() {
            acc += d.get(t).copied().unwrap_or(0.0);
            *p *= acc.min(1.0);
        }
    }
    (1..support).map(|t| 1.0 - prod_le[t - 1]).sum()
}

/// `segments(n, parts)` from the simulator: contiguous near-equal splits.
fn segments(n: usize, parts: usize) -> Vec<(usize, usize)> {
    (0..parts)
        .map(|i| {
            let lo = n * i / parts;
            let hi = n * (i + 1) / parts;
            (lo, hi - lo)
        })
        .collect()
}

/// Lengths of the ≤cap pieces a segment of `len` splits into.
fn piece_lengths(len: usize, cap: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut off = 0;
    while off < len {
        let piece = cap.min(len - off);
        out.push(piece);
        off += piece;
    }
    out
}

/// Expected SCNN traffic — `scnn_traffic` with expected non-zero counts.
fn scnn_traffic(params: &LayerParams, config: &SimConfig, scheme: Scheme) -> Traffic {
    let shape = &params.shape;
    let elem = config.memory.element_bytes as f64;
    let batch = config.memory.batch as f64;
    let idx = 0.5; // bytes of coordinate metadata per stored value
    let input_cells = shape.input_cells() as f64;
    let weight_cells = shape.weight_cells() as f64;
    let out_cells = shape.num_outputs() as f64;
    let input_nnz = (input_cells * params.input_density).round();
    let weight_nnz = (weight_cells * params.filter_density).round();

    let (input_bytes, input_zero, input_meta) = if scheme == Scheme::ScnnDense {
        (input_cells * elem, input_cells - input_nnz, 0.0)
    } else {
        (input_nnz * (elem + idx), 0.0, input_nnz * idx)
    };
    let (filter_bytes, filter_zero, filter_meta) = if scheme == Scheme::Scnn {
        (
            weight_nnz * (elem + idx) / batch,
            0.0,
            weight_nnz * idx / batch,
        )
    } else {
        (
            weight_cells * elem / batch,
            (weight_cells - weight_nnz) / batch,
            0.0,
        )
    };
    let out_nnz = out_cells * config.memory.output_density;
    let (output_bytes, output_meta) = if scheme == Scheme::ScnnDense {
        (out_cells * elem, 0.0)
    } else {
        (out_nnz * (elem + idx), out_nnz * idx)
    };

    Traffic {
        input_bytes,
        filter_bytes,
        output_bytes,
        zero_value_bytes: (input_zero + filter_zero) * elem,
        metadata_bytes: input_meta + filter_meta + output_meta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::ConvShape;

    #[test]
    fn identity_holds_for_every_scnn_variant() {
        let cfg = SimConfig::small();
        let p = LayerParams::new(ConvShape::new(64, 8, 8, 3, 16, 1, 1), 0.4, 0.3);
        for scheme in [Scheme::Scnn, Scheme::ScnnOneSided, Scheme::ScnnDense] {
            let r = predict_scnn(&p, &cfg, scheme);
            assert!(r.accounting_holds(), "identity broken for {scheme:?}");
            assert!(r.compute_cycles > 0);
        }
    }

    #[test]
    fn stride_two_wastes_products() {
        // Non-unit stride: the Cartesian product computes everything and
        // discards between-output products — zero component must be large.
        let cfg = SimConfig::small();
        let p = LayerParams::new(ConvShape::new(16, 16, 16, 3, 8, 2, 1), 0.5, 0.5);
        let r = predict_scnn(&p, &cfg, Scheme::Scnn);
        assert!(r.breakdown.zero > r.breakdown.nonzero / 2);
    }
}
