//! Closed-form throughput models for the SparTen-family accelerators
//! (Dense, One-sided, and two-sided SparTen under each balance policy).
//!
//! Each form mirrors the corresponding cycle-accurate simulator's loop
//! structure term by term:
//!
//! * a cluster owns a contiguous slice of output positions; its cycle count
//!   is `positions × (per-position expected cycles)` with the slice's exact
//!   padding coverage (borders are not spread evenly across clusters);
//! * per position, each filter group walks every chunk of the window and
//!   pays `max-over-units(work) + 1` cycles per chunk (the broadcast
//!   barrier). The max is the only quantity that needs a statistical
//!   approximation — everything else (coverage, group structure, chunk
//!   taxonomy, traffic, op counts) is computed exactly;
//! * the expected max combines the two *between-unit* variance sources:
//!   filter-mask overlap sampling (attacked by GB-H's per-chunk
//!   re-pairing) and between-filter density spread (shrunk by sorting,
//!   nearly eliminated by GB-S collocation). The shared input-popcount
//!   noise moves every unit together and drops out of the max.
//!
//! The Figure 10 breakdown identity — `nonzero + zero + intra + inter ==
//! compute_cycles × total_units` — holds *by construction*: the integer
//! breakdown is assembled from the clamped estimates exactly as the
//! simulators assemble theirs from measured tallies.

use sparten_sim::{Breakdown, OpCounts, Scheme, SimConfig, SimResult, Traffic};

use crate::params::{Geometry, LayerParams};
use crate::stats::{expected_max, expected_max_coeff};

/// Extra cycle charged per chunk for mask broadcast (the simulators'
/// `CHUNK_OVERHEAD`).
const CHUNK_OVERHEAD: f64 = 1.0;

/// Residual per-chunk popcount imbalance GB-H's greedy pairing cannot
/// remove (odd splits, ranking ties), as an additive fraction of the
/// `(1 − ρ_i)` positional-overlap floor.
const GBH_PAIRING_RESIDUAL: f64 = 0.05;

/// Residual between-unit density spread after GB-S serpentine collocation,
/// as a fraction of the sorted-window spread.
const GBS_PAIR_RESIDUAL: f64 = 0.3;

/// One kind of filter group (full groups are identical; the remainder
/// group, if any, differs).
struct GroupKind {
    /// How many groups of this kind exist.
    count: f64,
    /// Filters in one group.
    filters: usize,
    /// Compute units with at least one filter.
    busy: usize,
    /// Mean filters per busy unit.
    slots: f64,
    /// Between-unit std of the mean per-unit filter density.
    sigma_between: f64,
    /// Whether GB-H's per-chunk re-pairing equalizes per-chunk popcounts.
    per_chunk_paired: bool,
}

fn group_kinds(scheme: Scheme, num_filters: usize, units: usize, sigma_f: f64) -> Vec<GroupKind> {
    let mut kinds = Vec::with_capacity(2);
    let mut push = |m: usize, count: usize, colloc: usize| {
        if m == 0 || count == 0 {
            return;
        }
        let busy = m.div_ceil(colloc).min(units);
        let slots = m as f64 / busy as f64;
        let window = (m as f64 / num_filters as f64).min(1.0);
        let (sigma_between, per_chunk_paired) = match scheme {
            // Unsorted single-filter units: the full population spread.
            Scheme::SpartenNoGb => (sigma_f, false),
            // Sorted + serpentine-collocated: the group only spans a
            // `m/F` quantile window, and pairing cancels most of that.
            Scheme::SpartenGbS => (GBS_PAIR_RESIDUAL * sigma_f * window, false),
            // Per-chunk re-pairing additionally equalizes the per-chunk
            // filter popcounts themselves.
            Scheme::SpartenGbH => (0.0, true),
            _ => (sigma_f, false),
        };
        kinds.push(GroupKind {
            count: count as f64,
            filters: m,
            busy,
            slots,
            sigma_between,
            per_chunk_paired,
        });
    };
    match scheme {
        Scheme::SpartenGbS | Scheme::SpartenGbH => {
            // Sorted groups of `2·units`, two filters collocated per unit.
            let size = 2 * units;
            push(size, num_filters / size, 2);
            push(num_filters % size, 1, 2);
        }
        _ => {
            // Plain groups of `units`, one filter per unit, original order.
            push(units, num_filters / units, 1);
            push(num_filters % units, 1, 1);
        }
    }
    kinds
}

/// Expected barrier (max-over-units work) for one in-bounds chunk with
/// `cc` real channels.
///
/// Only *between-unit* variance widens the max. The broadcast input chunk
/// is shared by every unit, so conditioning on it: `Var(W_u | I)` is the
/// hypergeometric overlap term `ρi·ρf(1−ρf)` per trial (what GB-H's
/// per-chunk re-pairing attacks), plus the squared between-filter density
/// spread. The shared input-popcount variance `ρf²·ρi(1−ρi)` shifts all
/// units together and cancels out of the max spread.
fn chunk_barrier(kind: &GroupKind, cc: f64, rho_i: f64, rho_f: f64) -> f64 {
    let p = rho_i * rho_f;
    let mu = kind.slots * cc * p;
    // Per-chunk re-pairing equalizes per-unit filter popcounts, removing
    // the `ρi²·Var(n_u)` share of the overlap variance but not the
    // positional part — scale `(1 − ρi)` of the full term (plus a small
    // residual for odd splits and ranking ties).
    let filter_var_scale = if kind.per_chunk_paired {
        (1.0 - rho_i) + GBH_PAIRING_RESIDUAL
    } else {
        1.0
    };
    let var = filter_var_scale * kind.slots * cc * rho_i * rho_f * (1.0 - rho_f)
        + (rho_i * kind.slots * cc * kind.sigma_between).powi(2);
    let cap = (kind.slots.ceil()) * cc;
    expected_max(mu, var.max(0.0).sqrt(), kind.busy, cap, p, kind.filters as f64 * cc)
}

/// Closed-form prediction for the Dense, One-sided, and SparTen schemes.
pub fn predict_accel(params: &LayerParams, config: &SimConfig, scheme: Scheme) -> SimResult {
    let shape = &params.shape;
    let geo = Geometry::new(shape);
    let units = config.accel.cluster.compute_units;
    let clusters = config.accel.num_clusters;
    let chunk = config.accel.cluster.chunk_size;
    let (k, d, nf) = (shape.kernel, shape.in_channels, shape.num_filters);
    let (rho_i, rho_f) = (params.input_density, params.filter_density);

    // Chunk taxonomy: q − 1 full chunks plus one remainder per fiber.
    let q = d.div_ceil(chunk);
    let cc_rem = (d - (q - 1) * chunk) as f64;
    let taps = (k * k) as f64;
    let chunks_w = taps * q as f64;

    let dense_macs = shape.dense_macs() as f64;
    let e_two = dense_macs * geo.cov_mean * rho_i * rho_f;
    let e_one = dense_macs * geo.cov_mean * rho_i;

    // Per-position expected cycles as a function of the cluster's coverage:
    // `cycles(cov) = base + cov · slope`. `dcdw` is the sensitivity of one
    // position's cycle count to its window popcount — the shared input
    // noise that cancels inside each chunk's max-over-units but makes
    // cluster *sums* spread (see the makespan correction below).
    let (base, slope, busy_f, nonzero_f, dcdw) = match scheme {
        Scheme::Dense => {
            let groups = nf.div_ceil(units) as f64;
            (groups * taps * d as f64, 0.0, dense_macs, e_two, 0.0)
        }
        Scheme::OneSided => {
            // The barrier is the input chunk's popcount — identical across
            // units, so expectation is exact by linearity.
            let groups = nf.div_ceil(units) as f64;
            (
                groups * chunks_w * CHUNK_OVERHEAD,
                groups * taps * d as f64 * rho_i,
                e_one,
                e_two,
                groups,
            )
        }
        Scheme::SpartenNoGb | Scheme::SpartenGbS | Scheme::SpartenGbH => {
            let kinds = group_kinds(scheme, nf, units, params.filter_density_std);
            let mut base = 0.0;
            let mut slope = 0.0;
            let mut g_slots = 0.0;
            for kind in &kinds {
                let mut s = (q - 1) as f64 * chunk_barrier(kind, chunk as f64, rho_i, rho_f);
                s += chunk_barrier(kind, cc_rem, rho_i, rho_f);
                slope += kind.count * taps * s;
                base += kind.count * chunks_w * CHUNK_OVERHEAD;
                g_slots += kind.count * kind.slots;
            }
            // One extra input non-zero shifts every unit's overlap mean by
            // `slots · ρf`, and the chunk max with it.
            (base, slope, e_two, e_two, rho_f * g_slots)
        }
        _ => panic!("predict_accel called with an SCNN scheme"),
    };

    // Exact per-cluster position slices and padding coverage.
    let sizes = geo.cluster_sizes(clusters);
    let covs = geo.cluster_coverage(clusters);
    let mut sum_cycles_f = 0.0;
    let mut makespan_f: f64 = 0.0;
    let mut cluster_cy = Vec::with_capacity(sizes.len());
    let var_w = taps * d as f64 * rho_i * (1.0 - rho_i);
    for (&n, &cov) in sizes.iter().zip(&covs) {
        let cy = n as f64 * (base + cov * slope);
        sum_cycles_f += cy;
        makespan_f = makespan_f.max(cy);
        cluster_cy.push((cy, dcdw * (n as f64 * cov * var_w).sqrt()));
    }
    // Between-cluster fluctuation: a cluster's cycle count rides the sum of
    // its positions' window popcounts, so small slices spread around their
    // mean and the makespan is an order statistic, not a max of means.
    // Clusters whose mean is within one σ of the leader compete for it.
    let mut n_eff = 0usize;
    let mut sigma_top = 0.0f64;
    for &(cy, sigma) in &cluster_cy {
        if cy + sigma >= makespan_f {
            n_eff += 1;
            sigma_top = sigma_top.max(sigma);
        }
    }
    makespan_f += expected_max_coeff(n_eff) * sigma_top;

    let traffic = accel_traffic(params, &geo, config, scheme);
    let memory_cycles = (traffic.total_bytes() / config.memory.bytes_per_cycle).ceil() as u64;

    // Integerize with the same clamps that make the simulators' identity
    // hold: intra = Σ(cycles·U − busy), inter = (makespan − cycles)·U.
    let u = units as u64;
    let p = clusters as u64;
    let busy = busy_f.round().max(0.0) as u64;
    let nonzero = (nonzero_f.round().max(0.0) as u64).min(busy);
    let zero = busy - nonzero;
    let sum_cycles = (sum_cycles_f.round() as u64).max(busy.div_ceil(u));
    let compute_cycles = (makespan_f.round() as u64).max(sum_cycles.div_ceil(p));
    let breakdown = Breakdown {
        nonzero,
        zero,
        intra: sum_cycles * u - busy,
        inter: (compute_cycles * p - sum_cycles) * u,
    };

    let positions = geo.positions as f64;
    let joins = positions * chunks_w * nf as f64;
    let ops = match scheme {
        Scheme::Dense => OpCounts {
            macs_nonzero: nonzero,
            macs_zero: zero,
            buffer_accesses: 3 * busy,
            ..OpCounts::default()
        },
        Scheme::OneSided => OpCounts {
            macs_nonzero: nonzero,
            macs_zero: zero,
            buffer_accesses: 3 * busy,
            prefix_ops: joins as u64,
            encoder_ops: busy,
            compact_ops: (positions * nf as f64) as u64,
            ..OpCounts::default()
        },
        _ => OpCounts {
            macs_nonzero: nonzero,
            macs_zero: zero,
            buffer_accesses: 3 * busy,
            prefix_ops: 2 * joins as u64,
            encoder_ops: busy,
            permute_values: if scheme == Scheme::SpartenGbH {
                joins as u64
            } else {
                0
            },
            compact_ops: (positions * nf as f64) as u64,
            ..OpCounts::default()
        },
    };

    SimResult {
        scheme: scheme.label(),
        compute_cycles,
        memory_cycles,
        total_units: (units * clusters) as u64,
        breakdown,
        traffic,
        ops,
    }
}

/// Expected DRAM traffic — a direct port of the simulators'
/// `dense_traffic`/`sparten_traffic` with expected non-zero counts.
fn accel_traffic(
    params: &LayerParams,
    geo: &Geometry,
    config: &SimConfig,
    scheme: Scheme,
) -> Traffic {
    let shape = &params.shape;
    let elem = config.memory.element_bytes as f64;
    let batch = config.memory.batch as f64;
    let input_cells = shape.input_cells() as f64;
    let weight_cells = shape.weight_cells() as f64;
    let out_cells = shape.num_outputs() as f64;
    let input_nnz = (input_cells * params.input_density).round();
    let weight_nnz = (weight_cells * params.filter_density).round();

    if scheme == Scheme::Dense {
        let input_zero = input_cells - input_nnz;
        let filter_zero = (weight_cells - weight_nnz) / batch;
        let output_zero = out_cells * (1.0 - config.memory.output_density);
        return Traffic {
            input_bytes: input_cells * elem,
            filter_bytes: weight_cells * elem / batch,
            output_bytes: out_cells * elem,
            zero_value_bytes: (input_zero + filter_zero + output_zero) * elem,
            metadata_bytes: 0.0,
        };
    }

    let chunk = config.accel.cluster.chunk_size;
    let mask_bytes_per_chunk = chunk as f64 / 8.0;
    let chunks_per_fiber = shape.in_channels.div_ceil(chunk) as f64;
    let k2 = (shape.kernel * shape.kernel) as f64;

    let input_fibers = (shape.in_height * shape.in_width) as f64;
    let input_mask_bytes = input_fibers * chunks_per_fiber * mask_bytes_per_chunk;
    let input_bytes = input_nnz * elem + input_mask_bytes;

    let filter_mask_bytes =
        shape.num_filters as f64 * k2 * chunks_per_fiber * mask_bytes_per_chunk;
    let (filter_bytes, filter_zero_bytes, filter_meta) = if scheme == Scheme::OneSided {
        (
            weight_cells * elem / batch,
            (weight_cells - weight_nnz) * elem / batch,
            0.0,
        )
    } else {
        (
            (weight_nnz * elem + filter_mask_bytes) / batch,
            0.0,
            filter_mask_bytes / batch,
        )
    };

    let out_nnz = out_cells * config.memory.output_density;
    let out_chunks = geo.positions as f64 * shape.num_filters.div_ceil(chunk) as f64;
    let output_mask_bytes = out_chunks * mask_bytes_per_chunk;
    let output_bytes = out_nnz * elem + output_mask_bytes;

    Traffic {
        input_bytes,
        filter_bytes,
        output_bytes,
        zero_value_bytes: filter_zero_bytes,
        metadata_bytes: input_mask_bytes + filter_meta + output_mask_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::ConvShape;

    fn params() -> LayerParams {
        LayerParams::new(ConvShape::new(64, 8, 8, 3, 16, 1, 1), 0.4, 0.3)
    }

    #[test]
    fn identity_holds_for_every_accel_scheme() {
        let cfg = SimConfig::small();
        for scheme in [
            Scheme::Dense,
            Scheme::OneSided,
            Scheme::SpartenNoGb,
            Scheme::SpartenGbS,
            Scheme::SpartenGbH,
        ] {
            let r = predict_accel(&params(), &cfg, scheme);
            assert!(r.accounting_holds(), "identity broken for {scheme:?}");
            assert!(r.compute_cycles > 0);
        }
    }

    #[test]
    fn balance_policies_order_as_the_paper_claims() {
        // More balancing → fewer predicted cycles, dense ≥ one-sided ≥
        // two-sided (compute only; memory can invert totals). The claim
        // needs F ≥ 2·units — below that, collocation's idle-unit pathology
        // (§5.1) makes GB-S genuinely slower, in the model as in the sim.
        let cfg = SimConfig::small();
        let p = LayerParams::new(ConvShape::new(64, 8, 8, 3, 64, 1, 1), 0.4, 0.3);
        let dense = predict_accel(&p, &cfg, Scheme::Dense).compute_cycles;
        let one = predict_accel(&p, &cfg, Scheme::OneSided).compute_cycles;
        let nogb = predict_accel(&p, &cfg, Scheme::SpartenNoGb).compute_cycles;
        let gbs = predict_accel(&p, &cfg, Scheme::SpartenGbS).compute_cycles;
        let gbh = predict_accel(&p, &cfg, Scheme::SpartenGbH).compute_cycles;
        assert!(dense >= one, "dense {dense} < one-sided {one}");
        assert!(one >= nogb, "one-sided {one} < no-GB {nogb}");
        assert!(nogb >= gbs, "no-GB {nogb} < GB-S {gbs}");
        assert!(gbs >= gbh, "GB-S {gbs} < GB-H {gbh}");
    }

    #[test]
    fn chunk_size_one_and_non_divisible_are_accepted() {
        let mut cfg = SimConfig::small();
        for chunk in [1, 64, 100, 1000] {
            cfg.accel.cluster.chunk_size = chunk;
            let r = predict_accel(&params(), &cfg, Scheme::SpartenGbH);
            assert!(r.accounting_holds(), "chunk {chunk}");
            assert!(r.compute_cycles > 0, "chunk {chunk}");
        }
    }
}
