//! Prints the full golden-point oracle error report (model vs simulators).
//!
//! Run in release — the cycle-accurate side is the slow half:
//!
//! ```text
//! cargo run -p sparten-model --release --example oracle_report
//! ```

use sparten_model::oracle::{compare_layer, error_report, golden_points, GOLDEN_SEED};

fn main() {
    let mut rows = Vec::new();
    for p in golden_points() {
        rows.extend(compare_layer(
            p.network,
            p.config_tag,
            &p.spec,
            &p.config,
            &p.schemes,
            GOLDEN_SEED,
        ));
    }
    print!("{}", error_report(&rows, GOLDEN_SEED));
}
