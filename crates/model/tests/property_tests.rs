//! Property tests for the analytical model: monotonicity in density,
//! chunk-size boundary behavior, and the Figure 10 accounting identity
//! over seeded parameter grids.
//!
//! Everything here calls [`sparten_model::predict`] only — no simulator —
//! so the default case count already sweeps thousands of points; the
//! `exhaustive-tests` feature widens the grids further.

use sparten_model::{evaluate, predict, scheme_buffer_bytes_per_mac, LayerParams};
use sparten_nn::ConvShape;
use sparten_sim::{Scheme, SimConfig};

fn densities() -> Vec<f64> {
    if cfg!(feature = "exhaustive-tests") {
        (1..=19).map(|i| i as f64 * 0.05).collect()
    } else {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    }
}

fn shapes() -> Vec<ConvShape> {
    let mut v = vec![
        ConvShape::new(64, 8, 8, 3, 64, 1, 1),
        ConvShape::new(192, 14, 14, 1, 96, 1, 0),
        ConvShape::new(96, 28, 28, 5, 32, 1, 2),
    ];
    if cfg!(feature = "exhaustive-tests") {
        v.push(ConvShape::new(384, 13, 13, 3, 256, 1, 1));
        v.push(ConvShape::new(3, 64, 64, 7, 64, 2, 3));
        v.push(ConvShape::new(512, 7, 7, 3, 512, 1, 1));
    }
    v
}

/// Predicted compute cycles must be non-decreasing in input density for
/// every sparsity-exploiting scheme (a denser input can only add work).
/// Tolerance: 1% — near ρ = 1 the order-statistic spread `ρ(1−ρ)` shrinks
/// faster than the mean grows, so the model (like the expected max it
/// approximates) may dip fractionally between adjacent steps.
#[test]
fn compute_cycles_are_monotone_in_input_density() {
    let cfg = SimConfig::small();
    for shape in shapes() {
        for scheme in Scheme::all() {
            let mut prev = 0.0f64;
            for &rho in &densities() {
                let p = LayerParams::new(shape, rho, 0.4);
                let c = predict(&p, &cfg, scheme).compute_cycles as f64;
                assert!(
                    c >= prev * 0.99,
                    "{scheme:?} {shape:?}: cycles fell {prev} -> {c} at rho_i={rho}"
                );
                prev = c;
            }
        }
    }
}

/// Same in filter density for the two-sided schemes (one-sided and dense
/// pay for filter zeros by construction, so they stay flat instead).
/// Tolerance: 2%, and shallow-input shapes (`in_channels < 16`) are out of
/// scope: as ρ_f → 1 every unit's work converges to the shared input
/// popcount, and the normal-approximated max dips below its band there
/// even though the true (coupled) max only flattens. That corner's
/// accuracy is covered by the oracle instead (VGG Layer0 has depth 3).
#[test]
fn compute_cycles_are_monotone_in_filter_density() {
    let cfg = SimConfig::small();
    for shape in shapes().into_iter().filter(|s| s.in_channels >= 16) {
        for scheme in [
            Scheme::SpartenNoGb,
            Scheme::SpartenGbS,
            Scheme::SpartenGbH,
            Scheme::Scnn,
        ] {
            let mut prev = 0.0f64;
            for &rho in &densities() {
                let p = LayerParams::new(shape, 0.4, rho);
                let c = predict(&p, &cfg, scheme).compute_cycles as f64;
                assert!(
                    c >= prev * 0.98,
                    "{scheme:?} {shape:?}: cycles fell {prev} -> {c} at rho_f={rho}"
                );
                prev = c;
            }
        }
    }
}

/// Denser always costs at least as much as sparser end to end: the fully
/// dense layer upper-bounds every sparser density on the same shape.
#[test]
fn dense_extreme_upper_bounds_sparse_points() {
    let cfg = SimConfig::small();
    for shape in shapes() {
        for scheme in Scheme::all() {
            let top = predict(&LayerParams::new(shape, 1.0, 1.0), &cfg, scheme);
            for &rho in &densities() {
                let r = predict(&LayerParams::new(shape, rho, rho), &cfg, scheme);
                assert!(
                    r.compute_cycles as f64 <= top.compute_cycles as f64 * 1.01,
                    "{scheme:?} {shape:?}: rho={rho} exceeds dense bound"
                );
            }
        }
    }
}

/// Chunk-size boundaries: 1 (every channel its own chunk), the 64-bit
/// word width, non-divisible sizes, and chunks larger than the fiber must
/// all keep the accounting identity and a positive cycle count.
#[test]
fn chunk_size_boundaries_hold_the_identity() {
    let shape = ConvShape::new(192, 8, 8, 3, 64, 1, 1);
    for chunk in [1usize, 63, 64, 100, 192, 193, 4096] {
        let mut cfg = SimConfig::small();
        cfg.accel.cluster.chunk_size = chunk;
        for scheme in [
            Scheme::Dense,
            Scheme::OneSided,
            Scheme::SpartenNoGb,
            Scheme::SpartenGbS,
            Scheme::SpartenGbH,
        ] {
            let p = LayerParams::new(shape, 0.35, 0.45);
            let r = predict(&p, &cfg, scheme);
            assert!(r.accounting_holds(), "{scheme:?} chunk={chunk}");
            assert!(r.compute_cycles > 0, "{scheme:?} chunk={chunk}");
        }
    }
}

/// Chunk size must not change the useful work, only the schedule: the
/// non-zero MAC count is invariant across chunkings of the same layer.
#[test]
fn useful_work_is_chunk_size_invariant() {
    let shape = ConvShape::new(192, 8, 8, 3, 64, 1, 1);
    let p = LayerParams::new(shape, 0.35, 0.45);
    let mut reference = None;
    for chunk in [1usize, 64, 100, 192, 4096] {
        let mut cfg = SimConfig::small();
        cfg.accel.cluster.chunk_size = chunk;
        let nz = predict(&p, &cfg, Scheme::SpartenGbH).breakdown.nonzero;
        match reference {
            None => reference = Some(nz),
            Some(r) => assert_eq!(nz, r, "nonzero MACs changed at chunk={chunk}"),
        }
    }
}

/// Deterministic seeded grid: the breakdown identity `nonzero + zero +
/// intra + inter == compute_cycles × total_units` must hold bit-exactly on
/// every (shape, densities, config, scheme) combination, and the energy
/// evaluation must stay finite and positive.
#[test]
fn breakdown_identity_holds_over_seeded_grid() {
    let mut checked = 0usize;
    for (ci, cfg) in [SimConfig::small(), SimConfig::large(), SimConfig::fpga()]
        .iter()
        .enumerate()
    {
        for shape in shapes() {
            for &rho_i in &densities() {
                for &rho_f in &densities() {
                    // Deterministic thinning keeps the default run fast
                    // while still mixing all axes (no RNG: pure arithmetic).
                    if !cfg!(feature = "exhaustive-tests")
                        && (ci + (rho_i * 20.0) as usize + (rho_f * 20.0) as usize) % 3 != 0
                    {
                        continue;
                    }
                    let p = LayerParams::new(shape, rho_i, rho_f);
                    for scheme in Scheme::all() {
                        let r = predict(&p, cfg, scheme);
                        assert!(
                            r.accounting_holds(),
                            "{scheme:?} {shape:?} rho_i={rho_i} rho_f={rho_f}"
                        );
                        let buf = scheme_buffer_bytes_per_mac(scheme, &cfg.accel.cluster);
                        let ev = evaluate(&p, cfg, scheme, buf);
                        assert!(
                            ev.energy_pj().is_finite() && ev.energy_pj() > 0.0,
                            "{scheme:?} {shape:?} energy"
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked >= 500, "grid too thin: {checked} points");
}
