//! Differential oracle: the analytical model against all four
//! cycle-accurate simulators.
//!
//! Every golden point of the evaluation is simulated and predicted side by
//! side and the relative cycle error is checked against the per-scheme
//! bounds documented in [`sparten_model::oracle`]. Debug builds run a
//! representative subset so `cargo test -q` stays fast; release builds
//! (`cargo test --release`, run by `scripts/verify.sh`) sweep the full
//! 60-point catalog. Seeded random layers extend the check beyond Table 3,
//! and the error report itself is asserted byte-identical per seed.

use sparten_model::oracle::{
    compare_layer, error_report, golden_points, GoldenPoint, GOLDEN_SEED,
};
use sparten_nn::networks::LayerSpec;
use sparten_nn::ConvShape;
use sparten_sim::{Scheme, SimConfig};

/// The golden points this build sweeps. Debug builds keep every GoogLeNet
/// point (small config, widest density spread) plus the late AlexNet and
/// VGGNet layers; release builds take the whole catalog.
fn catalog() -> Vec<GoldenPoint> {
    let all = golden_points();
    if cfg!(debug_assertions) {
        all.into_iter()
            .filter(|p| {
                p.network == "GoogLeNet"
                    || (p.network == "AlexNet"
                        && matches!(p.spec.name, "Layer3" | "Layer4"))
                    || (p.network == "VGGNet"
                        && matches!(p.spec.name, "Layer11" | "Layer12"))
            })
            .collect()
    } else {
        all
    }
}

fn rows_for(points: &[GoldenPoint], seed: u64) -> Vec<sparten_model::oracle::OracleRow> {
    points
        .iter()
        .flat_map(|p| {
            compare_layer(p.network, p.config_tag, &p.spec, &p.config, &p.schemes, seed)
        })
        .collect()
}

#[test]
fn model_is_within_documented_bounds_on_golden_points() {
    let points = catalog();
    let rows = rows_for(&points, GOLDEN_SEED);
    assert!(!rows.is_empty());
    let violations = rows.iter().filter(|r| !r.within_bound()).count();
    assert_eq!(
        violations,
        0,
        "oracle bound violations:\n{}",
        error_report(&rows, GOLDEN_SEED)
    );
}

#[test]
fn error_report_is_byte_identical_per_seed() {
    // A cheap slice of the catalog is enough to pin report stability; the
    // full-catalog determinism follows from the same code path.
    let points: Vec<GoldenPoint> = golden_points()
        .into_iter()
        .filter(|p| p.network == "GoogLeNet" && p.config_tag == "small")
        .take(4)
        .collect();
    for seed in [GOLDEN_SEED, GOLDEN_SEED + 1] {
        let a = error_report(&rows_for(&points, seed), seed);
        let b = error_report(&rows_for(&points, seed), seed);
        assert_eq!(a, b, "report for seed {seed} is not byte-stable");
        assert!(a.contains(&format!("seed={seed}")));
        assert!(a.ends_with('\n'));
    }
}

/// Splitmix-style deterministic generator for the random-layer sweep.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next() as usize) % options.len()]
    }
}

/// Seeded random small layers: shapes and densities off Table 3's grid but
/// inside the regime the model documents (moderate densities, F ≥ 2·units).
fn random_layers(seed: u64, n: usize) -> Vec<LayerSpec> {
    const NAMES: [&str; 8] = [
        "Rand0", "Rand1", "Rand2", "Rand3", "Rand4", "Rand5", "Rand6", "Rand7",
    ];
    let mut rng = Lcg(seed ^ 0x5eed_cafe);
    (0..n.min(NAMES.len()))
        .map(|i| {
            let depth = rng.pick(&[48, 64, 96, 160, 288]);
            let hw = rng.pick(&[7, 9, 14, 21]);
            let kernel = rng.pick(&[1, 3, 5]);
            let filters = rng.pick(&[64, 96, 144, 224]);
            let input_density = rng.pick(&[0.18, 0.3, 0.45, 0.6, 0.8]);
            let filter_density = rng.pick(&[0.22, 0.35, 0.5, 0.7]);
            LayerSpec {
                name: NAMES[i],
                shape: ConvShape::new(depth, hw, hw, kernel, filters, 1, kernel / 2),
                input_density,
                filter_density,
            }
        })
        .collect()
}

#[test]
fn model_is_within_documented_bounds_on_random_layers() {
    let n = if cfg!(debug_assertions) { 3 } else { 8 };
    let config = SimConfig::small();
    for seed in [GOLDEN_SEED, GOLDEN_SEED + 7] {
        let mut rows = Vec::new();
        for spec in random_layers(seed, n) {
            rows.extend(compare_layer(
                "Random",
                "small",
                &spec,
                &config,
                &Scheme::all(),
                seed,
            ));
        }
        let violations = rows.iter().filter(|r| !r.within_bound()).count();
        assert_eq!(
            violations,
            0,
            "random-layer violations (seed {seed}):\n{}",
            error_report(&rows, seed)
        );
        // The random-layer report is byte-stable per seed too.
        let again: Vec<_> = random_layers(seed, n)
            .iter()
            .flat_map(|spec| {
                compare_layer("Random", "small", spec, &config, &Scheme::all(), seed)
            })
            .collect();
        assert_eq!(error_report(&rows, seed), error_report(&again, seed));
    }
}
