//! Analytical ASIC area/power estimate of one SparTen cluster (Table 4).
//!
//! The paper synthesizes one 32-compute-unit cluster with Synopsys DC on
//! FreePDK45, modelling buffers with Cacti 6.5, reaching 800 MHz and
//! 0.766 mm² / 118.3 mW. This module rebuilds that estimate analytically:
//! component areas scale with structural unit counts (prefix-sum adders,
//! priority-encoder nodes, MACs, permutation-network switches, buffer
//! bytes), with per-unit constants calibrated once against Table 4 — so
//! changing the configuration (chunk size, unit count) scales the estimate
//! the way the structures actually grow.

use sparten_arch::{PermutationNetwork, PrefixCircuit, PriorityEncoder, Sklansky};
use sparten_core::ClusterConfig;

/// Area and power of one named component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentEstimate {
    /// Component name as in Table 4.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW at the 800 MHz synthesis clock.
    pub power_mw: f64,
}

/// A full cluster estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct AsicEstimate {
    /// Per-component rows (Table 4 order).
    pub components: Vec<ComponentEstimate>,
    /// Synthesis clock in MHz.
    pub clock_mhz: f64,
}

impl AsicEstimate {
    /// Total area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total power in mW.
    pub fn total_power_mw(&self) -> f64 {
        self.components.iter().map(|c| c.power_mw).sum()
    }
}

// Per-unit constants calibrated to Table 4 (45 nm, 800 MHz).
/// µm² per prefix-sum adder node (0.418 mm² / 28 672 nodes).
const PREFIX_ADDER_UM2: f64 = 14.58;
/// µW per prefix-sum adder node (48 mW / 28 672 nodes).
const PREFIX_ADDER_UW: f64 = 1.674;
/// µm² per priority-encoder merge node (0.0626 mm² / 4 064 nodes).
const ENCODER_NODE_UM2: f64 = 15.4;
/// µW per priority-encoder merge node (6.4 mW / 4 064 nodes).
const ENCODER_NODE_UW: f64 = 1.575;
/// µm² per 8-bit MAC (0.0432 mm² / 32).
const MAC_UM2: f64 = 1350.0;
/// µW per 8-bit MAC (13.82 mW / 32).
const MAC_UW: f64 = 432.0;
/// µm² per thinned 2×2 permutation switch (0.0344 mm² / 192).
const PERMUTE_SWITCH_UM2: f64 = 179.2;
/// µW per thinned 2×2 permutation switch (10.6 mW / 192).
const PERMUTE_SWITCH_UW: f64 = 55.2;
/// µm² per buffer byte (Cacti-style; 0.1 mm² / 31 744 B).
const BUFFER_BYTE_UM2: f64 = 3.15;
/// µW per buffer byte at one read + one write per cycle (19.2 mW / 31 744 B).
const BUFFER_BYTE_UW: f64 = 0.605;
/// Fixed control/collector/miscellaneous area (mm²) and power (mW).
const OTHER_MM2: f64 = 0.1;
const OTHER_MW: f64 = 20.28;

/// Builds the Table 4 estimate for a cluster configuration.
pub fn cluster_asic_estimate(cluster: &ClusterConfig) -> AsicEstimate {
    let units = cluster.compute_units;
    let chunk = cluster.chunk_size;

    // Two prefix-sum circuits per compute unit (one per operand mask).
    let prefix_adders = 2 * units * Sklansky.stats(chunk).adders;
    // One priority encoder over the chunk per compute unit.
    let encoder_nodes = units * PriorityEncoder::new(chunk).nodes();
    // GB-H permutation network over 2×units endpoints.
    let switches = PermutationNetwork::new(2 * units, cluster.bisection_limit).switch_count();
    let buffer_bytes = cluster.buffer_bytes_collocated();

    let um2 = 1e-6; // µm² → mm²
    let uw = 1e-3; // µW → mW
    let components = vec![
        ComponentEstimate {
            name: "Buffers",
            area_mm2: buffer_bytes as f64 * BUFFER_BYTE_UM2 * um2,
            power_mw: buffer_bytes as f64 * BUFFER_BYTE_UW * uw,
        },
        ComponentEstimate {
            name: "Prefix-sum",
            area_mm2: prefix_adders as f64 * PREFIX_ADDER_UM2 * um2,
            power_mw: prefix_adders as f64 * PREFIX_ADDER_UW * uw,
        },
        ComponentEstimate {
            name: "Priority Encoder",
            area_mm2: encoder_nodes as f64 * ENCODER_NODE_UM2 * um2,
            power_mw: encoder_nodes as f64 * ENCODER_NODE_UW * uw,
        },
        ComponentEstimate {
            name: "MACs",
            area_mm2: units as f64 * MAC_UM2 * um2,
            power_mw: units as f64 * MAC_UW * uw,
        },
        ComponentEstimate {
            name: "Permute Network",
            area_mm2: switches as f64 * PERMUTE_SWITCH_UM2 * um2,
            power_mw: switches as f64 * PERMUTE_SWITCH_UW * uw,
        },
        ComponentEstimate {
            name: "Other",
            area_mm2: OTHER_MM2,
            power_mw: OTHER_MW,
        },
    ];
    AsicEstimate {
        components,
        clock_mhz: 800.0,
    }
}

/// The §5.3 SRAM-offset analysis: SparTen's sparse on-chip storage shrinks
/// the big SRAM enough to offset its per-MAC buffering bloat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramOffset {
    /// Dense architecture's on-chip SRAM area (mm²).
    pub dense_sram_mm2: f64,
    /// SparTen's SRAM area at the same working set, stored sparse (mm²).
    pub sparten_sram_mm2: f64,
    /// SparTen's extra per-MAC buffering over Dense's 8 B (mm²).
    pub buffer_bloat_mm2: f64,
}

impl SramOffset {
    /// Net area change of SparTen vs Dense (negative = SparTen smaller).
    pub fn net_mm2(&self) -> f64 {
        (self.sparten_sram_mm2 - self.dense_sram_mm2) + self.buffer_bloat_mm2
    }
}

/// Computes the SRAM offset for an accelerator with `total_macs` MACs, a
/// `dense_sram_mb` on-chip SRAM (the paper cites the TPU's 20 MB), and a
/// sparse storage ratio (sparse bytes / dense bytes for the same tensors;
/// the paper's memory-energy advantage implies 0.70–0.75).
///
/// # Panics
///
/// Panics if `sparse_ratio` is not in `(0, 1]`.
pub fn sram_offset(total_macs: usize, dense_sram_mb: f64, sparse_ratio: f64) -> SramOffset {
    assert!(
        sparse_ratio > 0.0 && sparse_ratio <= 1.0,
        "sparse ratio must be in (0, 1]"
    );
    let mb = 1024.0 * 1024.0;
    let dense_sram_mm2 = dense_sram_mb * mb * BUFFER_BYTE_UM2 * 1e-6;
    let sparten_sram_mm2 = dense_sram_mm2 * sparse_ratio;
    // Buffering bloat: (992 − 8) bytes per MAC at the same cost model.
    let bloat_bytes = total_macs as f64 * (992.0 - 8.0);
    SramOffset {
        dense_sram_mm2,
        sparten_sram_mm2,
        buffer_bloat_mm2: bloat_bytes * BUFFER_BYTE_UM2 * 1e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_estimate() -> AsicEstimate {
        cluster_asic_estimate(&ClusterConfig::paper())
    }

    #[test]
    fn sram_saving_offsets_buffer_bloat_at_tpu_scale() {
        // §5.3: with a TPU-like 20 MB SRAM and a 25–30 % sparse-storage
        // saving, SparTen comes out net smaller despite 1 KB/MAC buffers.
        let o = sram_offset(1024, 20.0, 0.72);
        assert!(o.net_mm2() < 0.0, "net {} mm²", o.net_mm2());
        assert!(o.buffer_bloat_mm2 > 0.0);
        let saving = o.dense_sram_mm2 - o.sparten_sram_mm2;
        assert!(
            saving > 3.0 * o.buffer_bloat_mm2,
            "offset must be substantial"
        );
    }

    #[test]
    fn tiny_sram_does_not_offset() {
        // A bufferless edge design with almost no SRAM cannot amortize.
        let o = sram_offset(1024, 0.25, 0.72);
        assert!(o.net_mm2() > 0.0);
    }

    #[test]
    fn totals_match_table4_within_tolerance() {
        let e = paper_estimate();
        // Table 4: 0.766 mm², 118.30 mW.
        assert!(
            (e.total_area_mm2() - 0.766).abs() < 0.02,
            "area {}",
            e.total_area_mm2()
        );
        assert!(
            (e.total_power_mw() - 118.3).abs() < 3.0,
            "power {}",
            e.total_power_mw()
        );
    }

    #[test]
    fn component_rows_match_table4() {
        let e = paper_estimate();
        let expect = [
            ("Buffers", 0.1, 19.2),
            ("Prefix-sum", 0.418, 48.0),
            ("Priority Encoder", 0.0626, 6.4),
            ("MACs", 0.0432, 13.82),
            ("Permute Network", 0.0344, 10.6),
            ("Other", 0.1, 20.28),
        ];
        for (name, area, power) in expect {
            let row = e
                .components
                .iter()
                .find(|c| c.name == name)
                .expect("component present");
            assert!(
                (row.area_mm2 - area).abs() / area < 0.06,
                "{name} area {} vs {area}",
                row.area_mm2
            );
            assert!(
                (row.power_mw - power).abs() / power < 0.06,
                "{name} power {} vs {power}",
                row.power_mw
            );
        }
    }

    #[test]
    fn prefix_sum_dominates_area() {
        // The paper's notable result: the inner-join support (prefix sums)
        // costs far more area than the MACs themselves.
        let e = paper_estimate();
        let prefix = e
            .components
            .iter()
            .find(|c| c.name == "Prefix-sum")
            .unwrap();
        let macs = e.components.iter().find(|c| c.name == "MACs").unwrap();
        assert!(prefix.area_mm2 > 5.0 * macs.area_mm2);
    }

    #[test]
    fn smaller_cluster_scales_down() {
        let small = cluster_asic_estimate(&ClusterConfig {
            compute_units: 16,
            chunk_size: 128,
            bisection_limit: 4,
        });
        let big = paper_estimate();
        assert!(small.total_area_mm2() < big.total_area_mm2());
        assert!(small.total_power_mw() < big.total_power_mw());
    }
}
