#![warn(missing_docs)]

//! Energy and area models for the SparTen reproduction.
//!
//! Two models back the paper's Figure 13 and Table 4:
//!
//! * [`model`] — per-operation energy accounting (45 nm class constants)
//!   applied to the simulators' operation counts, with the zero/non-zero
//!   split and the buffer-capacity sensitivity that separates Dense from
//!   Dense-naive;
//! * [`area`] — an analytical component-wise area/power estimate of one
//!   32-unit SparTen cluster, calibrated to the paper's Synopsys DC +
//!   FreePDK45 + Cacti synthesis (Table 4).

pub mod area;
pub mod model;

pub use area::{cluster_asic_estimate, sram_offset, AsicEstimate, ComponentEstimate, SramOffset};
pub use model::{ComponentEnergy, EnergyModel, EnergyReport};
