//! Per-operation energy accounting (Figure 13).
//!
//! Figure 13 compares compute and memory energy — each split into zero and
//! non-zero components — for Dense-naive (Dense with SparTen-sized
//! buffers), Dense, One-sided, and the SparTen variants. The shape of that
//! figure depends on operation *counts* (from the simulators) and the rough
//! ratios between per-op energies, not on absolute picojoules. The
//! constants here are 45 nm-class values (Horowitz-style) with buffer access
//! energy growing with the square root of buffer capacity (the Cacti trend),
//! which is exactly what separates Dense (8 B/MAC) from Dense-naive
//! (SparTen-sized buffering, §5.3).

use sparten_sim::{OpCounts, SimResult};

/// Energy of one simulated layer, in picojoules, split as Figure 13 does.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Compute energy spent on non-zero work (includes the sparse-datapath
    /// overheads: inner join, permutation network, output compaction).
    pub compute_nonzero_pj: f64,
    /// Compute energy wasted on zero operands (dense/one-sided only).
    pub compute_zero_pj: f64,
    /// Memory energy moving non-zero data and metadata (masks/pointers).
    pub memory_nonzero_pj: f64,
    /// Memory energy moving zero values.
    pub memory_zero_pj: f64,
}

impl EnergyReport {
    /// Total compute energy.
    pub fn compute_pj(&self) -> f64 {
        self.compute_nonzero_pj + self.compute_zero_pj
    }

    /// Total memory energy.
    pub fn memory_pj(&self) -> f64 {
        self.memory_nonzero_pj + self.memory_zero_pj
    }

    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj() + self.memory_pj()
    }

    /// Adds two reports component-wise (for network-level averages).
    pub fn add(&self, other: &EnergyReport) -> EnergyReport {
        EnergyReport {
            compute_nonzero_pj: self.compute_nonzero_pj + other.compute_nonzero_pj,
            compute_zero_pj: self.compute_zero_pj + other.compute_zero_pj,
            memory_nonzero_pj: self.memory_nonzero_pj + other.memory_nonzero_pj,
            memory_zero_pj: self.memory_zero_pj + other.memory_zero_pj,
        }
    }
}

/// 45 nm-class per-operation energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One 8-bit multiply-accumulate (pJ).
    pub mac_pj: f64,
    /// Buffer access coefficient: access energy = `coeff · √bytes` (pJ).
    pub buffer_coeff_pj: f64,
    /// One adder node of a prefix-sum circuit (pJ).
    pub prefix_adder_pj: f64,
    /// Adder nodes evaluated per prefix-sum circuit pass (128-bit Sklansky).
    pub prefix_adders_per_op: f64,
    /// One priority-encoder resolution (pJ).
    pub encoder_pj: f64,
    /// Routing one value through the permutation network (pJ).
    pub permute_pj: f64,
    /// Compacting one output cell (pJ).
    pub compact_pj: f64,
    /// One SCNN crossbar traversal (pJ).
    pub crossbar_pj: f64,
    /// Moving one byte to/from DRAM (pJ).
    pub dram_pj_per_byte: f64,
}

impl EnergyModel {
    /// The default 45 nm model.
    pub fn nm45() -> Self {
        EnergyModel {
            mac_pj: 0.2,
            buffer_coeff_pj: 0.04,
            prefix_adder_pj: 0.01,
            prefix_adders_per_op: 448.0,
            encoder_pj: 0.6,
            permute_pj: 0.8,
            compact_pj: 0.5,
            crossbar_pj: 1.2,
            dram_pj_per_byte: 650.0,
        }
    }

    /// Access energy of a buffer with `bytes` capacity.
    pub fn buffer_access_pj(&self, bytes: usize) -> f64 {
        self.buffer_coeff_pj * (bytes as f64).sqrt()
    }

    /// Energy of a simulated layer given the scheme's per-MAC buffer
    /// capacity (Table 2: 8 B for Dense, ~1 KB for the sparse schemes).
    /// Pass a Dense result with a sparse-sized buffer to get Dense-naive.
    pub fn layer_energy(&self, result: &SimResult, buffer_bytes_per_mac: usize) -> EnergyReport {
        let ops = &result.ops;
        let buf = self.buffer_access_pj(buffer_bytes_per_mac);
        let per_mac = self.mac_pj + buf * (ops.buffer_accesses as f64 / macs_total(ops).max(1.0));

        let overhead = ops.prefix_ops as f64 * self.prefix_adder_pj * self.prefix_adders_per_op
            + ops.encoder_ops as f64 * self.encoder_pj
            + ops.permute_values as f64 * self.permute_pj
            + ops.compact_ops as f64 * self.compact_pj
            + ops.crossbar_ops as f64 * self.crossbar_pj;
        // Overheads split pro-rata between the zero and non-zero MACs that
        // flowed through the datapath.
        let total_macs = macs_total(ops).max(1.0);
        let nz_share = ops.macs_nonzero as f64 / total_macs;

        let compute_nonzero_pj = ops.macs_nonzero as f64 * per_mac + overhead * nz_share;
        let compute_zero_pj = ops.macs_zero as f64 * per_mac + overhead * (1.0 - nz_share);

        let zero_bytes = result.traffic.zero_value_bytes;
        let total_bytes = result.traffic.total_bytes();
        let memory_zero_pj = zero_bytes * self.dram_pj_per_byte;
        let memory_nonzero_pj = (total_bytes - zero_bytes).max(0.0) * self.dram_pj_per_byte;

        EnergyReport {
            compute_nonzero_pj,
            compute_zero_pj,
            memory_nonzero_pj,
            memory_zero_pj,
        }
    }
}

/// Per-component compute-energy attribution of one layer (pJ).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentEnergy {
    /// Multiplier-accumulator switching energy.
    pub mac_pj: f64,
    /// Operand/partial-sum buffer accesses.
    pub buffer_pj: f64,
    /// Prefix-sum circuit evaluations.
    pub prefix_pj: f64,
    /// Priority-encoder steps.
    pub encoder_pj: f64,
    /// Permutation-network routing.
    pub permute_pj: f64,
    /// Output compaction.
    pub compact_pj: f64,
    /// SCNN crossbar traversals.
    pub crossbar_pj: f64,
}

impl ComponentEnergy {
    /// Total compute energy.
    pub fn total_pj(&self) -> f64 {
        self.mac_pj
            + self.buffer_pj
            + self.prefix_pj
            + self.encoder_pj
            + self.permute_pj
            + self.compact_pj
            + self.crossbar_pj
    }
}

impl EnergyModel {
    /// Attributes a layer's compute energy to datapath components — §5.3's
    /// qualitative claim ("extra buffering, inner-join and output compaction
    /// (to a much smaller extent) incur more energy") as numbers.
    pub fn component_energy(
        &self,
        result: &SimResult,
        buffer_bytes_per_mac: usize,
    ) -> ComponentEnergy {
        let ops = &result.ops;
        let macs = macs_total(ops);
        ComponentEnergy {
            mac_pj: macs * self.mac_pj,
            buffer_pj: ops.buffer_accesses as f64 * self.buffer_access_pj(buffer_bytes_per_mac),
            prefix_pj: ops.prefix_ops as f64 * self.prefix_adder_pj * self.prefix_adders_per_op,
            encoder_pj: ops.encoder_ops as f64 * self.encoder_pj,
            permute_pj: ops.permute_values as f64 * self.permute_pj,
            compact_pj: ops.compact_ops as f64 * self.compact_pj,
            crossbar_pj: ops.crossbar_ops as f64 * self.crossbar_pj,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::nm45()
    }
}

fn macs_total(ops: &OpCounts) -> f64 {
    (ops.macs_nonzero + ops.macs_zero) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::workload;
    use sparten_nn::ConvShape;
    use sparten_sim::{simulate_layer, MaskModel, Scheme, SimConfig};

    fn results() -> Vec<(Scheme, SimResult)> {
        let shape = ConvShape::new(192, 10, 10, 3, 64, 1, 1);
        let w = workload(&shape, 0.25, 0.35, 41);
        let cfg = SimConfig::small();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        [Scheme::Dense, Scheme::OneSided, Scheme::SpartenGbH]
            .into_iter()
            .map(|s| (s, simulate_layer(&w, &m, &cfg, s)))
            .collect()
    }

    fn energy_for(scheme: Scheme, results: &[(Scheme, SimResult)]) -> EnergyReport {
        let model = EnergyModel::nm45();
        let (_, r) = results.iter().find(|(s, _)| *s == scheme).expect("scheme");
        let buffer = if scheme == Scheme::Dense { 8 } else { 992 };
        model.layer_energy(r, buffer)
    }

    #[test]
    fn buffer_energy_grows_with_capacity() {
        let m = EnergyModel::nm45();
        assert!(m.buffer_access_pj(992) > 10.0 * m.buffer_access_pj(8));
    }

    #[test]
    fn dense_naive_costs_more_than_dense() {
        let rs = results();
        let model = EnergyModel::nm45();
        let (_, dense) = rs.iter().find(|(s, _)| *s == Scheme::Dense).unwrap();
        let naive = model.layer_energy(dense, 992);
        let lean = model.layer_energy(dense, 8);
        assert!(naive.compute_pj() > lean.compute_pj() * 2.0);
        // Memory energy is buffer-independent.
        assert!((naive.memory_pj() - lean.memory_pj()).abs() < 1e-6);
    }

    #[test]
    fn dense_compute_is_dominated_by_zeros_on_sparse_layers() {
        let rs = results();
        let e = energy_for(Scheme::Dense, &rs);
        assert!(e.compute_zero_pj > e.compute_nonzero_pj);
    }

    #[test]
    fn sparten_eliminates_zero_compute_energy() {
        let rs = results();
        let e = energy_for(Scheme::SpartenGbH, &rs);
        assert_eq!(e.compute_zero_pj, 0.0);
        assert_eq!(e.memory_zero_pj, 0.0);
    }

    #[test]
    fn sparten_beats_one_sided_compute_energy() {
        // The paper's 1.5× compute-energy reduction over One-sided.
        let rs = results();
        let one = energy_for(Scheme::OneSided, &rs);
        let two = energy_for(Scheme::SpartenGbH, &rs);
        let ratio = one.compute_pj() / two.compute_pj();
        assert!(ratio > 1.2, "ratio {ratio}");
    }

    #[test]
    fn sparten_compute_costs_more_than_dense_per_paper() {
        // §5.3: SparTen ≈ 2× Dense compute energy (sparse overheads don't
        // pipeline away). Accept a broad band around the paper's 2× — on
        // very sparse synthetic layers SparTen's MAC elision can even dip
        // slightly below Dense.
        let rs = results();
        let dense = energy_for(Scheme::Dense, &rs);
        let sparten = energy_for(Scheme::SpartenGbH, &rs);
        let ratio = sparten.compute_pj() / dense.compute_pj();
        assert!(
            (0.6..6.0).contains(&ratio),
            "SparTen/Dense compute ratio {ratio} out of band"
        );
    }

    #[test]
    fn sparten_memory_beats_dense_and_one_sided() {
        let rs = results();
        let dense = energy_for(Scheme::Dense, &rs);
        let one = energy_for(Scheme::OneSided, &rs);
        let two = energy_for(Scheme::SpartenGbH, &rs);
        assert!(two.memory_pj() < one.memory_pj());
        assert!(one.memory_pj() < dense.memory_pj());
    }

    #[test]
    fn component_energy_sums_to_layer_compute_energy() {
        let rs = results();
        let model = EnergyModel::nm45();
        for (scheme, r) in &rs {
            let buffer = if *scheme == Scheme::Dense { 8 } else { 992 };
            let comp = model.component_energy(r, buffer);
            let layer = model.layer_energy(r, buffer);
            let diff = (comp.total_pj() - layer.compute_pj()).abs();
            assert!(
                diff / layer.compute_pj().max(1.0) < 1e-9,
                "{scheme:?}: components {} vs layer {}",
                comp.total_pj(),
                layer.compute_pj()
            );
        }
    }

    #[test]
    fn buffers_dominate_sparten_compute_energy() {
        // §5.3: buffering and the inner join, not the MACs, dominate.
        let rs = results();
        let model = EnergyModel::nm45();
        let (_, r) = rs.iter().find(|(s, _)| *s == Scheme::SpartenGbH).unwrap();
        let comp = model.component_energy(r, 992);
        assert!(comp.buffer_pj > comp.mac_pj);
        assert!(comp.prefix_pj + comp.encoder_pj > comp.mac_pj);
        assert!(
            comp.compact_pj < 0.2 * comp.total_pj(),
            "compaction is minor"
        );
    }

    #[test]
    fn report_addition() {
        let a = EnergyReport {
            compute_nonzero_pj: 1.0,
            compute_zero_pj: 2.0,
            memory_nonzero_pj: 3.0,
            memory_zero_pj: 4.0,
        };
        let s = a.add(&a);
        assert_eq!(s.total_pj(), 20.0);
    }
}
